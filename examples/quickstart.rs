//! Quickstart: protect the conditional branches of a small function and run
//! it on the ARMv7-M simulator.
//!
//! Run with `cargo run --example quickstart`.

use secbranch::ir::builder::FunctionBuilder;
use secbranch::ir::{Module, Predicate};
use secbranch::{Pipeline, ProtectionVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny security-critical function: unlock(entered_pin, stored_pin).
    let mut b = FunctionBuilder::new("unlock", 2);
    b.protect_branches();
    let grant = b.create_block("grant");
    let deny = b.create_block("deny");
    let cond = b.cmp(Predicate::Eq, b.param(0), b.param(1));
    b.branch(cond, grant, deny);
    b.switch_to(grant);
    b.ret(Some(1u32.into()));
    b.switch_to(deny);
    b.ret(Some(0u32.into()));
    let mut module = Module::new();
    module.add_function(b.finish());

    println!(
        "IR before protection:\n{}",
        secbranch::ir::printer::print_module(&module)
    );

    for variant in [
        ProtectionVariant::CfiOnly,
        ProtectionVariant::Duplication(6),
        ProtectionVariant::AnCode,
    ] {
        // One compilation per variant; both PIN checks run on the same artifact.
        let artifact = Pipeline::for_variant(variant).build(&module)?;
        let ok = artifact.measure("unlock", &[1234, 1234])?;
        let bad = artifact.run("unlock", &[1111, 1234])?;
        println!(
            "{:<16} code {:>5} B, correct PIN -> {}, wrong PIN -> {}, cycles {:>4}, CFI clean: {}",
            ok.variant_label,
            ok.code_size_bytes,
            ok.result.return_value,
            bad.return_value,
            ok.result.cycles,
            ok.result.cfi_clean()
        );
    }
    Ok(())
}
