//! Fault-injection campaigns: the arithmetic-level condition-value campaign
//! of Section VI and an instruction-skip sweep run directly on compiled
//! `Artifact`s — one compilation per variant, no rebuilds between campaigns.
//!
//! Run with `cargo run --release --example fault_campaign`.

use secbranch::ancode::{Parameters, Predicate};
use secbranch::fault::ConditionCampaign;
use secbranch::programs::integer_compare_module;
use secbranch::{Pipeline, ProtectionVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Arithmetic-level campaign over the encoded condition computation.
    println!("condition-computation fault simulation (equality predicate):");
    let mut campaign = ConditionCampaign::new(Parameters::paper_defaults(), Predicate::Eq, 7);
    for (bits, counts) in campaign.sweep(5, 200_000) {
        println!(
            "  {bits} bit(s): detected {:>7}, masked {:>7}, undetected flips {:>4} (rate {:.5}%)",
            counts.detected,
            counts.masked,
            counts.undetected_flip,
            counts.undetected_rate() * 100.0
        );
    }

    // 2. Instruction-skip sweep on the compiled integer compare: the variant
    // is compiled once into an artifact, and the whole sweep (one faulted
    // execution per dynamic instruction) runs on that artifact.
    let module = integer_compare_module();
    println!("\nsingle-instruction-skip sweep (integer compare, unequal inputs):");
    for variant in [ProtectionVariant::Unprotected, ProtectionVariant::AnCode] {
        let artifact = Pipeline::for_variant(variant)
            .with_max_steps(1_000_000)
            .build(&module)?;
        let report = artifact.skip_sweep("integer_compare", &[41, 999])?;
        println!(
            "  {:<12} injections {:>3}: masked {:>3}, detected {:>3}, crashed {:>3}, successful attacks {:>3}",
            variant.label(),
            report.counts.total(),
            report.counts.masked,
            report.counts.detected,
            report.counts.crashed,
            report.counts.wrong_result_undetected
        );
    }

    // 3. The general campaign engine: the same artifacts attacked by the
    // paper's core fault model — every dynamic conditional branch forced
    // the wrong way — with per-location attribution of each escape.
    use secbranch::campaign::BranchInversion;
    println!("\nconditional-branch-inversion campaign (the paper's core attacker):");
    for variant in [ProtectionVariant::Unprotected, ProtectionVariant::AnCode] {
        let artifact = Pipeline::for_variant(variant)
            .with_max_steps(1_000_000)
            .build(&module)?;
        let report = artifact.campaign("integer_compare", &[41, 999], &BranchInversion)?;
        println!(
            "  {:<12} inverted {:>2} branches: escaped {:>2} ({:.1}%)",
            variant.label(),
            report.counts.total(),
            report.counts.wrong_result_undetected,
            report.escape_rate() * 100.0
        );
        for escape in &report.escapes {
            println!(
                "    escape: {} at pc {} ({}) -> returned {}",
                escape.fault, escape.pc, escape.instruction, escape.return_value
            );
        }
    }

    // 4. A whole security matrix in one call: every cell's fault space is
    // flattened onto one shared worker pool, and the reference trace of
    // each artifact is recorded once no matter how many models attack it
    // (the stats show the trace-cache doing its job).
    use secbranch::campaign::{FaultModel, InstructionSkip};
    use secbranch::{Session, Workload};
    println!("\nsecurity matrix on the global fault-space scheduler:");
    let workloads = [Workload::new(
        "integer compare",
        integer_compare_module(),
        "integer_compare",
        &[41, 999],
    )];
    let pipelines = [
        Pipeline::for_variant(ProtectionVariant::Unprotected).with_max_steps(1_000_000),
        Pipeline::for_variant(ProtectionVariant::AnCode).with_max_steps(1_000_000),
    ];
    let models: [&dyn FaultModel; 2] = [&InstructionSkip, &BranchInversion];
    let mut session = Session::new();
    let matrix = session.security_matrix(&workloads, &pipelines, &models)?;
    print!("{}", matrix.render_table());
    println!(
        "  ({} cells, {} trace recordings + {} cache hits, {} µs wall)",
        matrix.cells.len(),
        matrix.stats.trace_misses,
        matrix.stats.trace_hits,
        matrix.stats.total_wall_micros
    );
    Ok(())
}
