//! Fault-injection campaigns: the arithmetic-level condition-value campaign
//! of Section VI and an instruction-skip sweep on the compiled workload.
//!
//! Run with `cargo run --release --example fault_campaign`.

use secbranch::ancode::{Parameters, Predicate};
use secbranch::fault::{ConditionCampaign, InstructionSkipSweep};
use secbranch::programs::integer_compare_module;
use secbranch::{build, ProtectionVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Arithmetic-level campaign over the encoded condition computation.
    println!("condition-computation fault simulation (equality predicate):");
    let mut campaign = ConditionCampaign::new(Parameters::paper_defaults(), Predicate::Eq, 7);
    for (bits, counts) in campaign.sweep(5, 200_000) {
        println!(
            "  {bits} bit(s): detected {:>7}, masked {:>7}, undetected flips {:>4} (rate {:.5}%)",
            counts.detected,
            counts.masked,
            counts.undetected_flip,
            counts.undetected_rate() * 100.0
        );
    }

    // 2. Instruction-skip sweep on the compiled, protected integer compare.
    let module = integer_compare_module();
    let sweep = InstructionSkipSweep::new("integer_compare", &[41, 999], 1_000_000);
    println!("\nsingle-instruction-skip sweep (integer compare, unequal inputs):");
    for variant in [ProtectionVariant::Unprotected, ProtectionVariant::AnCode] {
        let sim = build(&module, variant)?.into_simulator(1 << 20);
        let report = sweep.run(&sim)?;
        println!(
            "  {:<12} injections {:>3}: masked {:>3}, detected {:>3}, crashed {:>3}, successful attacks {:>3}",
            variant.label(),
            report.counts.total(),
            report.counts.masked,
            report.counts.detected,
            report.counts.crashed,
            report.counts.wrong_result_undetected
        );
    }
    Ok(())
}
