//! The secure-bootloader macro-benchmark: SHA-256 over a firmware image, a
//! secure digest comparison, and a protected boot decision.
//!
//! Run with `cargo run --release --example bootloader`.

use secbranch::programs::{bootloader_module, BootImage, BOOT_FAIL, BOOT_OK};
use secbranch::{Pipeline, ProtectionVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = BootImage::generate(4096, 2018);
    let module = bootloader_module(&image);

    let baseline = Pipeline::for_variant(ProtectionVariant::CfiOnly)
        .build(&module)?
        .measure("bootloader", &[])?;
    // One compilation of the prototype serves the measurement AND the
    // tampering experiment below.
    let artifact = Pipeline::for_variant(ProtectionVariant::AnCode).build(&module)?;
    let prototype = artifact.measure("bootloader", &[])?;
    assert_eq!(baseline.result.return_value, BOOT_OK);
    assert_eq!(prototype.result.return_value, BOOT_OK);

    println!("secure bootloader, 4 KiB firmware image");
    println!(
        "  CFI baseline : {:>6} bytes, {:>9} cycles",
        baseline.code_size_bytes, baseline.result.cycles
    );
    println!(
        "  prototype    : {:>6} bytes, {:>9} cycles  (size {:+.3}%, runtime {:+.4}%)",
        prototype.code_size_bytes,
        prototype.result.cycles,
        prototype.size_overhead_percent(&baseline),
        prototype.runtime_overhead_percent(&baseline)
    );

    // A tampered image must be rejected — same artifact, no recompilation.
    let image_addr = artifact.global_address("boot_image").expect("global");
    let mut sim = artifact.simulator();
    let mut byte = sim.machine().read_bytes(image_addr + 100, 1)[0];
    byte ^= 0x01;
    sim.machine_mut().write_bytes(image_addr + 100, &[byte]);
    let tampered = sim.call("bootloader", &[], artifact.sim().max_steps)?;
    println!(
        "  tampered image -> {:#x} (BOOT_FAIL = {BOOT_FAIL:#x}), CFI clean: {}",
        tampered.return_value,
        tampered.cfi_clean()
    );
    assert_eq!(tampered.return_value, BOOT_FAIL);
    Ok(())
}
