//! The password-check scenario: a secure memcmp feeding a protected
//! grant/deny decision, compared across the protection variants with one
//! `Session` matrix call.
//!
//! Run with `cargo run --example password_check`.

use secbranch::programs::{password_check_module, DENY, GRANT};
use secbranch::{Pipeline, ProtectionVariant, Session, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = password_check_module(16);

    println!("password check with a 16-byte secret\n");
    let pipelines: Vec<Pipeline> = [
        ProtectionVariant::Unprotected,
        ProtectionVariant::CfiOnly,
        ProtectionVariant::Duplication(6),
        ProtectionVariant::AnCode,
    ]
    .iter()
    .map(|v| Pipeline::for_variant(*v))
    .collect();
    let workloads = [Workload::new(
        "password",
        module.clone(),
        "password_check",
        &[],
    )];

    let mut session = Session::new();
    let report = session.run_matrix(&workloads, &pipelines)?;
    for cell in &report.cells {
        assert_eq!(cell.measurement.result.return_value, GRANT);
        println!(
            "{:<16} code {:>6} B, {:>6} cycles, CFI checks {}, violations {}",
            cell.pipeline,
            cell.measurement.code_size_bytes,
            cell.measurement.result.cycles,
            cell.measurement.result.cfi_checks,
            cell.measurement.result.cfi_violations
        );
    }

    // Tampering with the entered password in guest memory flips the decision
    // to DENY — and the protected variant reaches it with a clean CFI state.
    // The session already compiled the prototype, so this artifact request is
    // a cache hit, not a rebuild.
    let builds_before = session.builds();
    let artifact = session.artifact(
        "password",
        &module,
        &Pipeline::for_variant(ProtectionVariant::AnCode),
    )?;
    assert_eq!(
        session.builds(),
        builds_before,
        "artifact came from the cache"
    );
    let entered = artifact
        .global_address("password_entered")
        .expect("global exists");
    let mut sim = artifact.simulator();
    sim.machine_mut().write_bytes(entered, b"wrong password!!");
    let result = sim.call("password_check", &[], 10_000_000)?;
    println!(
        "\ntampered password -> {:#x} (DENY = {:#x}), CFI clean: {}",
        result.return_value,
        DENY,
        result.cfi_clean()
    );
    assert_eq!(result.return_value, DENY);
    Ok(())
}
