//! The password-check scenario: a secure memcmp feeding a protected
//! grant/deny decision, compared across the protection variants.
//!
//! Run with `cargo run --example password_check`.

use secbranch::programs::{password_check_module, DENY, GRANT};
use secbranch::{build, measure, ProtectionVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = password_check_module(16);

    println!("password check with a 16-byte secret\n");
    for variant in [
        ProtectionVariant::Unprotected,
        ProtectionVariant::CfiOnly,
        ProtectionVariant::Duplication(6),
        ProtectionVariant::AnCode,
    ] {
        let m = measure(&module, variant, "password_check", &[])?;
        assert_eq!(m.result.return_value, GRANT);
        println!(
            "{:<16} code {:>6} B, {:>6} cycles, CFI checks {}, violations {}",
            m.variant_label,
            m.code_size_bytes,
            m.result.cycles,
            m.result.cfi_checks,
            m.result.cfi_violations
        );
    }

    // Tampering with the entered password in guest memory flips the decision
    // to DENY — and the protected variant reaches it with a clean CFI state.
    let compiled = build(&module, ProtectionVariant::AnCode)?;
    let entered = compiled
        .global_address("password_entered")
        .expect("global exists");
    let mut sim = compiled.into_simulator(1 << 20);
    sim.machine_mut().write_bytes(entered, b"wrong password!!");
    let result = sim.call("password_check", &[], 10_000_000)?;
    println!("\ntampered password -> {:#x} (DENY = {:#x}), CFI clean: {}",
        result.return_value, DENY, result.cfi_clean());
    assert_eq!(result.return_value, DENY);
    Ok(())
}
