//! The selective AN Coder — region-targeted branch protection.
//!
//! The whole-function [`AnCoder`](crate::AnCoder) protects *every*
//! conditional branch of a `protect_branches` function. The advisor's
//! closed-loop selective hardening instead names exactly the branches whose
//! unprotected versions let faults escape, and asks for protection of those
//! alone. This pass applies the same transformation
//! ([`crate::an_coder`]'s encoded comparison-slice rebuild) to an explicit
//! `(function, block)` target set, ignoring the `protect_branches`
//! annotation.
//!
//! Unlike the standard pipeline, the selective pass is meant to run
//! **without** the lowering pre-passes (`LowerSelect`, `LowerSwitch`,
//! `LoopDecoupler`): those create and renumber blocks, which would
//! invalidate the source-CFG coordinates the advisor derived its targets
//! from. The pass itself only appends instructions to existing blocks and
//! rewrites their terminators, so block ids stay stable.

use std::collections::{BTreeMap, BTreeSet};

use secbranch_ancode::Parameters;
use secbranch_ir::{BlockId, Module};

use crate::an_coder::{protect_branch, AnCoderStats};
use crate::error::PassError;
use crate::manager::Pass;

/// The selective AN Coder pass: protects exactly the conditional branches
/// terminating the named `(function, block)` targets.
#[derive(Debug, Clone)]
pub struct SelectiveAnCoder {
    params: Parameters,
    targets: BTreeMap<String, BTreeSet<BlockId>>,
}

impl SelectiveAnCoder {
    /// Creates the pass for the given target set (function name → blocks
    /// whose terminating branches should be protected) with the paper's
    /// default code parameters.
    #[must_use]
    pub fn new(targets: BTreeMap<String, BTreeSet<BlockId>>) -> Self {
        SelectiveAnCoder {
            params: Parameters::paper_defaults(),
            targets,
        }
    }

    /// Overrides the AN-code parameters.
    #[must_use]
    pub fn with_params(mut self, params: Parameters) -> Self {
        self.params = params;
        self
    }

    /// The target set.
    #[must_use]
    pub fn targets(&self) -> &BTreeMap<String, BTreeSet<BlockId>> {
        &self.targets
    }

    /// Runs the pass and reports what it did. Targets naming a missing
    /// function, a block without a conditional branch, or a branch whose
    /// comparison slice cannot be encoded are counted in
    /// [`AnCoderStats::skipped_branches`] rather than failing the pass — the
    /// advisor cross-checks convergence by re-running the campaign, not by
    /// trusting the transformation.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns a [`PassError`] for interface
    /// consistency with [`Pass::run`].
    pub fn run_with_stats(&self, module: &mut Module) -> Result<AnCoderStats, PassError> {
        let mut stats = AnCoderStats::default();
        for (name, blocks) in &self.targets {
            let Some(function) = module.functions.iter_mut().find(|f| &f.name == name) else {
                stats.skipped_branches += blocks.len();
                continue;
            };
            for &block in blocks {
                if block.0 as usize >= function.blocks.len() {
                    stats.skipped_branches += 1;
                    continue;
                }
                match protect_branch(function, block, &self.params) {
                    Ok(added) => {
                        stats.protected_branches += 1;
                        stats.added_instructions += added;
                    }
                    Err(()) => stats.skipped_branches += 1,
                }
            }
        }
        Ok(stats)
    }
}

impl Pass for SelectiveAnCoder {
    fn name(&self) -> &'static str {
        "selective-an-coder"
    }

    fn fingerprint(&self) -> String {
        let mut targets = String::new();
        for (name, blocks) in &self.targets {
            if !targets.is_empty() {
                targets.push(',');
            }
            targets.push_str(name);
            targets.push(':');
            for (i, block) in blocks.iter().enumerate() {
                if i > 0 {
                    targets.push('+');
                }
                targets.push_str(&format!("bb{}", block.0));
            }
        }
        format!(
            "selective-an-coder(A={},Cord={},Ceq={},targets=[{}])",
            self.params.code().constant(),
            self.params.ordering_constant(),
            self.params.equality_constant(),
            targets,
        )
    }

    fn run(&self, module: &mut Module) -> Result<(), PassError> {
        self.run_with_stats(module).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::builder::FunctionBuilder;
    use secbranch_ir::{interp, verify, Op, Predicate, Terminator};

    /// Two independent protected-style branches in one function; block ids:
    /// entry bb0 branches, bb1 branches, bb2/bb3/bb4 return.
    fn two_branch_module() -> Module {
        let mut b = FunctionBuilder::new("gate", 3);
        let second = b.create_block("second");
        let deny = b.create_block("deny");
        let grant = b.create_block("grant");
        let c0 = b.cmp(Predicate::Eq, b.param(0), b.param(1));
        b.branch(c0, second, deny);
        b.switch_to(second);
        let c1 = b.cmp(Predicate::Eq, b.param(1), b.param(2));
        b.branch(c1, grant, deny);
        b.switch_to(grant);
        b.ret(Some(1u32.into()));
        b.switch_to(deny);
        b.ret(Some(0u32.into()));
        let mut m = Module::new();
        m.add_function(b.finish());
        m
    }

    fn targets(entries: &[(&str, &[u32])]) -> BTreeMap<String, BTreeSet<BlockId>> {
        entries
            .iter()
            .map(|(name, blocks)| {
                (
                    (*name).to_string(),
                    blocks.iter().map(|&b| BlockId(b)).collect(),
                )
            })
            .collect()
    }

    fn protected_blocks(m: &Module, name: &str) -> Vec<u32> {
        let f = m.function(name).expect("present");
        f.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| {
                matches!(
                    b.terminator,
                    Some(Terminator::Branch {
                        protection: Some(_),
                        ..
                    })
                )
            })
            .map(|(i, _)| u32::try_from(i).unwrap())
            .collect()
    }

    #[test]
    fn protects_exactly_the_targeted_blocks() {
        let mut m = two_branch_module();
        let pass = SelectiveAnCoder::new(targets(&[("gate", &[1])]));
        let stats = pass.run_with_stats(&mut m).expect("runs");
        verify::verify_module(&m).expect("valid after pass");
        assert_eq!(stats.protected_branches, 1);
        assert_eq!(stats.skipped_branches, 0);
        assert_eq!(protected_blocks(&m, "gate"), vec![1]);

        // Semantics preserved through the partially protected function.
        for (args, expect) in [([7u32, 7, 7], 1u32), ([7, 7, 8], 0), ([7, 8, 8], 0)] {
            assert_eq!(
                interp::run(&m, "gate", &args).unwrap().return_value,
                Some(expect),
                "{args:?}"
            );
        }
    }

    #[test]
    fn annotation_is_ignored_and_untargeted_functions_are_untouched() {
        // `gate` has no `protect_branches` attribute, yet its targeted
        // branch is protected; targeting both blocks protects both.
        let mut m = two_branch_module();
        assert!(!m.function("gate").unwrap().attrs.protect_branches);
        let pass = SelectiveAnCoder::new(targets(&[("gate", &[0, 1])]));
        let stats = pass.run_with_stats(&mut m).expect("runs");
        assert_eq!(stats.protected_branches, 2);
        assert_eq!(protected_blocks(&m, "gate"), vec![0, 1]);
        // The encoded compares carry the paper's parameters.
        let f = m.function("gate").unwrap();
        let enccmps = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i.op, Op::EncodedCompare { a: 63_877, .. }))
            .count();
        assert_eq!(enccmps, 2);
    }

    #[test]
    fn bad_targets_are_counted_not_fatal() {
        let mut m = two_branch_module();
        // bb2 returns (no branch), bb9 does not exist, `ghost` neither.
        let pass = SelectiveAnCoder::new(targets(&[("gate", &[2, 9]), ("ghost", &[0])]));
        let stats = pass.run_with_stats(&mut m).expect("runs");
        assert_eq!(stats.protected_branches, 0);
        assert_eq!(stats.skipped_branches, 3);
        assert!(protected_blocks(&m, "gate").is_empty());
    }

    #[test]
    fn fingerprint_serialises_the_sorted_target_set() {
        let pass = SelectiveAnCoder::new(targets(&[("zeta", &[3, 1]), ("alpha", &[0])]));
        assert_eq!(
            pass.fingerprint(),
            "selective-an-coder(A=63877,Cord=29982,Ceq=14991,\
             targets=[alpha:bb0,zeta:bb1+bb3])"
        );
    }

    #[test]
    fn block_ids_stay_stable_across_the_pass() {
        let mut m = two_branch_module();
        let before = m.function("gate").unwrap().blocks.len();
        SelectiveAnCoder::new(targets(&[("gate", &[0])]))
            .run(&mut m)
            .expect("runs");
        assert_eq!(m.function("gate").unwrap().blocks.len(), before);
    }
}
