//! The Lower Select pass: rewrites `select` instructions into explicit
//! control flow so the AN Coder only has to reason about conditional
//! branches (Figure 3).

use secbranch_ir::{BlockId, Inst, MemWidth, Module, Op, Operand, Terminator};

use crate::error::PassError;
use crate::manager::Pass;
use crate::util::split_block;

/// Rewrites every `select cond, a, b` into
///
/// ```text
///   br cond, then, else
/// then:  store tmp, a ; jmp cont
/// else:  store tmp, b ; jmp cont
/// cont:  result = load tmp
/// ```
///
/// using a fresh stack slot as the merge value (the IR has no phi nodes; an
/// unoptimised stack slot matches the `-O0`-style shape the rest of the
/// pipeline expects).
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerSelect;

impl LowerSelect {
    /// Creates the pass.
    #[must_use]
    pub fn new() -> Self {
        LowerSelect
    }
}

impl Pass for LowerSelect {
    fn name(&self) -> &'static str {
        "lower-select"
    }

    fn run(&self, module: &mut Module) -> Result<(), PassError> {
        for function in &mut module.functions {
            while let Some((block, index)) = find_select(function) {
                lower_one(function, block, index);
            }
        }
        Ok(())
    }
}

fn find_select(function: &secbranch_ir::Function) -> Option<(BlockId, usize)> {
    for (block, b) in function.iter_blocks() {
        for (index, inst) in b.insts.iter().enumerate() {
            if matches!(inst.op, Op::Select { .. }) {
                return Some((block, index));
            }
        }
    }
    None
}

fn lower_one(function: &mut secbranch_ir::Function, block: BlockId, index: usize) {
    let inst = function.block(block).insts[index].clone();
    let Op::Select {
        cond,
        if_true,
        if_false,
    } = inst.op
    else {
        unreachable!("find_select only returns selects");
    };
    let result = inst.result.expect("select defines a value");

    // Split off everything after the select (the select itself stays in the
    // head block and is replaced by the temporary load in the continuation).
    let cont = split_block(function, block, index + 1);
    // Remove the select from the head block.
    function.block_mut(block).insts.pop();

    let tmp = function.add_local("select.tmp", 4);
    let then_bb = function.add_block("select.then");
    let else_bb = function.add_block("select.else");

    // Head block: branch on the select condition.
    function.block_mut(block).terminator = Some(Terminator::Branch {
        cond,
        if_true: then_bb,
        if_false: else_bb,
        protection: None,
    });

    // Arms: store the chosen value into the temporary and join.
    for (arm, value) in [(then_bb, if_true), (else_bb, if_false)] {
        let addr = function.fresh_value();
        function.block_mut(arm).insts.push(Inst {
            result: Some(addr),
            op: Op::LocalAddr { local: tmp },
        });
        function.block_mut(arm).insts.push(Inst {
            result: None,
            op: Op::Store {
                addr: Operand::Value(addr),
                value,
                width: MemWidth::Word,
            },
        });
        function.block_mut(arm).terminator = Some(Terminator::Jump(cont));
    }

    // Continuation: the original result value is now the loaded temporary.
    let addr = function.fresh_value();
    let cont_block = function.block_mut(cont);
    cont_block.insts.insert(
        0,
        Inst {
            result: Some(addr),
            op: Op::LocalAddr { local: tmp },
        },
    );
    cont_block.insts.insert(
        1,
        Inst {
            result: Some(result),
            op: Op::Load {
                addr: Operand::Value(addr),
                width: MemWidth::Word,
            },
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::builder::FunctionBuilder;
    use secbranch_ir::{interp, verify, BinOp, Predicate};

    fn clamp_module() -> Module {
        // clamp(x) = x > 100 ? 100 : x, then +1
        let mut b = FunctionBuilder::new("clamp_inc", 1);
        let x = b.param(0);
        let c = b.cmp(Predicate::Ugt, x, 100u32);
        let clamped = b.select(c, 100u32, x);
        let r = b.bin(BinOp::Add, clamped, 1u32);
        b.ret(Some(r));
        let mut m = Module::new();
        m.add_function(b.finish());
        m
    }

    #[test]
    fn lowering_preserves_semantics() {
        let mut m = clamp_module();
        let before: Vec<u32> = [0u32, 50, 100, 101, 5000]
            .iter()
            .map(|x| {
                interp::run(&m, "clamp_inc", &[*x])
                    .unwrap()
                    .return_value
                    .unwrap()
            })
            .collect();
        LowerSelect::new().run(&mut m).expect("runs");
        verify::verify_module(&m).expect("valid after lowering");
        let after: Vec<u32> = [0u32, 50, 100, 101, 5000]
            .iter()
            .map(|x| {
                interp::run(&m, "clamp_inc", &[*x])
                    .unwrap()
                    .return_value
                    .unwrap()
            })
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn selects_are_gone_and_branches_appear() {
        let mut m = clamp_module();
        LowerSelect::new().run(&mut m).expect("runs");
        let f = m.function("clamp_inc").expect("present");
        let selects = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i.op, Op::Select { .. }))
            .count();
        assert_eq!(selects, 0);
        assert!(!f.conditional_branches().is_empty());
        assert!(f.blocks.len() >= 4, "head, arms and continuation exist");
    }

    #[test]
    fn multiple_selects_in_one_block_are_lowered() {
        let mut b = FunctionBuilder::new("pick2", 3);
        let (s, x, y) = (b.param(0), b.param(1), b.param(2));
        let c = b.cmp(Predicate::Ne, s, 0u32);
        let first = b.select(c, x, y);
        let second = b.select(c, y, x);
        let sum = b.bin(BinOp::Add, first, second);
        b.ret(Some(sum));
        let mut m = Module::new();
        m.add_function(b.finish());

        let expected = interp::run(&m, "pick2", &[1, 10, 20]).unwrap().return_value;
        LowerSelect::new().run(&mut m).expect("runs");
        verify::verify_module(&m).expect("valid");
        assert_eq!(
            interp::run(&m, "pick2", &[1, 10, 20]).unwrap().return_value,
            expected
        );
        let f = m.function("pick2").expect("present");
        let selects = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i.op, Op::Select { .. }))
            .count();
        assert_eq!(selects, 0);
    }

    #[test]
    fn module_without_selects_is_untouched() {
        let mut b = FunctionBuilder::new("id", 1);
        b.ret(Some(b.param(0)));
        let mut m = Module::new();
        m.add_function(b.finish());
        let before = m.clone();
        LowerSelect::new().run(&mut m).expect("runs");
        assert_eq!(m, before);
    }
}
