//! The Loop Decoupler pass (Figure 3): separates loop induction variables
//! that feed both a protected comparison and address arithmetic.
//!
//! In the paper this preprocessing keeps induction variables out of conflicts
//! between the AN-coded comparison domain and plain address computation. In
//! this pipeline the same separation is realised by giving the comparison its
//! own *shadow counter*: for every stack-slot variable that is both
//! (a) loaded into a value feeding a conditional-branch comparison and
//! (b) loaded into a value used for memory addressing or other non-comparison
//! work, the pass
//!
//! 1. allocates a shadow slot,
//! 2. mirrors every store of the original slot into the shadow slot, and
//! 3. redirects the comparison's load to the shadow slot.
//!
//! A fault on the address copy of the counter can then no longer silently
//! change the (protected) trip-count decision, and the AN Coder can encode the
//! comparison chain without touching the address arithmetic.

use std::collections::{BTreeMap, HashSet};

use secbranch_ir::{
    BlockId, Function, Inst, LocalId, MemWidth, Module, Op, Operand, Terminator, ValueId,
};

use crate::error::PassError;
use crate::manager::Pass;
use crate::util::{comparison_slice, value_definitions};

/// The Loop Decoupler pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopDecoupler;

impl LoopDecoupler {
    /// Creates the pass.
    #[must_use]
    pub fn new() -> Self {
        LoopDecoupler
    }
}

impl Pass for LoopDecoupler {
    fn name(&self) -> &'static str {
        "loop-decoupler"
    }

    fn run(&self, module: &mut Module) -> Result<(), PassError> {
        for function in &mut module.functions {
            if !function.attrs.protect_branches {
                continue;
            }
            decouple_function(function);
        }
        Ok(())
    }
}

/// A `load.w` of a `localaddr` in word width: `(block, load index, local)`.
fn scalar_local_loads(function: &Function) -> Vec<(BlockId, usize, LocalId, ValueId)> {
    let defs = value_definitions(function);
    let mut loads = Vec::new();
    for (block, b) in function.iter_blocks() {
        for (index, inst) in b.insts.iter().enumerate() {
            let Op::Load {
                addr: Operand::Value(addr),
                width: MemWidth::Word,
            } = inst.op
            else {
                continue;
            };
            let Some(addr_loc) = defs.get(&addr) else {
                continue;
            };
            let addr_inst = &function.block(addr_loc.block).insts[addr_loc.index];
            if let Op::LocalAddr { local } = addr_inst.op {
                if let Some(result) = inst.result {
                    loads.push((block, index, local, result));
                }
            }
        }
    }
    loads
}

/// Values used by comparisons of conditional branches (the union of all
/// comparison slices, leaves included).
fn branch_comparison_values(function: &Function) -> HashSet<ValueId> {
    let defs = value_definitions(function);
    let mut values = HashSet::new();
    for (_, block) in function.iter_blocks() {
        let Some(Terminator::Branch { cond, .. }) = &block.terminator else {
            continue;
        };
        let Some(cond_value) = cond.as_value() else {
            continue;
        };
        values.insert(cond_value);
        let Some(loc) = defs.get(&cond_value) else {
            continue;
        };
        let cmp = &function.block(loc.block).insts[loc.index];
        if let Op::Cmp { lhs, rhs, .. } = cmp.op {
            let slice = comparison_slice(function, &[lhs, rhs]);
            values.extend(slice.internal.iter().copied());
            values.extend(slice.leaves.iter().copied());
        }
    }
    values
}

/// Values used outside the comparison world: memory addressing, stored data,
/// call arguments, returns, switch scrutinees.
fn non_comparison_uses(
    function: &Function,
    comparison_values: &HashSet<ValueId>,
) -> HashSet<ValueId> {
    let mut used = HashSet::new();
    for (_, block) in function.iter_blocks() {
        for inst in &block.insts {
            let consumer_is_comparison = inst
                .result
                .map(|r| comparison_values.contains(&r))
                .unwrap_or(false)
                || matches!(inst.op, Op::Cmp { .. });
            if consumer_is_comparison {
                continue;
            }
            for operand in inst.op.operands() {
                if let Operand::Value(v) = operand {
                    used.insert(v);
                }
            }
        }
        if let Some(term) = &block.terminator {
            if !matches!(term, Terminator::Branch { .. }) {
                for operand in term.operands() {
                    if let Operand::Value(v) = operand {
                        used.insert(v);
                    }
                }
            }
        }
    }
    used
}

fn decouple_function(function: &mut Function) {
    let comparison_values = branch_comparison_values(function);
    let other_uses = non_comparison_uses(function, &comparison_values);
    let loads = scalar_local_loads(function);

    // A local is "coupled" if some load of it feeds a comparison and some
    // load of it (possibly the same one) is used elsewhere.
    let mut feeds_comparison: HashSet<LocalId> = HashSet::new();
    let mut feeds_other: HashSet<LocalId> = HashSet::new();
    for (_, _, local, value) in &loads {
        if comparison_values.contains(value) {
            feeds_comparison.insert(*local);
        }
        if other_uses.contains(value) {
            feeds_other.insert(*local);
        }
    }
    // Sorted by slot id: shadow locals are allocated in this order, so the
    // ids (and with them stack-frame offsets and downstream fresh-value
    // numbering) never depend on hash-set iteration order — a requirement of
    // the back end's bit-deterministic-compilation guarantee.
    let mut coupled: Vec<LocalId> = feeds_comparison
        .intersection(&feeds_other)
        .copied()
        .collect();
    coupled.sort_unstable();
    if coupled.is_empty() {
        return;
    }

    // Allocate shadow locals (ordered map: `shadows` is only probed today,
    // but an ordered container keeps any future iteration deterministic).
    let mut shadows: BTreeMap<LocalId, LocalId> = BTreeMap::new();
    for local in &coupled {
        let name = format!("{}.shadow", function.locals[local.0 as usize].name);
        let size = function.locals[local.0 as usize].size_bytes;
        shadows.insert(*local, function.add_local(name, size));
    }

    // Mirror every store to a coupled local into its shadow, and redirect the
    // comparison-feeding loads to the shadow. Both are done by rewriting each
    // block's instruction list. `addr_to_local` maps a `localaddr` result to
    // its slot so the rewriting loop below does not need to re-inspect
    // definitions while mutating the function.
    let mut addr_to_local: BTreeMap<ValueId, LocalId> = BTreeMap::new();
    for (_, block) in function.iter_blocks() {
        for inst in &block.insts {
            if let (Some(result), Op::LocalAddr { local }) = (inst.result, &inst.op) {
                addr_to_local.insert(result, *local);
            }
        }
    }
    let local_of_addr = |addr: ValueId| -> Option<LocalId> { addr_to_local.get(&addr).copied() };

    // Identify the loads whose *only* role is feeding comparisons: those are
    // redirected. Loads that also feed other uses stay on the original local
    // (the AN Coder will still encode their value at the slice boundary).
    let mut redirect_loads: HashSet<ValueId> = HashSet::new();
    for (_, _, local, value) in &loads {
        if shadows.contains_key(local)
            && comparison_values.contains(value)
            && !other_uses.contains(value)
        {
            redirect_loads.insert(*value);
        }
    }

    let block_count = function.blocks.len();
    let mut pending_locals: Vec<(BlockId, usize, LocalId)> = Vec::new();
    for bi in 0..block_count {
        let block = BlockId(bi as u32);
        let mut i = 0;
        while i < function.block(block).insts.len() {
            let inst = function.block(block).insts[i].clone();
            match inst.op {
                // Mirror stores.
                Op::Store {
                    addr: Operand::Value(addr),
                    value,
                    width: MemWidth::Word,
                } => {
                    if let Some(local) = local_of_addr(addr) {
                        if let Some(&shadow) = shadows.get(&local) {
                            let shadow_addr = function.fresh_value();
                            function.block_mut(block).insts.insert(
                                i + 1,
                                Inst {
                                    result: Some(shadow_addr),
                                    op: Op::LocalAddr { local: shadow },
                                },
                            );
                            function.block_mut(block).insts.insert(
                                i + 2,
                                Inst {
                                    result: None,
                                    op: Op::Store {
                                        addr: Operand::Value(shadow_addr),
                                        value,
                                        width: MemWidth::Word,
                                    },
                                },
                            );
                            i += 2;
                        }
                    }
                }
                // Redirect comparison-only loads to the shadow local.
                Op::Load {
                    addr: Operand::Value(addr),
                    width: MemWidth::Word,
                } => {
                    if let Some(result) = inst.result {
                        if redirect_loads.contains(&result) {
                            if let Some(local) = local_of_addr(addr) {
                                if let Some(&shadow) = shadows.get(&local) {
                                    pending_locals.push((block, i, shadow));
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Apply the load redirections: insert a fresh LocalAddr of the shadow
    // right before the load and point the load at it.
    // Process per block in descending instruction order so indices stay valid.
    pending_locals.sort_by_key(|&(block, index, _)| std::cmp::Reverse((block.0, index)));
    for (block, index, shadow) in pending_locals {
        let shadow_addr = function.fresh_value();
        function.block_mut(block).insts.insert(
            index,
            Inst {
                result: Some(shadow_addr),
                op: Op::LocalAddr { local: shadow },
            },
        );
        if let Op::Load { addr, .. } = &mut function.block_mut(block).insts[index + 1].op {
            *addr = Operand::Value(shadow_addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::builder::FunctionBuilder;
    use secbranch_ir::{interp, verify, BinOp, Predicate};

    /// sum_bytes(n): iterates i = 0..n, loads `data[i]` (address use of i)
    /// and compares i < n (comparison use of i).
    fn coupled_loop_module(protect: bool) -> Module {
        let mut m = Module::new();
        m.add_global("data", (0u8..16).collect(), false);
        let mut b = FunctionBuilder::new("sum_bytes", 1);
        if protect {
            b.protect_branches();
        }
        let n = b.param(0);
        let i = b.local("i", 4);
        let acc = b.local("acc", 4);
        b.store_local(i, 0u32);
        b.store_local(acc, 0u32);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.jump(header);
        b.switch_to(header);
        let iv = b.load_local(i);
        let c = b.cmp(Predicate::Ult, iv, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let iv2 = b.load_local(i);
        let base = b.global_addr("data");
        let addr = b.bin(BinOp::Add, base, iv2);
        let byte = b.load_byte(addr);
        let a = b.load_local(acc);
        let a2 = b.bin(BinOp::Add, a, byte);
        b.store_local(acc, a2);
        let inext = b.bin(BinOp::Add, iv2, 1u32);
        b.store_local(i, inext);
        b.jump(header);
        b.switch_to(exit);
        let a = b.load_local(acc);
        b.ret(Some(a));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn semantics_are_preserved() {
        let mut m = coupled_loop_module(true);
        let before: Vec<_> = [0u32, 1, 5, 16]
            .iter()
            .map(|n| interp::run(&m, "sum_bytes", &[*n]).unwrap().return_value)
            .collect();
        LoopDecoupler::new().run(&mut m).expect("runs");
        verify::verify_module(&m).expect("valid");
        let after: Vec<_> = [0u32, 1, 5, 16]
            .iter()
            .map(|n| interp::run(&m, "sum_bytes", &[*n]).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn shadow_local_is_created_and_mirrored() {
        let mut m = coupled_loop_module(true);
        let locals_before = m.function("sum_bytes").unwrap().locals.len();
        LoopDecoupler::new().run(&mut m).expect("runs");
        let f = m.function("sum_bytes").expect("present");
        assert_eq!(f.locals.len(), locals_before + 1);
        assert!(f.locals.iter().any(|l| l.name == "i.shadow"));
        // Every store of `i` is mirrored: two stores originally (init and
        // increment), so two shadow stores are added.
        let stores = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i.op, Op::Store { .. }))
            .count();
        // i(2) + i.shadow(2) + acc(2) = 6
        assert_eq!(stores, 6);
    }

    /// Three coupled locals: each is loaded both into a protected comparison
    /// and into address arithmetic, so all three get shadows. With hash-set
    /// iteration the shadow allocation order (and with it local ids, names
    /// and stack offsets) varied per run; the pass must be deterministic.
    fn triple_coupled_module() -> Module {
        let mut m = Module::new();
        m.add_global("data", (0u8..32).collect(), false);
        let mut b = FunctionBuilder::new("mix", 3);
        b.protect_branches();
        let locals: Vec<_> = ["i", "j", "k"].iter().map(|n| b.local(*n, 4)).collect();
        for (index, local) in locals.iter().enumerate() {
            b.store_local(*local, b.param(index));
        }
        let inner = b.create_block("inner");
        let t = b.create_block("t");
        let f = b.create_block("f");
        // Comparison uses.
        let iv = b.load_local(locals[0]);
        let jv = b.load_local(locals[1]);
        let c = b.cmp(Predicate::Ult, iv, jv);
        b.branch(c, inner, f);
        b.switch_to(inner);
        let kv = b.load_local(locals[2]);
        let c2 = b.cmp(Predicate::Ult, kv, 32u32);
        b.branch(c2, t, f);
        b.switch_to(t);
        // Address uses of all three.
        let base = b.global_addr("data");
        let mut acc = b.bin(BinOp::Add, 0u32, 0u32);
        for local in &locals {
            let v = b.load_local(*local);
            let addr = b.bin(BinOp::Add, base, v);
            let byte = b.load_byte(addr);
            acc = b.bin(BinOp::Add, acc, byte);
        }
        b.ret(Some(acc));
        b.switch_to(f);
        b.ret(Some(0u32.into()));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn decoupling_is_deterministic_across_runs() {
        let reference = {
            let mut m = triple_coupled_module();
            LoopDecoupler::new().run(&mut m).expect("runs");
            m
        };
        assert_eq!(
            reference
                .function("mix")
                .unwrap()
                .locals
                .iter()
                .filter(|l| l.name.ends_with(".shadow"))
                .count(),
            3,
            "all three locals are coupled"
        );
        // Each repetition builds fresh hash sets (fresh RandomState); with
        // order-dependent allocation this failed with high probability.
        for _ in 0..16 {
            let mut m = triple_coupled_module();
            LoopDecoupler::new().run(&mut m).expect("runs");
            verify::verify_module(&m).expect("valid");
            assert_eq!(m, reference, "shadow allocation must be deterministic");
        }
    }

    #[test]
    fn unprotected_functions_and_uncoupled_locals_are_untouched() {
        let mut m = coupled_loop_module(false);
        let before = m.clone();
        LoopDecoupler::new().run(&mut m).expect("runs");
        assert_eq!(m, before, "unannotated function must not change");

        // A local that only ever feeds comparisons (a stored limit) is not
        // coupled and needs no shadow.
        let mut b = FunctionBuilder::new("check_limit", 2);
        b.protect_branches();
        let (x, limit_in) = (b.param(0), b.param(1));
        let limit = b.local("limit", 4);
        b.store_local(limit, limit_in);
        let ok = b.create_block("ok");
        let bad = b.create_block("bad");
        let lv = b.load_local(limit);
        let c = b.cmp(Predicate::Ult, x, lv);
        b.branch(c, ok, bad);
        b.switch_to(ok);
        b.ret(Some(1u32.into()));
        b.switch_to(bad);
        b.ret(Some(0u32.into()));
        let mut m = Module::new();
        m.add_function(b.finish());
        let before_locals = m.function("check_limit").unwrap().locals.len();
        LoopDecoupler::new().run(&mut m).expect("runs");
        assert_eq!(
            m.function("check_limit").unwrap().locals.len(),
            before_locals
        );
    }
}
