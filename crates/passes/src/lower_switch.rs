//! The Lower Switch pass: rewrites `switch` terminators into chains of
//! conditional branches so the AN Coder sees only two-way branches
//! (Figure 3).

use secbranch_ir::{BlockId, Function, Inst, Module, Op, Operand, Predicate, Terminator};

use crate::error::PassError;
use crate::manager::Pass;

/// Rewrites every `switch v, default, [(c1, b1), (c2, b2), …]` into a chain
///
/// ```text
///   cmp eq v, c1 ; br bb1, next1
/// next1: cmp eq v, c2 ; br bb2, next2
/// …
/// nextN-1: cmp eq v, cN ; br bbN, default
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerSwitch;

impl LowerSwitch {
    /// Creates the pass.
    #[must_use]
    pub fn new() -> Self {
        LowerSwitch
    }
}

impl Pass for LowerSwitch {
    fn name(&self) -> &'static str {
        "lower-switch"
    }

    fn run(&self, module: &mut Module) -> Result<(), PassError> {
        for function in &mut module.functions {
            while let Some(block) = find_switch(function) {
                lower_one(function, block);
            }
        }
        Ok(())
    }
}

fn find_switch(function: &Function) -> Option<BlockId> {
    function
        .iter_blocks()
        .find(|(_, b)| matches!(b.terminator, Some(Terminator::Switch { .. })))
        .map(|(id, _)| id)
}

fn lower_one(function: &mut Function, block: BlockId) {
    let Some(Terminator::Switch {
        value,
        default,
        cases,
    }) = function.block_mut(block).terminator.take()
    else {
        unreachable!("find_switch only returns switches");
    };

    if cases.is_empty() {
        function.block_mut(block).terminator = Some(Terminator::Jump(default));
        return;
    }

    // Build the chain back to front so each comparison block knows its
    // fall-through target.
    let mut fallthrough = default;
    let mut chain: Vec<BlockId> = Vec::new();
    for (i, (case_value, target)) in cases.iter().enumerate().rev() {
        let test_block = if i == 0 {
            block
        } else {
            let b = function.add_block(format!("{}.case{}", function.block(block).name, i));
            chain.push(b);
            b
        };
        let flag = function.fresh_value();
        function.block_mut(test_block).insts.push(Inst {
            result: Some(flag),
            op: Op::Cmp {
                pred: Predicate::Eq,
                lhs: value,
                rhs: Operand::Const(*case_value),
            },
        });
        function.block_mut(test_block).terminator = Some(Terminator::Branch {
            cond: Operand::Value(flag),
            if_true: *target,
            if_false: fallthrough,
            protection: None,
        });
        fallthrough = test_block;
    }
    let _ = chain;
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::builder::FunctionBuilder;
    use secbranch_ir::{interp, verify};

    fn dispatcher() -> Module {
        let mut b = FunctionBuilder::new("dispatch", 1);
        let x = b.param(0);
        let one = b.create_block("one");
        let two = b.create_block("two");
        let three = b.create_block("three");
        let other = b.create_block("other");
        b.switch(x, other, &[(1, one), (2, two), (3, three)]);
        for (bb, v) in [(one, 111u32), (two, 222), (three, 333), (other, 0)] {
            b.switch_to(bb);
            b.ret(Some(v.into()));
        }
        let mut m = Module::new();
        m.add_function(b.finish());
        m
    }

    #[test]
    fn lowering_preserves_dispatch_semantics() {
        let mut m = dispatcher();
        let inputs = [0u32, 1, 2, 3, 4, 99];
        let before: Vec<_> = inputs
            .iter()
            .map(|x| interp::run(&m, "dispatch", &[*x]).unwrap().return_value)
            .collect();
        LowerSwitch::new().run(&mut m).expect("runs");
        verify::verify_module(&m).expect("valid");
        let after: Vec<_> = inputs
            .iter()
            .map(|x| interp::run(&m, "dispatch", &[*x]).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn switches_are_gone_and_branch_chain_exists() {
        let mut m = dispatcher();
        LowerSwitch::new().run(&mut m).expect("runs");
        let f = m.function("dispatch").expect("present");
        let switches = f
            .blocks
            .iter()
            .filter(|b| matches!(b.terminator, Some(Terminator::Switch { .. })))
            .count();
        assert_eq!(switches, 0);
        // Three cases need three conditional branches.
        assert_eq!(f.conditional_branches().len(), 3);
    }

    #[test]
    fn empty_switch_becomes_a_jump() {
        let mut b = FunctionBuilder::new("f", 1);
        let only = b.create_block("only");
        b.switch(b.param(0), only, &[]);
        b.switch_to(only);
        b.ret(Some(7u32.into()));
        let mut m = Module::new();
        m.add_function(b.finish());
        LowerSwitch::new().run(&mut m).expect("runs");
        verify::verify_module(&m).expect("valid");
        assert_eq!(interp::run(&m, "f", &[3]).unwrap().return_value, Some(7));
        let f = m.function("f").expect("present");
        assert!(matches!(
            f.block(f.entry()).terminator,
            Some(Terminator::Jump(_))
        ));
    }
}
