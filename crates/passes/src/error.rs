//! Error type of the pass infrastructure.

use std::error::Error;
use std::fmt;

use secbranch_ir::IrError;

/// Errors produced while running passes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PassError {
    /// A pass produced IR that fails verification.
    VerificationAfterPass {
        /// Name of the offending pass.
        pass: String,
        /// The underlying verifier error.
        source: IrError,
    },
    /// A pass could not be applied to the module.
    Transform {
        /// Name of the pass.
        pass: String,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::VerificationAfterPass { pass, source } => {
                write!(f, "pass '{pass}' produced invalid IR: {source}")
            }
            PassError::Transform { pass, message } => {
                write!(f, "pass '{pass}' failed: {message}")
            }
        }
    }
}

impl Error for PassError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PassError::VerificationAfterPass { source, .. } => Some(source),
            PassError::Transform { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_pass() {
        let e = PassError::Transform {
            pass: "an-coder".to_string(),
            message: "constant too large to encode".to_string(),
        };
        assert!(e.to_string().contains("an-coder"));
        assert!(e.to_string().contains("constant"));
    }

    #[test]
    fn verification_errors_expose_their_source() {
        let e = PassError::VerificationAfterPass {
            pass: "dce".to_string(),
            source: IrError::verification("f", "boom"),
        };
        assert!(e.source().is_some());
    }
}
