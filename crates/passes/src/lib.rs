//! Middle-end transformation passes of the secbranch pipeline.
//!
//! The paper (Figure 3) inserts four passes between the regular IR optimisers
//! and the back end; this crate implements them, plus the state-of-the-art
//! duplication baseline the evaluation compares against and a small cleanup
//! pass:
//!
//! * [`LowerSelect`] — rewrites `select` instructions into explicit
//!   conditional branches so the AN Coder only has to deal with branches.
//! * [`LowerSwitch`] — rewrites `switch` terminators into chains of
//!   conditional branches for the same reason.
//! * [`LoopDecoupler`] — separates loop induction variables that feed both a
//!   protected comparison and address arithmetic by giving the comparison its
//!   own shadow counter.
//! * [`AnCoder`] — the paper's pass: for every conditional branch of a
//!   function marked `protect_branches` it rebuilds the comparison slice in
//!   the AN-code domain, inserts the redundantly encoded comparison
//!   (Algorithms 1 and 2) and turns the branch into a *protected branch*
//!   carrying the condition symbols the back end links into the CFI state.
//! * [`Duplication`] — the baseline countermeasure: the conditional branch is
//!   re-checked N times in a comparison tree (the paper duplicates six times
//!   to match the 6-bit Hamming distance of the AN-code).
//! * [`SelectiveAnCoder`] — the advisor's variant of the AN Coder: protects
//!   an explicit `(function, block)` target set instead of every branch,
//!   keeping block ids stable so source-CFG coordinates survive.
//! * [`DeadCodeElimination`] — removes side-effect-free instructions whose
//!   results are no longer used (e.g. comparison slices fully replaced by
//!   their encoded twins).
//!
//! Passes implement the [`Pass`] trait and are usually run through a
//! [`PassManager`], which verifies the module between passes.
//!
//! ```
//! use secbranch_passes::{standard_protection_pipeline, PassManager};
//! use secbranch_ir::{builder::FunctionBuilder, Module, Predicate};
//!
//! # fn main() -> Result<(), secbranch_passes::PassError> {
//! let mut b = FunctionBuilder::new("check", 2);
//! b.protect_branches();
//! let t = b.create_block("grant");
//! let f = b.create_block("deny");
//! let cond = b.cmp(Predicate::Eq, b.param(0), b.param(1));
//! b.branch(cond, t, f);
//! b.switch_to(t);
//! b.ret(Some(1u32.into()));
//! b.switch_to(f);
//! b.ret(Some(0u32.into()));
//! let mut module = Module::new();
//! module.add_function(b.finish());
//!
//! let mut pm = standard_protection_pipeline(Default::default());
//! pm.run(&mut module)?;
//! assert_eq!(module.function("check").unwrap().conditional_branches().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod an_coder;
mod dce;
mod duplication;
mod error;
mod loop_decoupler;
mod lower_select;
mod lower_switch;
mod manager;
mod selective;
pub mod util;

pub use an_coder::{AnCoder, AnCoderConfig, AnCoderStats};
pub use dce::DeadCodeElimination;
pub use duplication::{Duplication, DuplicationConfig};
pub use error::PassError;
pub use loop_decoupler::LoopDecoupler;
pub use lower_select::LowerSelect;
pub use lower_switch::LowerSwitch;
pub use manager::{Pass, PassManager};
pub use selective::SelectiveAnCoder;

/// Appends the paper's protection passes (Figure 3 middle end) to an
/// existing manager: Loop Decoupler, Lower Select, Lower Switch, AN Coder,
/// followed by dead-code elimination.
///
/// This is the composition hook used by the `secbranch` facade's `Pipeline`
/// builder, which may interleave its own passes before or after the standard
/// sequence.
pub fn add_standard_protection_passes(pm: &mut PassManager, config: AnCoderConfig) {
    pm.add(LoopDecoupler::new());
    pm.add(LowerSelect::new());
    pm.add(LowerSwitch::new());
    pm.add(AnCoder::new(config));
    pm.add(DeadCodeElimination::new());
}

/// Appends the duplication-baseline passes to an existing manager: Lower
/// Select, Lower Switch, N-fold branch duplication.
pub fn add_duplication_passes(pm: &mut PassManager, config: DuplicationConfig) {
    pm.add(LowerSelect::new());
    pm.add(LowerSwitch::new());
    pm.add(Duplication::new(config));
}

/// The paper's protection pipeline (Figure 3 middle end): Loop Decoupler,
/// Lower Select, Lower Switch, AN Coder, followed by dead-code elimination.
#[must_use]
pub fn standard_protection_pipeline(config: AnCoderConfig) -> PassManager {
    let mut pm = PassManager::new();
    add_standard_protection_passes(&mut pm, config);
    pm
}

/// The baseline pipeline used for the duplication comparison: Lower Select,
/// Lower Switch, N-fold branch duplication.
#[must_use]
pub fn duplication_pipeline(config: DuplicationConfig) -> PassManager {
    let mut pm = PassManager::new();
    add_duplication_passes(&mut pm, config);
    pm
}

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn pipelines_list_their_passes() {
        let pm = standard_protection_pipeline(AnCoderConfig::default());
        let names = pm.pass_names();
        assert_eq!(
            names,
            vec![
                "loop-decoupler",
                "lower-select",
                "lower-switch",
                "an-coder",
                "dce"
            ]
        );
        let pm = duplication_pipeline(DuplicationConfig::default());
        assert_eq!(
            pm.pass_names(),
            vec!["lower-select", "lower-switch", "duplication"]
        );
    }
}
