//! The duplication baseline (Section II-C): conditional branches of protected
//! functions are re-checked multiple times in a comparison tree.
//!
//! This is the state-of-the-art software countermeasure the paper compares
//! against in Table III. It re-executes the comparison after the branch has
//! been taken: on the taken path the condition must still hold, on the
//! fall-through path it must still not hold; a disagreement diverts to a
//! fault handler. The check is repeated `order` times (the paper uses six to
//! match the 6-bit Hamming distance of the AN-code), and — as the paper
//! points out — it protects only the branch itself, not the data or the
//! arithmetic feeding it, and can be defeated by inducing the same fault
//! repeatedly.

use secbranch_ir::{BlockId, Function, Inst, Module, Op, Operand, Predicate, Terminator, ValueId};

use crate::error::PassError;
use crate::manager::Pass;

/// The return value produced when a duplicated check detects a disagreement
/// (the "fault detected" handler of the baseline).
pub const FAULT_DETECTED_RETURN: u32 = 0xFDFD_FDFD;

/// Configuration of the duplication baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicationConfig {
    /// How many times the branch decision is checked in total (the original
    /// branch plus `order - 1` re-checks). The paper uses 6.
    pub order: u32,
    /// Whether only functions annotated `protect_branches` are transformed
    /// (mirrors the AN Coder's opt-in behaviour).
    pub only_protected_functions: bool,
}

impl Default for DuplicationConfig {
    fn default() -> Self {
        DuplicationConfig {
            order: 6,
            only_protected_functions: true,
        }
    }
}

/// The duplication pass.
#[derive(Debug, Clone, Copy)]
pub struct Duplication {
    config: DuplicationConfig,
}

impl Duplication {
    /// Creates the pass with the given configuration.
    #[must_use]
    pub fn new(config: DuplicationConfig) -> Self {
        Duplication { config }
    }
}

impl Pass for Duplication {
    fn name(&self) -> &'static str {
        "duplication"
    }

    fn fingerprint(&self) -> String {
        format!(
            "duplication(order={},only_protected={})",
            self.config.order, self.config.only_protected_functions,
        )
    }

    fn run(&self, module: &mut Module) -> Result<(), PassError> {
        if self.config.order < 2 {
            return Ok(());
        }
        for function in &mut module.functions {
            if self.config.only_protected_functions && !function.attrs.protect_branches {
                continue;
            }
            duplicate_branches(function, self.config.order);
        }
        Ok(())
    }
}

fn duplicate_branches(function: &mut Function, order: u32) {
    // Collect the branches up front; the transformation adds blocks but the
    // original branch blocks keep their ids.
    let branches: Vec<BlockId> = function.conditional_branches();
    if branches.is_empty() {
        return;
    }
    let handler = add_fault_handler(function);
    for block in branches {
        let Some(Terminator::Branch {
            cond,
            if_true,
            if_false,
            protection,
        }) = function.block(block).terminator.clone()
        else {
            continue;
        };
        if protection.is_some() {
            // Already protected by the AN-code scheme; the baselines are not
            // meant to be combined.
            continue;
        }
        // Find the comparison that produced the condition so the re-checks
        // recompute it instead of re-reading a (possibly faulted) flag.
        let recheck = cond
            .as_value()
            .and_then(|v| find_cmp(function, v))
            .unwrap_or(RecheckKind::Flag(cond));

        // Build `order - 1` re-check blocks on each edge.
        let true_entry = build_chain(function, &recheck, order - 1, if_true, handler, true);
        let false_entry = build_chain(function, &recheck, order - 1, if_false, handler, false);
        function.block_mut(block).terminator = Some(Terminator::Branch {
            cond,
            if_true: true_entry,
            if_false: false_entry,
            protection: None,
        });
    }
}

/// How a re-check reproduces the branch decision.
#[derive(Debug, Clone)]
enum RecheckKind {
    /// Re-execute the original comparison.
    Cmp {
        pred: Predicate,
        lhs: Operand,
        rhs: Operand,
    },
    /// The condition was not produced by a comparison in this function;
    /// re-test the flag value itself.
    Flag(Operand),
}

fn find_cmp(function: &Function, value: ValueId) -> Option<RecheckKind> {
    for (_, block) in function.iter_blocks() {
        for inst in &block.insts {
            if inst.result == Some(value) {
                if let Op::Cmp { pred, lhs, rhs } = inst.op {
                    return Some(RecheckKind::Cmp { pred, lhs, rhs });
                }
                return None;
            }
        }
    }
    None
}

fn add_fault_handler(function: &mut Function) -> BlockId {
    let handler = function.add_block("fault.detected");
    function.block_mut(handler).terminator =
        Some(Terminator::Ret(Some(Operand::Const(FAULT_DETECTED_RETURN))));
    handler
}

/// Builds a chain of `count` re-check blocks that finally reaches `target`.
/// On the `expect_taken` edge the re-checks must agree the condition holds;
/// on the other edge they must agree it does not. Disagreement diverts to
/// `handler`. Returns the entry block of the chain (or `target` directly when
/// `count` is zero).
fn build_chain(
    function: &mut Function,
    recheck: &RecheckKind,
    count: u32,
    target: BlockId,
    handler: BlockId,
    expect_taken: bool,
) -> BlockId {
    let mut next = target;
    for i in 0..count {
        let name = format!(
            "recheck.{}.{}/{}",
            if expect_taken { "t" } else { "f" },
            count - i,
            count
        );
        let block = function.add_block(name);
        let flag = function.fresh_value();
        let op = match recheck {
            RecheckKind::Cmp { pred, lhs, rhs } => Op::Cmp {
                pred: *pred,
                lhs: *lhs,
                rhs: *rhs,
            },
            RecheckKind::Flag(operand) => Op::Cmp {
                pred: Predicate::Ne,
                lhs: *operand,
                rhs: Operand::Const(0),
            },
        };
        function.block_mut(block).insts.push(Inst {
            result: Some(flag),
            op,
        });
        let (if_true, if_false) = if expect_taken {
            (next, handler)
        } else {
            (handler, next)
        };
        function.block_mut(block).terminator = Some(Terminator::Branch {
            cond: Operand::Value(flag),
            if_true,
            if_false,
            protection: None,
        });
        next = block;
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::builder::FunctionBuilder;
    use secbranch_ir::{interp, verify, Module};

    fn password_module(protect: bool) -> Module {
        let mut b = FunctionBuilder::new("check", 2);
        if protect {
            b.protect_branches();
        }
        let grant = b.create_block("grant");
        let deny = b.create_block("deny");
        let cond = b.cmp(Predicate::Eq, b.param(0), b.param(1));
        b.branch(cond, grant, deny);
        b.switch_to(grant);
        b.ret(Some(1u32.into()));
        b.switch_to(deny);
        b.ret(Some(0u32.into()));
        let mut m = Module::new();
        m.add_function(b.finish());
        m
    }

    #[test]
    fn semantics_are_preserved_for_fault_free_execution() {
        let mut m = password_module(true);
        Duplication::new(DuplicationConfig::default())
            .run(&mut m)
            .expect("runs");
        verify::verify_module(&m).expect("valid");
        assert_eq!(
            interp::run(&m, "check", &[5, 5]).unwrap().return_value,
            Some(1)
        );
        assert_eq!(
            interp::run(&m, "check", &[5, 6]).unwrap().return_value,
            Some(0)
        );
    }

    #[test]
    fn six_fold_duplication_creates_the_expected_comparison_tree() {
        let mut m = password_module(true);
        let before = m.function("check").unwrap().conditional_branches().len();
        Duplication::new(DuplicationConfig::default())
            .run(&mut m)
            .expect("runs");
        let f = m.function("check").expect("present");
        // Original branch + 5 re-checks per edge.
        assert_eq!(f.conditional_branches().len(), before + 2 * 5);
        // The comparison is actually re-executed, not just the flag reused.
        let cmps = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i.op, Op::Cmp { .. }))
            .count();
        assert_eq!(cmps, 1 + 2 * 5);
    }

    #[test]
    fn unannotated_functions_are_left_alone_by_default() {
        let mut m = password_module(false);
        let before = m.clone();
        Duplication::new(DuplicationConfig::default())
            .run(&mut m)
            .expect("runs");
        assert_eq!(m, before);

        // …but are transformed when opting into whole-module protection.
        Duplication::new(DuplicationConfig {
            only_protected_functions: false,
            ..DuplicationConfig::default()
        })
        .run(&mut m)
        .expect("runs");
        assert_ne!(m, before);
    }

    #[test]
    fn order_below_two_is_a_no_op() {
        let mut m = password_module(true);
        let before = m.clone();
        Duplication::new(DuplicationConfig {
            order: 1,
            ..DuplicationConfig::default()
        })
        .run(&mut m)
        .expect("runs");
        assert_eq!(m, before);
    }

    #[test]
    fn order_scales_the_number_of_rechecks() {
        for order in [2u32, 3, 6, 8] {
            let mut m = password_module(true);
            Duplication::new(DuplicationConfig {
                order,
                ..DuplicationConfig::default()
            })
            .run(&mut m)
            .expect("runs");
            let f = m.function("check").expect("present");
            assert_eq!(
                f.conditional_branches().len() as u32,
                1 + 2 * (order - 1),
                "order {order}"
            );
            verify::verify_module(&m).expect("valid");
        }
    }
}
