//! Shared analyses for the transformation passes: definition/use maps and
//! comparison-slice computation.

use std::collections::{HashMap, HashSet};

use secbranch_ir::{BinOp, BlockId, Function, Op, Operand, Terminator, ValueId};

/// Location of an instruction inside a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstLoc {
    /// The containing block.
    pub block: BlockId,
    /// The instruction index within the block.
    pub index: usize,
}

/// Maps every defined value to the location of its defining instruction
/// (function parameters are not included — they have no defining
/// instruction).
#[must_use]
pub fn value_definitions(function: &Function) -> HashMap<ValueId, InstLoc> {
    let mut defs = HashMap::new();
    for (block, b) in function.iter_blocks() {
        for (index, inst) in b.insts.iter().enumerate() {
            if let Some(result) = inst.result {
                defs.insert(result, InstLoc { block, index });
            }
        }
    }
    defs
}

/// Counts how many times each value is used (instruction operands and
/// terminator operands, including protected-branch condition operands).
#[must_use]
pub fn value_use_counts(function: &Function) -> HashMap<ValueId, usize> {
    let mut uses: HashMap<ValueId, usize> = HashMap::new();
    let mut bump = |operand: Operand| {
        if let Operand::Value(v) = operand {
            *uses.entry(v).or_insert(0) += 1;
        }
    };
    for (_, block) in function.iter_blocks() {
        for inst in &block.insts {
            for op in inst.op.operands() {
                bump(op);
            }
        }
        if let Some(term) = &block.terminator {
            for op in term.operands() {
                bump(op);
            }
        }
    }
    uses
}

/// The backward *comparison slice* of a set of root operands: every
/// instruction reachable by walking operands backwards through the
/// arithmetic the AN Coder can re-express in the encoded domain
/// (`add`, `sub`, and `mul` by a constant). Other instructions (loads,
/// calls, bitwise operations, …) are slice *leaves*: their results enter the
/// encoded domain through an explicit encode multiplication.
#[derive(Debug, Clone, Default)]
pub struct ComparisonSlice {
    /// Values defined by slice-internal (re-encodable) instructions.
    pub internal: HashSet<ValueId>,
    /// Values that feed the slice from outside (leaves).
    pub leaves: HashSet<ValueId>,
}

/// Whether the AN Coder can rebuild this operation in the encoded domain.
#[must_use]
pub fn is_encodable(op: &Op) -> bool {
    match op {
        Op::Bin {
            op: BinOp::Add | BinOp::Sub,
            ..
        } => true,
        Op::Bin {
            op: BinOp::Mul,
            lhs,
            rhs,
        } => lhs.as_const().is_some() || rhs.as_const().is_some(),
        _ => false,
    }
}

/// Computes the comparison slice rooted at `roots` (usually the two operands
/// of the comparison feeding a conditional branch).
#[must_use]
pub fn comparison_slice(function: &Function, roots: &[Operand]) -> ComparisonSlice {
    let defs = value_definitions(function);
    let mut slice = ComparisonSlice::default();
    let mut worklist: Vec<ValueId> = roots.iter().filter_map(|o| o.as_value()).collect();
    let mut visited: HashSet<ValueId> = HashSet::new();
    while let Some(v) = worklist.pop() {
        if !visited.insert(v) {
            continue;
        }
        let Some(loc) = defs.get(&v) else {
            // A function parameter: a leaf.
            slice.leaves.insert(v);
            continue;
        };
        let inst = &function.block(loc.block).insts[loc.index];
        if is_encodable(&inst.op) {
            slice.internal.insert(v);
            for operand in inst.op.operands() {
                if let Operand::Value(next) = operand {
                    worklist.push(next);
                }
            }
        } else {
            slice.leaves.insert(v);
        }
    }
    slice
}

/// Splits the block `block` of `function` at instruction index `at`: the
/// instructions `[at..]` and the original terminator move to a newly created
/// continuation block, and the original block is left *unterminated* (the
/// caller installs a new terminator). Returns the continuation block id.
#[must_use]
pub fn split_block(function: &mut Function, block: BlockId, at: usize) -> BlockId {
    let cont_name = format!("{}.cont", function.block(block).name);
    let cont = function.add_block(cont_name);
    let (tail, term) = {
        let b = function.block_mut(block);
        let tail: Vec<_> = b.insts.drain(at..).collect();
        let term = b.terminator.take();
        (tail, term)
    };
    let cont_block = function.block_mut(cont);
    cont_block.insts = tail;
    cont_block.terminator = term;
    cont
}

/// Rewrites every use of `from` to `to` inside the instructions whose result
/// value is in `within` and inside the terminator condition operands of the
/// listed blocks (used by the Loop Decoupler to retarget comparison slices).
pub fn replace_uses_in(
    function: &mut Function,
    from: ValueId,
    to: ValueId,
    within: &HashSet<ValueId>,
) {
    let rewrite = |operand: Operand| -> Operand {
        if operand == Operand::Value(from) {
            Operand::Value(to)
        } else {
            operand
        }
    };
    for block in &mut function.blocks {
        for inst in &mut block.insts {
            let applies = inst.result.map(|r| within.contains(&r)).unwrap_or(false);
            if applies {
                inst.op.map_operands(rewrite);
            }
        }
    }
}

/// Replaces every use of value `from` with operand `to` across the whole
/// function (instructions and terminators).
pub fn replace_all_uses(function: &mut Function, from: ValueId, to: Operand) {
    let rewrite = |operand: Operand| -> Operand {
        if operand == Operand::Value(from) {
            to
        } else {
            operand
        }
    };
    for block in &mut function.blocks {
        for inst in &mut block.insts {
            inst.op.map_operands(rewrite);
        }
        if let Some(term) = &mut block.terminator {
            match term {
                Terminator::Branch {
                    cond, protection, ..
                } => {
                    *cond = rewrite(*cond);
                    if let Some(p) = protection {
                        p.condition = rewrite(p.condition);
                    }
                }
                Terminator::Switch { value, .. } => *value = rewrite(*value),
                Terminator::Ret(Some(v)) => *v = rewrite(*v),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::builder::FunctionBuilder;
    use secbranch_ir::{Module, Predicate};

    fn slice_fixture() -> (Module, ValueId, ValueId) {
        // %sum = add %p0, 5 ; %scaled = mul %sum, 3 ; %other = and %p1, 255
        // cmp ult (%scaled + %other) ...
        let mut b = FunctionBuilder::new("f", 2);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let sum = b.bin(BinOp::Add, b.param(0), 5u32);
        let scaled = b.bin(BinOp::Mul, sum, 3u32);
        let other = b.bin(BinOp::And, b.param(1), 255u32);
        let mixed = b.bin(BinOp::Add, scaled, other);
        let cond = b.cmp(Predicate::Ult, mixed, 100u32);
        b.branch(cond, t, e);
        b.switch_to(t);
        b.ret(Some(1u32.into()));
        b.switch_to(e);
        b.ret(Some(0u32.into()));
        let f = b.finish();
        let mixed_v = mixed.as_value().expect("value");
        let other_v = other.as_value().expect("value");
        let mut m = Module::new();
        m.add_function(f);
        (m, mixed_v, other_v)
    }

    #[test]
    fn definitions_and_uses_are_tracked() {
        let (m, mixed, _) = slice_fixture();
        let f = m.function("f").expect("present");
        let defs = value_definitions(f);
        assert!(defs.contains_key(&mixed));
        assert!(
            !defs.contains_key(&ValueId(0)),
            "parameters have no def site"
        );
        let uses = value_use_counts(f);
        assert_eq!(uses.get(&mixed), Some(&1));
    }

    #[test]
    fn comparison_slice_distinguishes_internal_and_leaves() {
        let (m, mixed, other) = slice_fixture();
        let f = m.function("f").expect("present");
        let slice = comparison_slice(f, &[Operand::Value(mixed), Operand::Const(100)]);
        // add/mul-by-const chains are internal; the and-instruction and the
        // parameter it derives from are leaves.
        assert!(slice.internal.contains(&mixed));
        assert!(slice.leaves.contains(&other));
        assert!(!slice.internal.contains(&other));
        // Parameter %0 is reached through internal adds and is a leaf.
        assert!(slice.leaves.contains(&ValueId(0)));
    }

    #[test]
    fn encodability_rules() {
        assert!(is_encodable(&Op::Bin {
            op: BinOp::Add,
            lhs: Operand::Const(1),
            rhs: Operand::Const(2)
        }));
        assert!(is_encodable(&Op::Bin {
            op: BinOp::Mul,
            lhs: Operand::Value(ValueId(1)),
            rhs: Operand::Const(2)
        }));
        assert!(!is_encodable(&Op::Bin {
            op: BinOp::Mul,
            lhs: Operand::Value(ValueId(1)),
            rhs: Operand::Value(ValueId(2))
        }));
        assert!(!is_encodable(&Op::Bin {
            op: BinOp::Xor,
            lhs: Operand::Const(1),
            rhs: Operand::Const(2)
        }));
    }

    #[test]
    fn block_splitting_moves_tail_and_terminator() {
        let (mut m, _, _) = slice_fixture();
        let f = m.function_mut("f").expect("present");
        let entry = f.entry();
        let original_len = f.block(entry).insts.len();
        let cont = split_block(f, entry, 2);
        assert_eq!(f.block(entry).insts.len(), 2);
        assert_eq!(f.block(cont).insts.len(), original_len - 2);
        assert!(f.block(entry).terminator.is_none());
        assert!(f.block(cont).terminator.is_some());
    }

    #[test]
    fn replace_all_uses_rewrites_terminators_too() {
        let mut b = FunctionBuilder::new("g", 1);
        let v = b.bin(BinOp::Add, b.param(0), 1u32);
        b.ret(Some(v));
        let mut f = b.finish();
        let vid = v.as_value().expect("value");
        replace_all_uses(&mut f, vid, Operand::Const(7));
        match &f.block(f.entry()).terminator {
            Some(Terminator::Ret(Some(Operand::Const(7)))) => {}
            other => panic!("unexpected terminator {other:?}"),
        }
    }
}
