//! The AN Coder pass — the paper's central transformation.
//!
//! For every conditional branch of a function annotated `protect_branches`
//! the pass:
//!
//! 1. finds the comparison that produces the branch condition and its
//!    backward *comparison slice* (the additions, subtractions and
//!    multiplications by constants that feed it),
//! 2. rebuilds that slice in the AN-code domain (`xc = A * x`): slice leaves
//!    (loads, parameters, results of non-arithmetic operations) are encoded
//!    with an explicit multiplication, constants become encoded constants,
//!    and additions/subtractions are replayed on the encoded values
//!    (AN-codes are closed under them, Equation 1),
//! 3. replaces the plain comparison with the *redundantly encoded comparison*
//!    (Algorithm 1 / Algorithm 2, represented by the IR's `enccmp`
//!    instruction), and
//! 4. turns the branch into a *protected branch*: the branch itself still
//!    compares the condition value against the expected `true` symbol of
//!    Table I, and the attached [`secbranch_ir::BranchProtection`] tells the
//!    back end which symbols to link into the CFI state of the successors
//!    (Section III).
//!
//! Branches whose condition cannot be traced to a comparison, or whose slice
//! contains constants outside the functional range of the code, are left
//! unprotected and counted in [`AnCoderStats::skipped_branches`].
//!
//! Like the paper's scheme, the encoded comparison assumes the compared
//! functional values stay within the code's functional range (16-bit data for
//! the default `A = 63877`); the guest workloads uphold this by comparing
//! bytes or 16-bit quantities.

use std::collections::HashMap;

use secbranch_ancode::{Parameters, Predicate as AnPredicate};
use secbranch_ir::cfg::Cfg;
use secbranch_ir::{
    BinOp, BlockId, BranchProtection, Function, Inst, Module, Op, Operand, Predicate, Terminator,
    ValueId,
};

use crate::error::PassError;
use crate::manager::Pass;
use crate::util::{comparison_slice, value_definitions, InstLoc};

/// Configuration of the AN Coder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnCoderConfig {
    /// The AN-code and condition-constant parameters (defaults to the
    /// paper's `A = 63877`, `C = 29982` / `14991`).
    pub params: Parameters,
    /// Whether only functions annotated `protect_branches` are transformed.
    pub only_protected_functions: bool,
}

impl Default for AnCoderConfig {
    fn default() -> Self {
        AnCoderConfig {
            params: Parameters::paper_defaults(),
            only_protected_functions: true,
        }
    }
}

/// Statistics reported by [`AnCoder::run_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnCoderStats {
    /// Conditional branches that were protected.
    pub protected_branches: usize,
    /// Conditional branches that could not be protected (no traceable
    /// comparison, out-of-range constants, or already protected).
    pub skipped_branches: usize,
    /// Instructions added for the encoded comparison slices (encoding
    /// multiplications, replayed arithmetic, encoded compares and symbol
    /// checks).
    pub added_instructions: usize,
}

/// The AN Coder pass.
#[derive(Debug, Clone, Copy)]
pub struct AnCoder {
    config: AnCoderConfig,
}

impl AnCoder {
    /// Creates the pass with the given configuration.
    #[must_use]
    pub fn new(config: AnCoderConfig) -> Self {
        AnCoder { config }
    }

    /// Runs the pass and reports what it did.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns a [`PassError`] for interface
    /// consistency with [`Pass::run`].
    pub fn run_with_stats(&self, module: &mut Module) -> Result<AnCoderStats, PassError> {
        let mut stats = AnCoderStats::default();
        for function in &mut module.functions {
            if self.config.only_protected_functions && !function.attrs.protect_branches {
                continue;
            }
            protect_function(function, &self.config.params, &mut stats);
        }
        Ok(stats)
    }
}

impl Pass for AnCoder {
    fn name(&self) -> &'static str {
        "an-coder"
    }

    fn fingerprint(&self) -> String {
        let params = self.config.params;
        format!(
            "an-coder(A={},Cord={},Ceq={},only_protected={})",
            params.code().constant(),
            params.ordering_constant(),
            params.equality_constant(),
            self.config.only_protected_functions,
        )
    }

    fn run(&self, module: &mut Module) -> Result<(), PassError> {
        self.run_with_stats(module).map(|_| ())
    }
}

/// Maps the IR predicate onto the AN-code predicate.
fn an_predicate(pred: Predicate) -> AnPredicate {
    match pred {
        Predicate::Eq => AnPredicate::Eq,
        Predicate::Ne => AnPredicate::Ne,
        Predicate::Ult => AnPredicate::Ult,
        Predicate::Ule => AnPredicate::Ule,
        Predicate::Ugt => AnPredicate::Ugt,
        Predicate::Uge => AnPredicate::Uge,
    }
}

fn protect_function(function: &mut Function, params: &Parameters, stats: &mut AnCoderStats) {
    let branch_blocks: Vec<BlockId> = function.conditional_branches();
    for block in branch_blocks {
        match protect_branch(function, block, params) {
            Ok(added) => {
                stats.protected_branches += 1;
                stats.added_instructions += added;
            }
            Err(()) => stats.skipped_branches += 1,
        }
    }
}

/// Attempts to protect the conditional branch terminating `block`; returns
/// the number of added instructions, or `Err(())` if the branch must stay
/// unprotected. Shared with the selective AN Coder
/// (`crate::SelectiveAnCoder`), which applies it to an explicit target set
/// instead of every conditional branch.
pub(crate) fn protect_branch(
    function: &mut Function,
    block: BlockId,
    params: &Parameters,
) -> Result<usize, ()> {
    let Some(Terminator::Branch {
        cond,
        if_true,
        if_false,
        protection,
    }) = function.block(block).terminator.clone()
    else {
        return Err(());
    };
    if protection.is_some() {
        return Err(());
    }
    let cond_value = cond.as_value().ok_or(())?;

    let defs = value_definitions(function);
    let cmp_loc = *defs.get(&cond_value).ok_or(())?;
    let Op::Cmp { pred, lhs, rhs } = function.block(cmp_loc.block).insts[cmp_loc.index]
        .op
        .clone()
    else {
        return Err(());
    };

    // Build the encoded twin of the comparison slice.
    let slice = comparison_slice(function, &[lhs, rhs]);
    let order = slice_topological_order(function, &defs, &slice.internal);
    let code = params.code();
    let a = code.constant();

    let mut new_insts: Vec<Inst> = Vec::new();
    let mut encoded: HashMap<ValueId, Operand> = HashMap::new();

    // A helper closure cannot borrow `function` mutably while we also push
    // fresh values, so encoding is done in two explicit steps.
    let encode_operand = |function: &mut Function,
                          new_insts: &mut Vec<Inst>,
                          encoded: &mut HashMap<ValueId, Operand>,
                          operand: Operand|
     -> Result<Operand, ()> {
        match operand {
            Operand::Const(c) => {
                if c >= code.functional_max_exclusive() {
                    return Err(());
                }
                Ok(Operand::Const(a * c))
            }
            Operand::Value(v) => {
                if let Some(e) = encoded.get(&v) {
                    return Ok(*e);
                }
                // A leaf: encode with an explicit multiplication by A.
                let enc = function.fresh_value();
                new_insts.push(Inst {
                    result: Some(enc),
                    op: Op::Bin {
                        op: BinOp::Mul,
                        lhs: Operand::Value(v),
                        rhs: Operand::Const(a),
                    },
                });
                let enc_op = Operand::Value(enc);
                encoded.insert(v, enc_op);
                Ok(enc_op)
            }
        }
    };

    // Replay the slice-internal arithmetic on encoded operands, in
    // definition order.
    for v in order {
        let loc = defs[&v];
        let op = function.block(loc.block).insts[loc.index].op.clone();
        let twin_op = match op {
            Op::Bin {
                op: bin @ (BinOp::Add | BinOp::Sub),
                lhs,
                rhs,
            } => {
                let l = encode_operand(function, &mut new_insts, &mut encoded, lhs)?;
                let r = encode_operand(function, &mut new_insts, &mut encoded, rhs)?;
                Op::Bin {
                    op: bin,
                    lhs: l,
                    rhs: r,
                }
            }
            Op::Bin {
                op: BinOp::Mul,
                lhs,
                rhs,
            } => {
                // Exactly one operand is a constant (slice membership rule);
                // the constant stays plain and scales the encoded operand.
                let (value_op, const_op) = match (lhs, rhs) {
                    (Operand::Const(c), other) => (other, c),
                    (other, Operand::Const(c)) => (other, c),
                    _ => return Err(()),
                };
                let v_enc = encode_operand(function, &mut new_insts, &mut encoded, value_op)?;
                Op::Bin {
                    op: BinOp::Mul,
                    lhs: v_enc,
                    rhs: Operand::Const(const_op),
                }
            }
            _ => return Err(()),
        };
        let twin = function.fresh_value();
        new_insts.push(Inst {
            result: Some(twin),
            op: twin_op,
        });
        encoded.insert(v, Operand::Value(twin));
    }

    let lhs_enc = encode_operand(function, &mut new_insts, &mut encoded, lhs)?;
    let rhs_enc = encode_operand(function, &mut new_insts, &mut encoded, rhs)?;

    // The encoded comparison and the symbol check.
    let an_pred = an_predicate(pred);
    let class_constant = if an_pred.is_equality_class() {
        params.equality_constant()
    } else {
        params.ordering_constant()
    };
    let symbols = params.symbols(an_pred);

    let enc_cond = function.fresh_value();
    new_insts.push(Inst {
        result: Some(enc_cond),
        op: Op::EncodedCompare {
            pred,
            lhs: lhs_enc,
            rhs: rhs_enc,
            a,
            c: class_constant,
        },
    });
    let flag = function.fresh_value();
    new_insts.push(Inst {
        result: Some(flag),
        op: Op::Cmp {
            pred: Predicate::Eq,
            lhs: Operand::Value(enc_cond),
            rhs: Operand::Const(symbols.true_value()),
        },
    });

    let added = new_insts.len();
    function.block_mut(block).insts.extend(new_insts);
    function.block_mut(block).terminator = Some(Terminator::Branch {
        cond: Operand::Value(flag),
        if_true,
        if_false,
        protection: Some(BranchProtection {
            condition: Operand::Value(enc_cond),
            true_symbol: symbols.true_value(),
            false_symbol: symbols.false_value(),
        }),
    });
    Ok(added)
}

/// Orders the slice-internal values so every definition precedes its uses:
/// blocks in reverse post-order, instructions in block order.
fn slice_topological_order(
    function: &Function,
    defs: &HashMap<ValueId, InstLoc>,
    internal: &std::collections::HashSet<ValueId>,
) -> Vec<ValueId> {
    let cfg = Cfg::new(function);
    let rpo = cfg.reverse_post_order();
    let block_rank: HashMap<BlockId, usize> =
        rpo.iter().enumerate().map(|(i, b)| (*b, i)).collect();
    let mut values: Vec<ValueId> = internal.iter().copied().collect();
    values.sort_by_key(|v| {
        let loc = defs[v];
        (
            block_rank.get(&loc.block).copied().unwrap_or(usize::MAX),
            loc.index,
        )
    });
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::builder::FunctionBuilder;
    use secbranch_ir::{interp, verify, Module};

    fn password_module() -> Module {
        let mut b = FunctionBuilder::new("check", 2);
        b.protect_branches();
        let grant = b.create_block("grant");
        let deny = b.create_block("deny");
        let cond = b.cmp(Predicate::Eq, b.param(0), b.param(1));
        b.branch(cond, grant, deny);
        b.switch_to(grant);
        b.ret(Some(1u32.into()));
        b.switch_to(deny);
        b.ret(Some(0u32.into()));
        let mut m = Module::new();
        m.add_function(b.finish());
        m
    }

    fn arithmetic_module() -> Module {
        // if (x + 3) - y < 40 { 1 } else { 0 }
        let mut b = FunctionBuilder::new("range_check", 2);
        b.protect_branches();
        let t = b.create_block("t");
        let f = b.create_block("f");
        let sum = b.bin(BinOp::Add, b.param(0), 3u32);
        let diff = b.bin(BinOp::Sub, sum, b.param(1));
        let cond = b.cmp(Predicate::Ult, diff, 40u32);
        b.branch(cond, t, f);
        b.switch_to(t);
        b.ret(Some(1u32.into()));
        b.switch_to(f);
        b.ret(Some(0u32.into()));
        let mut m = Module::new();
        m.add_function(b.finish());
        m
    }

    fn run_coder(m: &mut Module) -> AnCoderStats {
        let coder = AnCoder::new(AnCoderConfig::default());
        let stats = coder.run_with_stats(m).expect("runs");
        verify::verify_module(m).expect("valid after an-coder");
        stats
    }

    #[test]
    fn equality_branch_is_protected_and_semantics_preserved() {
        let mut m = password_module();
        let stats = run_coder(&mut m);
        assert_eq!(stats.protected_branches, 1);
        assert_eq!(stats.skipped_branches, 0);
        assert!(stats.added_instructions >= 3);

        for (x, y, expect) in [
            (5u32, 5u32, 1u32),
            (5, 6, 0),
            (0, 0, 1),
            (65_000, 64_999, 0),
        ] {
            assert_eq!(
                interp::run(&m, "check", &[x, y]).unwrap().return_value,
                Some(expect),
                "{x} == {y}"
            );
        }
    }

    #[test]
    fn protected_branch_carries_table_one_symbols() {
        let mut m = password_module();
        run_coder(&mut m);
        let f = m.function("check").expect("present");
        let Some(Terminator::Branch {
            protection: Some(p),
            ..
        }) = &f.block(f.entry()).terminator
        else {
            panic!("branch must be protected");
        };
        assert_eq!(p.true_symbol, 2 * 14_991);
        assert_eq!(p.false_symbol, 5_570 + 2 * 14_991);
    }

    #[test]
    fn arithmetic_slice_is_replayed_in_the_encoded_domain() {
        let mut m = arithmetic_module();
        let stats = run_coder(&mut m);
        assert_eq!(stats.protected_branches, 1);

        // Semantics across the boundary (39 < 40, 40 !< 40).
        for (x, y, expect) in [(40u32, 4u32, 1u32), (41, 4, 0), (45, 10, 1), (60, 3, 0)] {
            assert_eq!(
                interp::run(&m, "range_check", &[x, y])
                    .unwrap()
                    .return_value,
                Some(expect),
                "({x} + 3) - {y} < 40"
            );
        }

        // The protected function contains an encoded compare and encoded
        // constants (A * 3, A * 40 appear as immediates).
        let f = m.function("range_check").expect("present");
        let has_enccmp = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i.op, Op::EncodedCompare { .. }));
        assert!(has_enccmp);
        let a = Parameters::paper_defaults().code().constant();
        let has_encoded_const = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .flat_map(|i| i.op.operands())
            .any(|o| o == Operand::Const(a * 3));
        assert!(has_encoded_const, "slice constants must be encoded");
    }

    #[test]
    fn unprotectable_branches_are_skipped() {
        // The branch condition is a parameter, not a comparison result.
        let mut b = FunctionBuilder::new("flagged", 1);
        b.protect_branches();
        let t = b.create_block("t");
        let f = b.create_block("f");
        b.branch(b.param(0), t, f);
        b.switch_to(t);
        b.ret(Some(1u32.into()));
        b.switch_to(f);
        b.ret(Some(0u32.into()));
        let mut m = Module::new();
        m.add_function(b.finish());
        let stats = run_coder(&mut m);
        assert_eq!(stats.protected_branches, 0);
        assert_eq!(stats.skipped_branches, 1);
    }

    #[test]
    fn out_of_range_constants_prevent_protection() {
        let mut b = FunctionBuilder::new("big", 1);
        b.protect_branches();
        let t = b.create_block("t");
        let f = b.create_block("f");
        let cond = b.cmp(Predicate::Ult, b.param(0), 1_000_000u32);
        b.branch(cond, t, f);
        b.switch_to(t);
        b.ret(Some(1u32.into()));
        b.switch_to(f);
        b.ret(Some(0u32.into()));
        let mut m = Module::new();
        m.add_function(b.finish());
        let stats = run_coder(&mut m);
        assert_eq!(stats.protected_branches, 0);
        assert_eq!(stats.skipped_branches, 1);
        // The function still behaves correctly.
        assert_eq!(interp::run(&m, "big", &[5]).unwrap().return_value, Some(1));
    }

    #[test]
    fn unannotated_functions_are_untouched_unless_configured() {
        let mut b = FunctionBuilder::new("plain", 2);
        let t = b.create_block("t");
        let f = b.create_block("f");
        let cond = b.cmp(Predicate::Eq, b.param(0), b.param(1));
        b.branch(cond, t, f);
        b.switch_to(t);
        b.ret(Some(1u32.into()));
        b.switch_to(f);
        b.ret(Some(0u32.into()));
        let mut m = Module::new();
        m.add_function(b.finish());

        let stats = AnCoder::new(AnCoderConfig::default())
            .run_with_stats(&mut m)
            .expect("runs");
        assert_eq!(stats.protected_branches, 0);

        let stats = AnCoder::new(AnCoderConfig {
            only_protected_functions: false,
            ..AnCoderConfig::default()
        })
        .run_with_stats(&mut m)
        .expect("runs");
        assert_eq!(stats.protected_branches, 1);
    }

    #[test]
    fn full_pipeline_with_dce_removes_the_plain_comparison() {
        let mut m = password_module();
        let pm = crate::standard_protection_pipeline(AnCoderConfig::default());
        pm.run(&mut m).expect("pipeline runs");
        let f = m.function("check").expect("present");
        // The original plain `cmp eq %0, %1` is dead after protection (its
        // only consumer was the branch) and must have been removed; the
        // remaining comparison is the symbol check against Table I's value.
        let plain_cmps: Vec<_> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i.op, Op::Cmp { .. }))
            .collect();
        assert_eq!(plain_cmps.len(), 1);
        assert!(matches!(
            plain_cmps[0].op,
            Op::Cmp {
                rhs: Operand::Const(29_982),
                ..
            }
        ));
    }

    #[test]
    fn all_predicates_are_supported() {
        for pred in Predicate::ALL {
            let mut b = FunctionBuilder::new("p", 2);
            b.protect_branches();
            let t = b.create_block("t");
            let f = b.create_block("f");
            let cond = b.cmp(pred, b.param(0), b.param(1));
            b.branch(cond, t, f);
            b.switch_to(t);
            b.ret(Some(1u32.into()));
            b.switch_to(f);
            b.ret(Some(0u32.into()));
            let mut m = Module::new();
            m.add_function(b.finish());
            let stats = run_coder(&mut m);
            assert_eq!(stats.protected_branches, 1, "{pred}");
            for (x, y) in [(3u32, 7u32), (7, 3), (5, 5)] {
                let expect = u32::from(pred.evaluate(x, y));
                assert_eq!(
                    interp::run(&m, "p", &[x, y]).unwrap().return_value,
                    Some(expect),
                    "{x} {pred} {y}"
                );
            }
        }
    }
}
