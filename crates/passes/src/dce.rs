//! Dead-code elimination.

use secbranch_ir::{Module, Op};

use crate::error::PassError;
use crate::manager::Pass;
use crate::util::value_use_counts;

/// Removes side-effect-free instructions whose results are never used.
///
/// The AN Coder leaves the original comparison slice in place; when the slice
/// had no other consumers it becomes dead and this pass removes it, so the
/// protected program does not pay for both the plain and the encoded
/// computation.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadCodeElimination;

impl DeadCodeElimination {
    /// Creates the pass.
    #[must_use]
    pub fn new() -> Self {
        DeadCodeElimination
    }
}

fn has_side_effects(op: &Op) -> bool {
    matches!(op, Op::Store { .. } | Op::Call { .. })
}

impl Pass for DeadCodeElimination {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, module: &mut Module) -> Result<(), PassError> {
        for function in &mut module.functions {
            // Iterate to a fixed point: removing one dead instruction can
            // make its operands dead too.
            loop {
                let uses = value_use_counts(function);
                let mut removed_any = false;
                for block in &mut function.blocks {
                    let before = block.insts.len();
                    block.insts.retain(|inst| {
                        let dead = !has_side_effects(&inst.op)
                            && inst.result.map(|r| !uses.contains_key(&r)).unwrap_or(false);
                        !dead
                    });
                    if block.insts.len() != before {
                        removed_any = true;
                    }
                }
                if !removed_any {
                    break;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::builder::FunctionBuilder;
    use secbranch_ir::{BinOp, Module};

    #[test]
    fn removes_unused_chains_but_keeps_side_effects() {
        let mut b = FunctionBuilder::new("f", 1);
        let p = b.param(0);
        // Dead chain: d1 -> d2 (never used).
        let d1 = b.bin(BinOp::Add, p, 1u32);
        let _d2 = b.bin(BinOp::Mul, d1, 3u32);
        // Live value.
        let live = b.bin(BinOp::Add, p, 2u32);
        // Store is kept even though its "result" does not exist.
        let slot = b.local("slot", 4);
        b.store_local(slot, live);
        b.ret(Some(live));
        let mut m = Module::new();
        m.add_function(b.finish());

        let before = m.inst_count();
        DeadCodeElimination::new().run(&mut m).expect("runs");
        let after = m.inst_count();
        assert!(after < before);
        let f = m.function("f").expect("present");
        // live add, localaddr, store remain; the two dead arithmetic
        // instructions are gone.
        assert_eq!(f.inst_count(), 3);
        secbranch_ir::verify::verify_module(&m).expect("still valid");
    }

    #[test]
    fn dead_loads_are_removed_but_calls_are_not() {
        let mut callee = FunctionBuilder::new("callee", 0);
        callee.ret(None);

        let mut b = FunctionBuilder::new("f", 0);
        let g = b.create_block("next");
        let addr = b.global_addr("data");
        let _unused_load = b.load(addr);
        let _call = b.call("callee", &[]);
        b.jump(g);
        b.switch_to(g);
        b.ret(None);

        let mut m = Module::new();
        m.add_global("data", vec![0; 4], false);
        m.add_function(callee.finish());
        m.add_function(b.finish());

        DeadCodeElimination::new().run(&mut m).expect("runs");
        let f = m.function("f").expect("present");
        // Only the call remains (globaladdr + load were dead).
        assert_eq!(f.inst_count(), 1);
        assert!(matches!(f.block(f.entry()).insts[0].op, Op::Call { .. }));
    }

    #[test]
    fn idempotent_on_clean_code() {
        let mut b = FunctionBuilder::new("f", 2);
        let s = b.bin(BinOp::Add, b.param(0), b.param(1));
        b.ret(Some(s));
        let mut m = Module::new();
        m.add_function(b.finish());
        DeadCodeElimination::new().run(&mut m).expect("runs");
        let first = m.clone();
        DeadCodeElimination::new().run(&mut m).expect("runs");
        assert_eq!(m, first);
    }
}
