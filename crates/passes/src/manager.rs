//! The [`Pass`] trait and the [`PassManager`].

use secbranch_ir::{verify, Module};

use crate::error::PassError;

/// A module-level transformation pass.
pub trait Pass {
    /// A short, stable, kebab-case name used in diagnostics and reports.
    fn name(&self) -> &'static str;

    /// A stable identity string covering the pass's *configuration* as well
    /// as its name, used by build caches to tell differently-parameterised
    /// instances of the same pass apart. Passes that carry configuration
    /// should override this; the default is the bare name, which makes two
    /// differently-configured instances indistinguishable to a cache.
    fn fingerprint(&self) -> String {
        self.name().to_string()
    }

    /// Applies the transformation to the module.
    ///
    /// # Errors
    ///
    /// Returns [`PassError::Transform`] if the pass cannot be applied.
    fn run(&self, module: &mut Module) -> Result<(), PassError>;
}

/// Runs a sequence of passes, verifying the module after each one.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass + Send + Sync>>,
    verify_between: bool,
}

impl PassManager {
    /// Creates an empty manager with inter-pass verification enabled.
    #[must_use]
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            verify_between: true,
        }
    }

    /// Disables the verifier runs between passes (used by benchmarks to
    /// isolate transformation time).
    pub fn without_verification(mut self) -> Self {
        self.verify_between = false;
        self
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: impl Pass + Send + Sync + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// The names of the registered passes, in execution order.
    #[must_use]
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs all passes in order.
    ///
    /// # Errors
    ///
    /// Returns the first pass failure, or
    /// [`PassError::VerificationAfterPass`] if a pass breaks the IR.
    pub fn run(&self, module: &mut Module) -> Result<(), PassError> {
        for pass in &self.passes {
            pass.run(module)?;
            if self.verify_between {
                verify::verify_module(module).map_err(|source| {
                    PassError::VerificationAfterPass {
                        pass: pass.name().to_string(),
                        source,
                    }
                })?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.pass_names())
            .field("verify_between", &self.verify_between)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::builder::FunctionBuilder;
    use secbranch_ir::{BinOp, Operand, Terminator, ValueId};

    struct RenamePass;
    impl Pass for RenamePass {
        fn name(&self) -> &'static str {
            "rename"
        }
        fn run(&self, module: &mut Module) -> Result<(), PassError> {
            for f in &mut module.functions {
                f.name = format!("{}_renamed", f.name);
            }
            Ok(())
        }
    }

    struct BreakingPass;
    impl Pass for BreakingPass {
        fn name(&self) -> &'static str {
            "breaking"
        }
        fn run(&self, module: &mut Module) -> Result<(), PassError> {
            for f in &mut module.functions {
                let entry = f.entry();
                f.block_mut(entry).terminator =
                    Some(Terminator::Ret(Some(Operand::Value(ValueId(999)))));
            }
            Ok(())
        }
    }

    fn simple_module() -> Module {
        let mut b = FunctionBuilder::new("f", 1);
        let v = b.bin(BinOp::Add, b.param(0), 1u32);
        b.ret(Some(v));
        let mut m = Module::new();
        m.add_function(b.finish());
        m
    }

    #[test]
    fn passes_run_in_order() {
        let mut pm = PassManager::new();
        pm.add(RenamePass);
        pm.add(RenamePass);
        let mut m = simple_module();
        pm.run(&mut m).expect("runs");
        assert!(m.function("f_renamed_renamed").is_some());
        assert_eq!(pm.pass_names(), vec!["rename", "rename"]);
    }

    #[test]
    fn broken_ir_is_caught_between_passes() {
        let mut pm = PassManager::new();
        pm.add(BreakingPass);
        let mut m = simple_module();
        let err = pm.run(&mut m).expect_err("must fail verification");
        assert!(matches!(err, PassError::VerificationAfterPass { .. }));
    }

    #[test]
    fn verification_can_be_disabled() {
        let mut pm = PassManager::new().without_verification();
        pm.add(BreakingPass);
        let mut m = simple_module();
        assert!(pm.run(&mut m).is_ok());
    }

    #[test]
    fn debug_lists_passes() {
        let mut pm = PassManager::new();
        pm.add(RenamePass);
        assert!(format!("{pm:?}").contains("rename"));
    }
}
