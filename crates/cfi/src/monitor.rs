//! The runtime CFI state automaton.

/// A recorded CFI violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The state the monitor held when the check fired.
    pub actual_state: u32,
    /// The signature the check expected.
    pub expected_state: u32,
    /// Index of the check (0-based, counting all checks executed so far).
    pub check_index: u32,
}

/// The runtime CFI state machine.
///
/// This models the memory-mapped "CFI unit" of the evaluation platform: a
/// state register updated by instrumented stores, a check operation latching
/// violations, and a replace operation used at function boundaries (the
/// "replace the state" technique for control-flow merges across calls).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfiMonitor {
    state: u32,
    checks: u32,
    violations: u32,
    first_violation: Option<Violation>,
}

impl CfiMonitor {
    /// Creates a monitor with the given initial state (normally the signature
    /// of the entry block of the first executed function).
    #[must_use]
    pub fn new(initial_state: u32) -> Self {
        CfiMonitor {
            state: initial_state,
            checks: 0,
            violations: 0,
            first_violation: None,
        }
    }

    /// XORs a value into the state (edge updates, justifying values, and the
    /// merged condition values of protected branches).
    pub fn update(&mut self, value: u32) {
        self.state ^= value;
    }

    /// Replaces the state (used at function entry; the state-replacement
    /// variant of handling control-flow transfers).
    pub fn replace(&mut self, value: u32) {
        self.state = value;
    }

    /// Compares the state against an expected signature; a mismatch is
    /// latched as a violation (execution continues — detection is reported to
    /// the surrounding system, mirroring a hardware error flag).
    pub fn check(&mut self, expected: u32) {
        if self.state != expected {
            if self.first_violation.is_none() {
                self.first_violation = Some(Violation {
                    actual_state: self.state,
                    expected_state: expected,
                    check_index: self.checks,
                });
            }
            self.violations += 1;
        }
        self.checks += 1;
    }

    /// The current state value.
    #[must_use]
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Number of checks executed.
    #[must_use]
    pub fn checks(&self) -> u32 {
        self.checks
    }

    /// Number of failed checks.
    #[must_use]
    pub fn violations(&self) -> u32 {
        self.violations
    }

    /// The first recorded violation, if any.
    #[must_use]
    pub fn first_violation(&self) -> Option<Violation> {
        self.first_violation
    }

    /// `true` if no check has failed so far.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }

    /// Resets state, counters and latched violations.
    pub fn reset(&mut self, initial_state: u32) {
        *self = CfiMonitor::new(initial_state);
    }

    /// Reassembles a monitor from its observable parts — the inverse of
    /// [`CfiMonitor::state`]/[`CfiMonitor::checks`]/[`CfiMonitor::violations`]/
    /// [`CfiMonitor::first_violation`], for persistence layers that
    /// serialise machine snapshots. A monitor rebuilt from the parts of
    /// another compares equal to it.
    #[must_use]
    pub fn from_parts(
        state: u32,
        checks: u32,
        violations: u32,
        first_violation: Option<Violation>,
    ) -> Self {
        CfiMonitor {
            state,
            checks,
            violations,
            first_violation,
        }
    }
}

impl Default for CfiMonitor {
    fn default() -> Self {
        CfiMonitor::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_passes_checks() {
        let mut m = CfiMonitor::new(0x1111);
        m.update(0x1111 ^ 0x2222);
        m.check(0x2222);
        m.update(0x2222 ^ 0x3333);
        m.check(0x3333);
        assert!(m.is_clean());
        assert_eq!(m.checks(), 2);
        assert_eq!(m.violations(), 0);
        assert_eq!(m.first_violation(), None);
    }

    #[test]
    fn violation_is_latched_with_context() {
        let mut m = CfiMonitor::new(0x1111);
        m.check(0x9999);
        m.check(0x8888);
        assert!(!m.is_clean());
        assert_eq!(m.violations(), 2);
        let v = m.first_violation().expect("latched");
        assert_eq!(v.actual_state, 0x1111);
        assert_eq!(v.expected_state, 0x9999);
        assert_eq!(v.check_index, 0);
    }

    #[test]
    fn replace_sets_the_state_absolutely() {
        let mut m = CfiMonitor::new(0xAAAA);
        m.replace(0x1234);
        assert_eq!(m.state(), 0x1234);
        m.check(0x1234);
        assert!(m.is_clean());
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = CfiMonitor::new(1);
        m.check(2);
        assert!(!m.is_clean());
        m.reset(7);
        assert!(m.is_clean());
        assert_eq!(m.state(), 7);
        assert_eq!(m.checks(), 0);
    }

    #[test]
    fn default_monitor_starts_at_zero() {
        assert_eq!(CfiMonitor::default().state(), 0);
    }
}
