//! Block-signature assignment and the edge-update calculus.

/// Deterministically derived per-block signatures for one function.
///
/// Signatures are non-zero, pairwise distinct and derived from the function
/// name and block index with a small mixing function, so rebuilding the same
/// program yields the same signatures (important for reproducible code-size
/// numbers) while different blocks of different functions get well-spread
/// values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureAssignment {
    signatures: Vec<u32>,
}

impl SignatureAssignment {
    /// Derives signatures for `block_count` blocks of the named function.
    #[must_use]
    pub fn derive(function_name: &str, block_count: usize) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for byte in function_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3); // FNV prime
        }
        let mut signatures = Vec::with_capacity(block_count);
        let mut state = seed | 1;
        while signatures.len() < block_count {
            // xorshift64* mixing
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let candidate = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32;
            if candidate != 0 && candidate != u32::MAX && !signatures.contains(&candidate) {
                signatures.push(candidate);
            }
        }
        SignatureAssignment { signatures }
    }

    /// The signature of block `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn signature(&self, index: usize) -> u32 {
        self.signatures[index]
    }

    /// Number of blocks covered by this assignment.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.signatures.len()
    }

    /// All signatures in block order.
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.signatures
    }
}

/// The canonical *exit* signature of a function: the value a returning
/// function replaces the CFI state with, after checking its final block's
/// signature.
///
/// This makes state replacement at call boundaries *verified*: the caller
/// checks `exit_signature(callee)` right after the `bl` before replacing
/// the state with its own block signature. A skipped call leaves the
/// caller's block signature in the CFI unit — which cannot equal the
/// callee's exit signature — so the check latches a violation, closing the
/// detection gap an unconditional replacement would leave.
///
/// Derived from the function name alone (salted differently from the block
/// signatures of [`SignatureAssignment::derive`]), so caller and callee
/// compute it independently.
#[must_use]
pub fn exit_signature(function_name: &str) -> u32 {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for byte in b"exit\0".iter().chain(function_name.as_bytes()) {
        seed ^= u64::from(*byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3); // FNV prime
    }
    let mut state = seed | 1;
    loop {
        // xorshift64* mixing, same generator as the block signatures.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let candidate = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32;
        if candidate != 0 && candidate != u32::MAX {
            return candidate;
        }
    }
}

/// The XOR constant instrumented code applies when following the ordinary CFG
/// edge `pred -> succ`: it moves a correct state from `sig(pred)` to
/// `sig(succ)`.
#[must_use]
pub fn edge_update(sig_pred: u32, sig_succ: u32) -> u32 {
    sig_pred ^ sig_succ
}

/// The XOR constant for an edge out of a *protected* conditional branch
/// (Section III of the paper): besides moving the state from `sig(pred)` to
/// `sig(succ)`, the successor merges the redundant condition value into the
/// state, so the constant also cancels the symbol `expected_symbol` that the
/// encoded comparison produces on this edge when everything is correct.
///
/// The runtime sequence on the edge is therefore:
///
/// ```text
/// state ^= protected_edge_update(sig_pred, sig_succ, expected_symbol);
/// state ^= condition_value;             // stored to the CFI unit at run time
/// // state == sig_succ  ⇔  condition_value == expected_symbol
/// ```
#[must_use]
pub fn protected_edge_update(sig_pred: u32, sig_succ: u32, expected_symbol: u32) -> u32 {
    sig_pred ^ sig_succ ^ expected_symbol
}

/// The justifying value that makes a secondary predecessor `pred` of a merge
/// block look like the primary predecessor `primary_pred` (the classic GPSA
/// correction for control-flow merges).
#[must_use]
pub fn justifying_update(sig_pred: u32, sig_primary_pred: u32) -> u32 {
    sig_pred ^ sig_primary_pred
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_are_distinct_nonzero_and_deterministic() {
        let a = SignatureAssignment::derive("bootloader", 64);
        let b = SignatureAssignment::derive("bootloader", 64);
        assert_eq!(a, b);
        assert_eq!(a.block_count(), 64);
        for i in 0..64 {
            assert_ne!(a.signature(i), 0);
            assert_ne!(a.signature(i), u32::MAX);
            for j in (i + 1)..64 {
                assert_ne!(a.signature(i), a.signature(j), "blocks {i} and {j}");
            }
        }
    }

    #[test]
    fn different_functions_get_different_signatures() {
        let a = SignatureAssignment::derive("f", 8);
        let b = SignatureAssignment::derive("g", 8);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn edge_update_moves_state_between_signatures() {
        let sigs = SignatureAssignment::derive("f", 2);
        let (p, s) = (sigs.signature(0), sigs.signature(1));
        assert_eq!(p ^ edge_update(p, s), s);
    }

    #[test]
    fn protected_edge_update_cancels_the_expected_symbol() {
        let sigs = SignatureAssignment::derive("f", 2);
        let (p, s) = (sigs.signature(0), sigs.signature(1));
        let symbol = 35_552;
        let state = p ^ protected_edge_update(p, s, symbol) ^ symbol;
        assert_eq!(state, s);
        // With the wrong symbol the state misses the target by the symbol
        // distance, which is exactly what the check detects.
        let bad = p ^ protected_edge_update(p, s, symbol) ^ 29_982;
        assert_ne!(bad, s);
        assert_eq!((bad ^ s).count_ones(), (35_552u32 ^ 29_982).count_ones());
    }

    #[test]
    fn justifying_update_aligns_secondary_predecessors() {
        let sigs = SignatureAssignment::derive("f", 3);
        let primary = sigs.signature(0);
        let secondary = sigs.signature(1);
        let merged = sigs.signature(2);
        // The secondary predecessor first justifies to the primary's
        // signature, then the ordinary edge update for primary -> merge works
        // for both.
        let state =
            secondary ^ justifying_update(secondary, primary) ^ edge_update(primary, merged);
        assert_eq!(state, merged);
    }

    #[test]
    fn exit_signatures_are_deterministic_and_distinct_from_block_signatures() {
        assert_eq!(
            exit_signature("memcmp_secure"),
            exit_signature("memcmp_secure")
        );
        assert_ne!(exit_signature("memcmp_secure"), exit_signature("pin_check"));
        assert_ne!(exit_signature("f"), 0);
        // The exit value must differ from every block signature of the same
        // function, or a skipped call could go unnoticed.
        let sigs = SignatureAssignment::derive("memcmp_secure", 32);
        for i in 0..32 {
            assert_ne!(exit_signature("memcmp_secure"), sigs.signature(i));
        }
    }

    #[test]
    fn empty_assignment_is_allowed() {
        let sigs = SignatureAssignment::derive("f", 0);
        assert_eq!(sigs.block_count(), 0);
        assert!(sigs.as_slice().is_empty());
    }
}
