//! A software-centred GPSA-style control-flow-integrity (CFI) scheme.
//!
//! The paper assumes "an instruction-granular CFI protection scheme,
//! protecting the execution of instructions and the selection of the
//! operands" and evaluates with "a software-centered GPSA CFI scheme similar
//! to the one in [Werner et al., CARDIS 2015]". This crate provides the
//! architecture-independent half of such a scheme at basic-block granularity:
//!
//! * [`SignatureAssignment`] — deterministic, distinct, non-zero signatures
//!   for the blocks of a function (general path signature analysis assigns
//!   each vertex of the CFG a signature the runtime state must reproduce),
//! * edge-update calculus ([`edge_update`], [`protected_edge_update`],
//!   [`justifying_update`]) — the XOR correction constants instrumented code
//!   applies when following a CFG edge, including the paper's novel linking
//!   of the *redundant condition value* of a protected branch into the CFI
//!   state (Section III: "merge this value as part of the CFI state update
//!   into the redundancy of the CFI scheme"), and
//! * [`CfiMonitor`] — the runtime state automaton (modelling the memory
//!   mapped CFI unit of the evaluation platform): `update` XORs a value into
//!   the state, `check` compares the state against an expected signature and
//!   latches violations, `replace` implements the state-replacement technique
//!   used at function boundaries.
//!
//! The ARMv7-M simulator exposes a [`CfiMonitor`] behind MMIO registers; the
//! back end's CFI instrumentation emits the stores that drive it.
//!
//! # Example
//!
//! ```
//! use secbranch_cfi::{edge_update, protected_edge_update, CfiMonitor, SignatureAssignment};
//!
//! let sigs = SignatureAssignment::derive("check_password", 3);
//! let mut monitor = CfiMonitor::new(sigs.signature(0));
//!
//! // Fall through a normal edge 0 -> 2.
//! monitor.update(edge_update(sigs.signature(0), sigs.signature(2)));
//! monitor.check(sigs.signature(2));
//! assert!(monitor.is_clean());
//!
//! // A protected edge also merges the encoded condition value (here the
//! // expected `true` symbol 35552 of Table I).
//! monitor.update(protected_edge_update(sigs.signature(2), sigs.signature(1), 35_552));
//! monitor.update(35_552); // the condition value computed at run time
//! monitor.check(sigs.signature(1));
//! assert!(monitor.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod monitor;
mod signature;

pub use monitor::{CfiMonitor, Violation};
pub use signature::{
    edge_update, exit_signature, justifying_update, protected_edge_update, SignatureAssignment,
};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CfiMonitor>();
        assert_send_sync::<Violation>();
        assert_send_sync::<SignatureAssignment>();
    }

    #[test]
    fn wrong_edge_is_detected_end_to_end() {
        let sigs = SignatureAssignment::derive("f", 4);
        let mut monitor = CfiMonitor::new(sigs.signature(0));
        // Instrumentation intended for edge 0 -> 1 but control flow actually
        // reaches block 2 (whose check expects signature(2)).
        monitor.update(edge_update(sigs.signature(0), sigs.signature(1)));
        monitor.check(sigs.signature(2));
        assert!(!monitor.is_clean());
    }

    #[test]
    fn faulted_condition_value_is_detected_end_to_end() {
        let sigs = SignatureAssignment::derive("f", 2);
        let mut monitor = CfiMonitor::new(sigs.signature(0));
        let true_symbol = 35_552;
        monitor.update(protected_edge_update(
            sigs.signature(0),
            sigs.signature(1),
            true_symbol,
        ));
        // The attacker managed to flip the raw condition into the *other*
        // valid symbol — the state no longer matches the expected signature.
        monitor.update(29_982);
        monitor.check(sigs.signature(1));
        assert!(!monitor.is_clean());
    }
}
