//! Building-block instruction sequences and their cost analysis (Table II).
//!
//! The paper analyses the cost of the encoded compare and the CFI state
//! update "precisely" at the level of the emitted ARMv7-M instructions; this
//! module exposes exactly those sequences so the benchmark harness can
//! regenerate Table II from the same size/cycle models the full back end
//! uses.

use secbranch_armv7m::cycles::instruction_cycle_bounds;
use secbranch_armv7m::machine::CFI_UPDATE_ADDR;
use secbranch_armv7m::{Instr, Operand2, Reg};
use secbranch_ir::Predicate;

/// The core arithmetic of the encoded comparison, assuming the AN-coded
/// operands are already in `r0` and `r1` (in kernel order) and leaving the
/// condition value in `r2`. Constant loads for `C` and `A` are included — the
/// *core operation counts* reported by Table II (`ADD`/`SUB`/`UDIV`/`MLS`)
/// can be extracted with [`encoded_compare_operations`], which excludes the
/// constant materialisation exactly as the paper's table does.
#[must_use]
pub fn encoded_compare_core(pred: Predicate, a: u32, c: u32) -> Vec<Instr> {
    let mut seq = Vec::new();
    if matches!(pred, Predicate::Eq | Predicate::Ne) {
        // Algorithm 2: both subtraction directions, two remainders, summed.
        seq.push(Instr::MovImm {
            rd: Reg::R3,
            imm: c,
        });
        seq.push(Instr::Sub {
            rd: Reg::R2,
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1),
        });
        seq.push(Instr::Sub {
            rd: Reg::R1,
            rn: Reg::R1,
            op2: Operand2::Reg(Reg::R0),
        });
        seq.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Reg(Reg::R3),
        });
        seq.push(Instr::Add {
            rd: Reg::R1,
            rn: Reg::R1,
            op2: Operand2::Reg(Reg::R3),
        });
        seq.push(Instr::MovImm {
            rd: Reg::R3,
            imm: a,
        });
        // rem1 = r2 % A
        seq.push(Instr::Udiv {
            rd: Reg::R0,
            rn: Reg::R2,
            rm: Reg::R3,
        });
        seq.push(Instr::Mls {
            rd: Reg::R2,
            rn: Reg::R0,
            rm: Reg::R3,
            ra: Reg::R2,
        });
        // rem2 = r1 % A
        seq.push(Instr::Udiv {
            rd: Reg::R0,
            rn: Reg::R1,
            rm: Reg::R3,
        });
        seq.push(Instr::Mls {
            rd: Reg::R1,
            rn: Reg::R0,
            rm: Reg::R3,
            ra: Reg::R1,
        });
        // cond = rem1 + rem2
        seq.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Reg(Reg::R1),
        });
    } else {
        // Algorithm 1: one subtraction direction (the caller already ordered
        // the operands for the predicate), one remainder.
        seq.push(Instr::MovImm {
            rd: Reg::R3,
            imm: c,
        });
        seq.push(Instr::Sub {
            rd: Reg::R2,
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1),
        });
        seq.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Reg(Reg::R3),
        });
        seq.push(Instr::MovImm {
            rd: Reg::R3,
            imm: a,
        });
        seq.push(Instr::Udiv {
            rd: Reg::R0,
            rn: Reg::R2,
            rm: Reg::R3,
        });
        seq.push(Instr::Mls {
            rd: Reg::R2,
            rn: Reg::R0,
            rm: Reg::R3,
            ra: Reg::R2,
        });
    }
    seq
}

/// The "Required Operations" / "Our Prototype Instructions" view of Table II:
/// the arithmetic instructions of the encoded compare without the constant
/// materialisation (the paper keeps `A` and `C` in registers).
#[must_use]
pub fn encoded_compare_operations(pred: Predicate, a: u32, c: u32) -> Vec<Instr> {
    encoded_compare_core(pred, a, c)
        .into_iter()
        .filter(|i| !matches!(i, Instr::MovImm { .. }))
        .collect()
}

/// The CFI state-update building block of a protected-branch successor: one
/// address load and one store of the comparison result to the CFI unit
/// ("4 bytes code and 4 cycles of runtime overhead per instantiation" in the
/// paper's software-centred design, where the condition value is already in a
/// register).
#[must_use]
pub fn state_update_sequence() -> Vec<Instr> {
    vec![
        Instr::MovImm {
            rd: Reg::R3,
            imm: CFI_UPDATE_ADDR,
        },
        Instr::Str {
            rt: Reg::R2,
            rn: Reg::R3,
            offset: 0,
        },
    ]
}

/// Cost summary of an instruction sequence: instruction count, code size in
/// bytes, and the (minimum, maximum) cycle bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceCost {
    /// Number of instructions.
    pub instructions: usize,
    /// Code size in bytes.
    pub size_bytes: u32,
    /// Lower bound on cycles.
    pub min_cycles: u64,
    /// Upper bound on cycles.
    pub max_cycles: u64,
}

/// Computes the cost summary of an instruction sequence.
#[must_use]
pub fn sequence_cost(seq: &[Instr]) -> SequenceCost {
    let size_bytes = seq.iter().map(Instr::size_bytes).sum();
    let (min_cycles, max_cycles) = seq
        .iter()
        .map(instruction_cycle_bounds)
        .fold((0, 0), |(lo, hi), (a, b)| (lo + a, hi + b));
    SequenceCost {
        instructions: seq.len(),
        size_bytes,
        min_cycles,
        max_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: u32 = 63_877;
    const C_ORD: u32 = 29_982;
    const C_EQ: u32 = 14_991;

    #[test]
    fn ordering_class_matches_table_two() {
        // "1 ADD, 1 SUB, 1 UDIV, 1 MLS — 12 bytes — 6-16 cycles"
        let ops = encoded_compare_operations(Predicate::Ult, A, C_ORD);
        let cost = sequence_cost(&ops);
        assert_eq!(ops.len(), 4);
        assert_eq!(cost.size_bytes, 12);
        assert_eq!((cost.min_cycles, cost.max_cycles), (6, 16));
        let adds = ops
            .iter()
            .filter(|i| matches!(i, Instr::Add { .. }))
            .count();
        let subs = ops
            .iter()
            .filter(|i| matches!(i, Instr::Sub { .. }))
            .count();
        let divs = ops
            .iter()
            .filter(|i| matches!(i, Instr::Udiv { .. }))
            .count();
        let mlss = ops
            .iter()
            .filter(|i| matches!(i, Instr::Mls { .. }))
            .count();
        assert_eq!((adds, subs, divs, mlss), (1, 1, 1, 1));
    }

    #[test]
    fn equality_class_matches_table_two() {
        // "3 ADD, 2 SUB, 2 UDIV, 2 MLS — 26 bytes — 13-33 cycles"
        let ops = encoded_compare_operations(Predicate::Eq, A, C_EQ);
        let cost = sequence_cost(&ops);
        assert_eq!(ops.len(), 9);
        assert_eq!(cost.size_bytes, 26);
        assert_eq!((cost.min_cycles, cost.max_cycles), (13, 33));
        let adds = ops
            .iter()
            .filter(|i| matches!(i, Instr::Add { .. }))
            .count();
        let subs = ops
            .iter()
            .filter(|i| matches!(i, Instr::Sub { .. }))
            .count();
        let divs = ops
            .iter()
            .filter(|i| matches!(i, Instr::Udiv { .. }))
            .count();
        let mlss = ops
            .iter()
            .filter(|i| matches!(i, Instr::Mls { .. }))
            .count();
        assert_eq!((adds, subs, divs, mlss), (3, 2, 2, 2));
    }

    #[test]
    fn state_update_cost_is_within_the_papers_four_byte_four_cycle_budget() {
        let seq = state_update_sequence();
        // The paper quotes 4 bytes / 4 cycles for the address load plus the
        // store of the comparison result; in our encoding model the store is
        // a narrow (2-byte, 2-cycle) instruction, so the store itself stays
        // within that budget. The explicit address materialisation is
        // reported separately by the Table II harness.
        let store_only: Vec<Instr> = seq
            .iter()
            .filter(|i| matches!(i, Instr::Str { .. }))
            .cloned()
            .collect();
        let cost = sequence_cost(&store_only);
        assert!(cost.size_bytes <= 4);
        assert!(cost.max_cycles <= 4);
        let full = sequence_cost(&seq);
        assert_eq!(full.instructions, 2);
        assert!(full.size_bytes >= cost.size_bytes);
    }

    #[test]
    fn core_sequences_are_valid_for_all_predicates() {
        for pred in Predicate::ALL {
            let seq = encoded_compare_core(pred, A, C_ORD);
            assert!(!seq.is_empty());
            let cost = sequence_cost(&seq);
            assert!(cost.size_bytes > 0);
            assert!(cost.max_cycles >= cost.min_cycles);
        }
    }
}
