//! Instruction selection, frame layout and CFI instrumentation.
//!
//! # Determinism
//!
//! The back end is *bit-deterministic*: compiling the same module with the
//! same options always produces the identical [`CompiledModule`] — same
//! instruction sequence, same labels, same stack-slot offsets, same rendered
//! listing. Everything order-sensitive iterates deterministic structures
//! (the module's function/global vectors, block lists in id order) or
//! ordered maps ([`BTreeMap`]); no `HashMap` iteration order ever reaches
//! the output. Reproducible artifacts are what let fingerprints, trace-store
//! keys and golden listings be trusted across independent builds.
//!
//! # Provenance
//!
//! Every emitted instruction carries an origin tag
//! ([`secbranch_armv7m::Program::origin_at`]) naming the pipeline layer that
//! required it:
//!
//! * `"prologue"` / `"epilogue"` — frame setup and teardown,
//! * `"body"` — plain instruction selection of IR operations,
//! * `"an-coder"` — the encoded-comparison kernel of the AN Coder's
//!   `enccmp` instruction (Algorithms 1 and 2),
//! * `"cfi"` — GPSA state replacement at entries/after calls and the state
//!   check before returns,
//! * `"cfi-edge"` — the per-CFG-edge update stubs (including the
//!   protected-branch condition merges of Section III).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use secbranch_armv7m::machine::{CFI_CHECK_ADDR, CFI_REPLACE_ADDR, CFI_UPDATE_ADDR};
use secbranch_armv7m::{Cond, Instr, Operand2, Program, ProgramBuilder, Reg, Simulator, Target};
use secbranch_cfi::{edge_update, exit_signature, protected_edge_update, SignatureAssignment};
use secbranch_ir::{
    BinOp, BlockId, Function, LocalId, MemWidth, Module, Op, Operand, Predicate, Terminator,
    ValueId,
};

use crate::error::CodegenError;

/// Base address where module globals are placed in guest memory (matches the
/// IR interpreter's layout so pointer-passing tests line up).
pub const GLOBAL_BASE: u32 = 0x1000;

/// How much CFI instrumentation the back end emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CfiLevel {
    /// No CFI instrumentation (the unprotected baseline).
    None,
    /// Full GPSA instrumentation: state replacement at function entry, an XOR
    /// update on every CFG edge, condition-value merges on protected-branch
    /// edges, and a state check before every return.
    #[default]
    Full,
}

/// A code region of one function that selective skip-hardening targets.
///
/// Regions are named in *source-IR* coordinates (the pipeline keeps IR
/// block ids stable through the passes used for selective hardening), so an
/// advisor that analysed the source CFG can request hardening without
/// knowing anything about the emitted instruction sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HardenRegion {
    /// The function prologue: frame setup, parameter spills and the entry
    /// branch.
    Prologue,
    /// One IR basic block's instruction selection and terminator.
    Block(BlockId),
}

/// Code-generation options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CodegenOptions {
    /// CFI instrumentation level.
    pub cfi: CfiLevel,
    /// When `Some`, CFI instrumentation (under [`CfiLevel::Full`]) is
    /// emitted only for the named functions; `None` keeps the historical
    /// whole-program behaviour. Callers scoping CFI must close the set over
    /// the call graph themselves — GPSA state replacement couples caller
    /// and callee at every call boundary, so an instrumented function
    /// calling an uninstrumented one (or vice versa) would corrupt the
    /// running signature.
    pub cfi_functions: Option<BTreeSet<String>>,
    /// Regions receiving skip-hardening duplication (function name → region
    /// set): within each region every idempotent instruction is emitted
    /// twice ([`secbranch_armv7m::ProgramBuilder::set_duplicate_idempotent`]),
    /// masking any single instruction-skip fault on either copy. CFI edge
    /// stubs are emitted outside all regions, so the CFI unit's
    /// non-idempotent UPDATE writes are never duplicated.
    pub harden: BTreeMap<String, BTreeSet<HardenRegion>>,
}

/// The output of the back end: an assembled program plus the data-layout
/// information needed to run and measure it.
///
/// The program and the initial globals image are behind [`Arc`]s, so cloning
/// a compiled module — and, more importantly, handing out simulators via
/// [`CompiledModule::simulator`] — shares the immutable code instead of
/// copying it. A fresh simulator costs one `Machine` allocation plus the
/// globals write, which is what makes fault campaigns with millions of
/// injections affordable.
#[derive(Debug, Clone)]
pub struct CompiledModule {
    /// The assembled program (shared, immutable).
    pub program: Arc<Program>,
    /// Addresses assigned to module globals (ordered, so iteration —
    /// e.g. for listings — is deterministic).
    pub global_addresses: BTreeMap<String, u32>,
    /// Initial memory image: `(address, bytes)` pairs for the globals
    /// (shared, immutable; written into each fresh simulator's RAM).
    pub global_image: Arc<Vec<(u32, Vec<u8>)>>,
    /// Code size of each function in bytes (Thumb-2 size model; ordered for
    /// deterministic iteration).
    pub function_sizes: BTreeMap<String, u32>,
}

impl CompiledModule {
    /// Total code size of the program in bytes.
    #[must_use]
    pub fn code_size_bytes(&self) -> u32 {
        self.program.code_size_bytes()
    }

    /// Code size of one function in bytes.
    #[must_use]
    pub fn function_size(&self, name: &str) -> Option<u32> {
        self.function_sizes.get(name).copied()
    }

    /// The address a global was placed at.
    #[must_use]
    pub fn global_address(&self, name: &str) -> Option<u32> {
        self.global_addresses.get(name).copied()
    }

    /// Creates a simulator with `memory_size` bytes of RAM and the globals
    /// written to their assigned addresses.
    #[must_use]
    pub fn into_simulator(self, memory_size: u32) -> Simulator {
        self.simulator(memory_size)
    }

    /// Like [`CompiledModule::into_simulator`], but borrows the module so one
    /// compilation can feed many independent simulator instances (the
    /// build-once/run-many contract of the facade's `Artifact`). The program
    /// is `Arc`-shared with the module, not cloned: each call allocates only
    /// the machine state and writes the globals image.
    #[must_use]
    pub fn simulator(&self, memory_size: u32) -> Simulator {
        let mut sim = Simulator::from_shared(Arc::clone(&self.program), memory_size);
        for (addr, data) in self.global_image.iter() {
            sim.machine_mut().write_bytes(*addr, data);
        }
        sim
    }
}

/// Compiles a module to the ARMv7-M-like target.
///
/// # Errors
///
/// Returns [`CodegenError`] for unknown globals, unsupported constructs
/// (un-lowered `switch`/`select`) and internal assembly failures.
pub fn compile(module: &Module, options: &CodegenOptions) -> Result<CompiledModule, CodegenError> {
    // Lay out globals (in module declaration order; the map is ordered by
    // name but the address cursor follows the declaration sequence).
    let mut global_addresses = BTreeMap::new();
    let mut global_image = Vec::new();
    let mut cursor = GLOBAL_BASE;
    for global in &module.globals {
        global_addresses.insert(global.name.clone(), cursor);
        global_image.push((cursor, global.data.clone()));
        cursor += ((global.data.len() as u32 + 3) & !3).max(4);
    }

    let mut builder = ProgramBuilder::new();
    let mut function_ranges: Vec<(String, usize, usize)> = Vec::new();
    for function in &module.functions {
        let start = builder.instr_count();
        let mut fc = FunctionCompiler::new(function, options, &global_addresses);
        fc.emit(&mut builder)?;
        let end = builder.instr_count();
        function_ranges.push((function.name.clone(), start, end));
    }
    let program = builder.assemble()?;
    let function_sizes = function_ranges
        .into_iter()
        .map(|(name, start, end)| (name, program.code_size_of_range(start, end)))
        .collect();

    Ok(CompiledModule {
        program: Arc::new(program),
        global_addresses,
        global_image: Arc::new(global_image),
        function_sizes,
    })
}

/// Per-function code generator.
struct FunctionCompiler<'a> {
    function: &'a Function,
    options: &'a CodegenOptions,
    globals: &'a BTreeMap<String, u32>,
    signatures: SignatureAssignment,
    local_offsets: Vec<u32>,
    spill_base: u32,
    frame_size: u32,
    label_counter: u32,
}

impl<'a> FunctionCompiler<'a> {
    fn new(
        function: &'a Function,
        options: &'a CodegenOptions,
        globals: &'a BTreeMap<String, u32>,
    ) -> Self {
        let mut local_offsets = Vec::with_capacity(function.locals.len());
        let mut cursor = 0u32;
        for local in &function.locals {
            local_offsets.push(cursor);
            cursor += (local.size_bytes + 3) & !3;
        }
        let spill_base = cursor;
        let frame_size = (spill_base + 4 * function.value_count() + 7) & !7;
        FunctionCompiler {
            function,
            options,
            globals,
            signatures: SignatureAssignment::derive(&function.name, function.blocks.len()),
            local_offsets,
            spill_base,
            frame_size,
            label_counter: 0,
        }
    }

    fn cfi_enabled(&self) -> bool {
        matches!(self.options.cfi, CfiLevel::Full)
            && self
                .options
                .cfi_functions
                .as_ref()
                .is_none_or(|names| names.contains(&self.function.name))
    }

    /// Whether the named callee is itself compiled with CFI — only then
    /// will it leave its exit signature behind for the post-call check.
    fn callee_cfi_enabled(&self, callee: &str) -> bool {
        matches!(self.options.cfi, CfiLevel::Full)
            && self
                .options
                .cfi_functions
                .as_ref()
                .is_none_or(|names| names.iter().any(|n| n == callee))
    }

    /// Whether `region` of this function was selected for skip-hardening
    /// duplication.
    fn hardened(&self, region: HardenRegion) -> bool {
        self.options
            .harden
            .get(&self.function.name)
            .is_some_and(|regions| regions.contains(&region))
    }

    fn slot(&self, value: ValueId) -> u32 {
        self.spill_base + 4 * value.0
    }

    fn local_offset(&self, local: LocalId) -> u32 {
        self.local_offsets[local.0 as usize]
    }

    fn block_label(&self, block: BlockId) -> String {
        format!("{}.bb{}", self.function.name, block.0)
    }

    fn fresh_label(&mut self, hint: &str) -> String {
        self.label_counter += 1;
        format!("{}.{}{}", self.function.name, hint, self.label_counter)
    }

    /// Loads a 32-bit immediate into a register.
    fn emit_mov_imm(&self, p: &mut ProgramBuilder, rd: Reg, imm: u32) {
        p.push(Instr::MovImm { rd, imm });
    }

    /// Loads the value at `[sp + offset]` into `rt`, handling offsets beyond
    /// the LDR immediate range through the scratch register `r12`.
    fn emit_sp_load(&self, p: &mut ProgramBuilder, rt: Reg, offset: u32) {
        if offset < 4096 {
            p.push(Instr::Ldr {
                rt,
                rn: Reg::Sp,
                offset: offset as i32,
            });
        } else {
            self.emit_mov_imm(p, Reg::R12, offset);
            p.push(Instr::Add {
                rd: Reg::R12,
                rn: Reg::Sp,
                op2: Operand2::Reg(Reg::R12),
            });
            p.push(Instr::Ldr {
                rt,
                rn: Reg::R12,
                offset: 0,
            });
        }
    }

    /// Stores `rt` at `[sp + offset]`.
    fn emit_sp_store(&self, p: &mut ProgramBuilder, rt: Reg, offset: u32) {
        if offset < 4096 {
            p.push(Instr::Str {
                rt,
                rn: Reg::Sp,
                offset: offset as i32,
            });
        } else {
            self.emit_mov_imm(p, Reg::R12, offset);
            p.push(Instr::Add {
                rd: Reg::R12,
                rn: Reg::Sp,
                op2: Operand2::Reg(Reg::R12),
            });
            p.push(Instr::Str {
                rt,
                rn: Reg::R12,
                offset: 0,
            });
        }
    }

    /// Materialises an IR operand into a register.
    fn emit_operand(&self, p: &mut ProgramBuilder, rd: Reg, operand: Operand) {
        match operand {
            Operand::Const(c) => self.emit_mov_imm(p, rd, c),
            Operand::Value(v) => self.emit_sp_load(p, rd, self.slot(v)),
        }
    }

    /// Stores an instruction result from `rs` into its spill slot.
    fn emit_result(&self, p: &mut ProgramBuilder, rs: Reg, result: Option<ValueId>) {
        if let Some(v) = result {
            self.emit_sp_store(p, rs, self.slot(v));
        }
    }

    /// Writes `value` to a CFI unit register (`r3` and `r12` are clobbered).
    fn emit_cfi_write_const(&self, p: &mut ProgramBuilder, unit_addr: u32, value: u32) {
        self.emit_mov_imm(p, Reg::R3, value);
        self.emit_mov_imm(p, Reg::R12, unit_addr);
        p.push(Instr::Str {
            rt: Reg::R3,
            rn: Reg::R12,
            offset: 0,
        });
    }

    /// Writes register `rs` to a CFI unit register (`r12` is clobbered).
    fn emit_cfi_write_reg(&self, p: &mut ProgramBuilder, unit_addr: u32, rs: Reg) {
        self.emit_mov_imm(p, Reg::R12, unit_addr);
        p.push(Instr::Str {
            rt: rs,
            rn: Reg::R12,
            offset: 0,
        });
    }

    fn emit(&mut self, p: &mut ProgramBuilder) -> Result<(), CodegenError> {
        p.label(self.function.name.clone());

        // Prologue: save LR, allocate the frame, spill parameters.
        p.set_origin("prologue");
        p.set_duplicate_idempotent(self.hardened(HardenRegion::Prologue));
        p.push(Instr::Push {
            regs: vec![Reg::Lr],
        });
        if self.frame_size < 4096 {
            p.push(Instr::Sub {
                rd: Reg::Sp,
                rn: Reg::Sp,
                op2: Operand2::Imm(self.frame_size),
            });
        } else {
            self.emit_mov_imm(p, Reg::R3, self.frame_size);
            p.push(Instr::Sub {
                rd: Reg::Sp,
                rn: Reg::Sp,
                op2: Operand2::Reg(Reg::R3),
            });
        }
        let param_regs = [Reg::R0, Reg::R1, Reg::R2, Reg::R3];
        for (i, param) in self.function.params.iter().enumerate().take(4) {
            self.emit_sp_store(p, param_regs[i], self.slot(*param));
        }
        if self.cfi_enabled() {
            p.set_origin("cfi");
            self.emit_cfi_write_const(p, CFI_REPLACE_ADDR, self.signatures.signature(0));
        }
        p.set_origin("prologue");
        p.push(Instr::B {
            target: Target::label(self.block_label(self.function.entry())),
        });

        // Blocks. Skip-hardening duplication is toggled per region: the
        // whole block (instruction selection and terminator) is inside the
        // region, edge stubs below are outside every region.
        let mut edge_stubs: Vec<(String, Vec<Instr>, String)> = Vec::new();
        for (block_id, block) in self.function.iter_blocks() {
            p.set_duplicate_idempotent(self.hardened(HardenRegion::Block(block_id)));
            p.label(self.block_label(block_id));
            for inst in &block.insts {
                self.emit_inst(p, &inst.op, inst.result, block_id)?;
            }
            let Some(term) = &block.terminator else {
                return Err(CodegenError::Unsupported {
                    function: self.function.name.clone(),
                    message: format!("block '{}' has no terminator", block.name),
                });
            };
            self.emit_terminator(p, block_id, term, &mut edge_stubs)?;
        }
        p.set_duplicate_idempotent(false);

        // Edge stubs (CFI updates on CFG edges).
        p.set_origin("cfi-edge");
        for (label, body, target) in edge_stubs {
            p.label(label);
            p.extend(body);
            p.push(Instr::B {
                target: Target::label(target),
            });
        }
        Ok(())
    }

    fn emit_inst(
        &mut self,
        p: &mut ProgramBuilder,
        op: &Op,
        result: Option<ValueId>,
        block: BlockId,
    ) -> Result<(), CodegenError> {
        p.set_origin("body");
        match op {
            Op::Bin { op, lhs, rhs } => {
                self.emit_operand(p, Reg::R0, *lhs);
                self.emit_operand(p, Reg::R1, *rhs);
                match op {
                    BinOp::Add => p.push(Instr::Add {
                        rd: Reg::R2,
                        rn: Reg::R0,
                        op2: Operand2::Reg(Reg::R1),
                    }),
                    BinOp::Sub => p.push(Instr::Sub {
                        rd: Reg::R2,
                        rn: Reg::R0,
                        op2: Operand2::Reg(Reg::R1),
                    }),
                    BinOp::Mul => p.push(Instr::Mul {
                        rd: Reg::R2,
                        rn: Reg::R0,
                        rm: Reg::R1,
                    }),
                    BinOp::UDiv => p.push(Instr::Udiv {
                        rd: Reg::R2,
                        rn: Reg::R0,
                        rm: Reg::R1,
                    }),
                    BinOp::URem => {
                        p.push(Instr::Udiv {
                            rd: Reg::R2,
                            rn: Reg::R0,
                            rm: Reg::R1,
                        });
                        p.push(Instr::Mls {
                            rd: Reg::R2,
                            rn: Reg::R2,
                            rm: Reg::R1,
                            ra: Reg::R0,
                        });
                    }
                    BinOp::And => p.push(Instr::And {
                        rd: Reg::R2,
                        rn: Reg::R0,
                        op2: Operand2::Reg(Reg::R1),
                    }),
                    BinOp::Or => p.push(Instr::Orr {
                        rd: Reg::R2,
                        rn: Reg::R0,
                        op2: Operand2::Reg(Reg::R1),
                    }),
                    BinOp::Xor => p.push(Instr::Eor {
                        rd: Reg::R2,
                        rn: Reg::R0,
                        op2: Operand2::Reg(Reg::R1),
                    }),
                    BinOp::Shl => p.push(Instr::Lsl {
                        rd: Reg::R2,
                        rn: Reg::R0,
                        op2: Operand2::Reg(Reg::R1),
                    }),
                    BinOp::LShr => p.push(Instr::Lsr {
                        rd: Reg::R2,
                        rn: Reg::R0,
                        op2: Operand2::Reg(Reg::R1),
                    }),
                    BinOp::AShr => p.push(Instr::Asr {
                        rd: Reg::R2,
                        rn: Reg::R0,
                        op2: Operand2::Reg(Reg::R1),
                    }),
                }
                self.emit_result(p, Reg::R2, result);
            }
            Op::Cmp { pred, lhs, rhs } => {
                self.emit_operand(p, Reg::R0, *lhs);
                self.emit_operand(p, Reg::R1, *rhs);
                p.push(Instr::Cmp {
                    rn: Reg::R0,
                    op2: Operand2::Reg(Reg::R1),
                });
                let done = self.fresh_label("cmp");
                self.emit_mov_imm(p, Reg::R2, 1);
                p.push(Instr::BCond {
                    cond: cond_for(*pred),
                    target: Target::label(done.clone()),
                });
                self.emit_mov_imm(p, Reg::R2, 0);
                p.label(done);
                self.emit_result(p, Reg::R2, result);
            }
            Op::Select {
                cond,
                if_true,
                if_false,
            } => {
                self.emit_operand(p, Reg::R0, *cond);
                self.emit_operand(p, Reg::R1, *if_true);
                self.emit_operand(p, Reg::R2, *if_false);
                p.push(Instr::Cmp {
                    rn: Reg::R0,
                    op2: Operand2::Imm(0),
                });
                let done = self.fresh_label("sel");
                p.push(Instr::BCond {
                    cond: Cond::Ne,
                    target: Target::label(done.clone()),
                });
                p.push(Instr::Mov {
                    rd: Reg::R1,
                    rm: Reg::R2,
                });
                p.label(done);
                self.emit_result(p, Reg::R1, result);
            }
            Op::Load { addr, width } => {
                self.emit_operand(p, Reg::R0, *addr);
                match width {
                    MemWidth::Word => p.push(Instr::Ldr {
                        rt: Reg::R2,
                        rn: Reg::R0,
                        offset: 0,
                    }),
                    MemWidth::Byte => p.push(Instr::Ldrb {
                        rt: Reg::R2,
                        rn: Reg::R0,
                        offset: 0,
                    }),
                }
                self.emit_result(p, Reg::R2, result);
            }
            Op::Store { addr, value, width } => {
                self.emit_operand(p, Reg::R0, *addr);
                self.emit_operand(p, Reg::R1, *value);
                match width {
                    MemWidth::Word => p.push(Instr::Str {
                        rt: Reg::R1,
                        rn: Reg::R0,
                        offset: 0,
                    }),
                    MemWidth::Byte => p.push(Instr::Strb {
                        rt: Reg::R1,
                        rn: Reg::R0,
                        offset: 0,
                    }),
                }
            }
            Op::LocalAddr { local } => {
                let offset = self.local_offset(*local);
                if offset < 4096 {
                    p.push(Instr::Add {
                        rd: Reg::R2,
                        rn: Reg::Sp,
                        op2: Operand2::Imm(offset),
                    });
                } else {
                    self.emit_mov_imm(p, Reg::R2, offset);
                    p.push(Instr::Add {
                        rd: Reg::R2,
                        rn: Reg::Sp,
                        op2: Operand2::Reg(Reg::R2),
                    });
                }
                self.emit_result(p, Reg::R2, result);
            }
            Op::GlobalAddr { name } => {
                let addr =
                    self.globals
                        .get(name)
                        .copied()
                        .ok_or_else(|| CodegenError::UnknownGlobal {
                            name: name.clone(),
                            function: self.function.name.clone(),
                        })?;
                self.emit_mov_imm(p, Reg::R2, addr);
                self.emit_result(p, Reg::R2, result);
            }
            Op::Call { callee, args } => {
                if args.len() > 4 {
                    return Err(CodegenError::Unsupported {
                        function: self.function.name.clone(),
                        message: format!("call to '{callee}' passes more than 4 arguments"),
                    });
                }
                let regs = [Reg::R0, Reg::R1, Reg::R2, Reg::R3];
                for (i, arg) in args.iter().enumerate() {
                    self.emit_operand(p, regs[i], *arg);
                }
                p.push(Instr::Bl {
                    target: Target::label(callee.clone()),
                });
                // Verified state replacement at the call boundary: a CFI'd
                // callee leaves its canonical exit signature in the state,
                // which is checked here before this block's signature is
                // restored. A skipped `bl` leaves this block's own
                // signature in the unit instead, so the check latches.
                if self.cfi_enabled() {
                    p.set_origin("cfi");
                    if self.callee_cfi_enabled(callee) {
                        self.emit_cfi_write_const(p, CFI_CHECK_ADDR, exit_signature(callee));
                    }
                    self.emit_cfi_write_const(
                        p,
                        CFI_REPLACE_ADDR,
                        self.signatures.signature(block.0 as usize),
                    );
                    p.set_origin("body");
                }
                self.emit_result(p, Reg::R0, result);
            }
            Op::EncodedCompare {
                pred,
                lhs,
                rhs,
                a,
                c,
            } => {
                // Operand order realises the predicate (Table I).
                let (first, second) = match pred {
                    Predicate::Ult | Predicate::Uge | Predicate::Eq | Predicate::Ne => (*lhs, *rhs),
                    Predicate::Ugt | Predicate::Ule => (*rhs, *lhs),
                };
                self.emit_operand(p, Reg::R0, first);
                self.emit_operand(p, Reg::R1, second);
                p.set_origin("an-coder");
                p.extend(crate::snippet::encoded_compare_core(*pred, *a, *c));
                p.set_origin("body");
                self.emit_result(p, Reg::R2, result);
            }
        }
        Ok(())
    }

    fn emit_terminator(
        &mut self,
        p: &mut ProgramBuilder,
        block: BlockId,
        term: &Terminator,
        edge_stubs: &mut Vec<(String, Vec<Instr>, String)>,
    ) -> Result<(), CodegenError> {
        p.set_origin("body");
        match term {
            Terminator::Jump(target) => {
                let dest = self.edge(block, *target, None, None, edge_stubs);
                p.push(Instr::B {
                    target: Target::label(dest),
                });
            }
            Terminator::Branch {
                cond,
                if_true,
                if_false,
                protection,
            } => {
                self.emit_operand(p, Reg::R0, *cond);
                p.push(Instr::Cmp {
                    rn: Reg::R0,
                    op2: Operand2::Imm(0),
                });
                let (true_sym, false_sym, cond_value) = match protection {
                    Some(prot) => (
                        Some(prot.true_symbol),
                        Some(prot.false_symbol),
                        Some(prot.condition),
                    ),
                    None => (None, None, None),
                };
                let true_dest = self.edge(
                    block,
                    *if_true,
                    true_sym.map(|s| (s, cond_value.expect("protected"))),
                    Some("t"),
                    edge_stubs,
                );
                let false_dest = self.edge(
                    block,
                    *if_false,
                    false_sym.map(|s| (s, cond_value.expect("protected"))),
                    Some("f"),
                    edge_stubs,
                );
                p.push(Instr::BCond {
                    cond: Cond::Ne,
                    target: Target::label(true_dest),
                });
                p.push(Instr::B {
                    target: Target::label(false_dest),
                });
            }
            Terminator::Switch { .. } => {
                return Err(CodegenError::Unsupported {
                    function: self.function.name.clone(),
                    message: "switch terminators must be lowered before code generation"
                        .to_string(),
                });
            }
            Terminator::Ret(value) => {
                if let Some(v) = value {
                    self.emit_operand(p, Reg::R0, *v);
                }
                if self.cfi_enabled() {
                    p.set_origin("cfi");
                    self.emit_cfi_write_const(
                        p,
                        CFI_CHECK_ADDR,
                        self.signatures.signature(block.0 as usize),
                    );
                    // Normalise the per-path return state to the function's
                    // canonical exit signature, so CFI'd callers can verify
                    // the call actually executed before replacing the state.
                    self.emit_cfi_write_const(
                        p,
                        CFI_REPLACE_ADDR,
                        exit_signature(&self.function.name),
                    );
                }
                p.set_origin("epilogue");
                if self.frame_size < 4096 {
                    p.push(Instr::Add {
                        rd: Reg::Sp,
                        rn: Reg::Sp,
                        op2: Operand2::Imm(self.frame_size),
                    });
                } else {
                    self.emit_mov_imm(p, Reg::R3, self.frame_size);
                    p.push(Instr::Add {
                        rd: Reg::Sp,
                        rn: Reg::Sp,
                        op2: Operand2::Reg(Reg::R3),
                    });
                }
                p.push(Instr::Pop {
                    regs: vec![Reg::Pc],
                });
            }
        }
        Ok(())
    }

    /// Returns the label a control transfer on the edge `from -> to` should
    /// target. Without CFI this is the successor block itself; with CFI a
    /// per-edge stub applies the GPSA update (and, for protected edges, the
    /// merge of the condition value) before continuing.
    fn edge(
        &mut self,
        from: BlockId,
        to: BlockId,
        protection: Option<(u32, Operand)>,
        kind: Option<&str>,
        edge_stubs: &mut Vec<(String, Vec<Instr>, String)>,
    ) -> String {
        if !self.cfi_enabled() {
            return self.block_label(to);
        }
        let label = format!(
            "{}.e{}_{}{}",
            self.function.name,
            from.0,
            to.0,
            kind.unwrap_or("j")
        );
        if edge_stubs.iter().any(|(l, _, _)| *l == label) {
            return label;
        }
        let sig_from = self.signatures.signature(from.0 as usize);
        let sig_to = self.signatures.signature(to.0 as usize);
        let mut body = Vec::new();
        let mut stub = ProgramBuilder::new();
        match protection {
            None => {
                self.emit_cfi_write_const(
                    &mut stub,
                    CFI_UPDATE_ADDR,
                    edge_update(sig_from, sig_to),
                );
            }
            Some((expected_symbol, condition)) => {
                // Merge the runtime condition value and the edge constant
                // that cancels the expected symbol (Section III).
                self.emit_operand(&mut stub, Reg::R2, condition);
                self.emit_cfi_write_reg(&mut stub, CFI_UPDATE_ADDR, Reg::R2);
                self.emit_cfi_write_const(
                    &mut stub,
                    CFI_UPDATE_ADDR,
                    protected_edge_update(sig_from, sig_to, expected_symbol),
                );
            }
        }
        // Extract the raw instructions out of the temporary builder.
        let assembled = stub.assemble().expect("stub has no labels to resolve");
        body.extend(assembled.instructions().iter().cloned());
        edge_stubs.push((label.clone(), body, self.block_label(to)));
        label
    }
}

fn cond_for(pred: Predicate) -> Cond {
    match pred {
        Predicate::Eq => Cond::Eq,
        Predicate::Ne => Cond::Ne,
        Predicate::Ult => Cond::Lo,
        Predicate::Ule => Cond::Ls,
        Predicate::Ugt => Cond::Hi,
        Predicate::Uge => Cond::Hs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::builder::FunctionBuilder;
    use secbranch_ir::{interp, Module as IrModule};

    fn compile_and_run(
        module: &IrModule,
        options: &CodegenOptions,
        entry: &str,
        args: &[u32],
    ) -> secbranch_armv7m::ExecResult {
        let compiled = compile(module, options).expect("compiles");
        let mut sim = compiled.into_simulator(256 * 1024);
        sim.call(entry, args, 10_000_000).expect("runs")
    }

    fn abs_diff_module() -> IrModule {
        let mut b = FunctionBuilder::new("abs_diff", 2);
        let (x, y) = (b.param(0), b.param(1));
        let t = b.create_block("t");
        let e = b.create_block("e");
        let c = b.cmp(Predicate::Uge, x, y);
        b.branch(c, t, e);
        b.switch_to(t);
        let d = b.bin(BinOp::Sub, x, y);
        b.ret(Some(d));
        b.switch_to(e);
        let d = b.bin(BinOp::Sub, y, x);
        b.ret(Some(d));
        let mut m = IrModule::new();
        m.add_function(b.finish());
        m
    }

    #[test]
    fn generated_code_matches_the_interpreter() {
        let m = abs_diff_module();
        for (x, y) in [(9u32, 3u32), (3, 9), (7, 7), (0, 65_535)] {
            let expected = interp::run(&m, "abs_diff", &[x, y]).unwrap().return_value;
            for cfi in [CfiLevel::None, CfiLevel::Full] {
                let r = compile_and_run(
                    &m,
                    &CodegenOptions {
                        cfi,
                        ..CodegenOptions::default()
                    },
                    "abs_diff",
                    &[x, y],
                );
                assert_eq!(Some(r.return_value), expected, "{x},{y} cfi={cfi:?}");
            }
        }
    }

    #[test]
    fn cfi_instrumentation_is_clean_on_fault_free_runs() {
        let m = abs_diff_module();
        let r = compile_and_run(
            &m,
            &CodegenOptions {
                cfi: CfiLevel::Full,
                ..CodegenOptions::default()
            },
            "abs_diff",
            &[10, 3],
        );
        assert!(r.cfi_checks >= 1);
        assert_eq!(r.cfi_violations, 0);
    }

    #[test]
    fn cfi_increases_code_size() {
        let m = abs_diff_module();
        let plain = compile(
            &m,
            &CodegenOptions {
                cfi: CfiLevel::None,
                ..CodegenOptions::default()
            },
        )
        .expect("compiles");
        let cfi = compile(
            &m,
            &CodegenOptions {
                cfi: CfiLevel::Full,
                ..CodegenOptions::default()
            },
        )
        .expect("compiles");
        assert!(cfi.code_size_bytes() > plain.code_size_bytes());
        assert!(plain.function_size("abs_diff").expect("present") > 0);
    }

    #[test]
    fn loops_globals_and_calls_work() {
        // Build: sum_table(n) = sum of the first n words of @table, via a
        // callee that adds one element.
        let mut m = IrModule::new();
        let words: Vec<u8> = (1u32..=8).flat_map(|w| w.to_le_bytes()).collect();
        m.add_global("table", words, false);

        let mut add = FunctionBuilder::new("accum", 2);
        let s = add.bin(BinOp::Add, add.param(0), add.param(1));
        add.ret(Some(s));
        m.add_function(add.finish());

        let mut b = FunctionBuilder::new("sum_table", 1);
        let n = b.param(0);
        let i = b.local("i", 4);
        let acc = b.local("acc", 4);
        b.store_local(i, 0u32);
        b.store_local(acc, 0u32);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.jump(header);
        b.switch_to(header);
        let iv = b.load_local(i);
        let c = b.cmp(Predicate::Ult, iv, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let iv = b.load_local(i);
        let base = b.global_addr("table");
        let off = b.bin(BinOp::Mul, iv, 4u32);
        let addr = b.bin(BinOp::Add, base, off);
        let w = b.load(addr);
        let a = b.load_local(acc);
        let a2 = b.call("accum", &[a, w]);
        b.store_local(acc, a2);
        let i2 = b.bin(BinOp::Add, iv, 1u32);
        b.store_local(i, i2);
        b.jump(header);
        b.switch_to(exit);
        let a = b.load_local(acc);
        b.ret(Some(a));
        m.add_function(b.finish());

        for cfi in [CfiLevel::None, CfiLevel::Full] {
            let r = compile_and_run(
                &m,
                &CodegenOptions {
                    cfi,
                    ..CodegenOptions::default()
                },
                "sum_table",
                &[8],
            );
            assert_eq!(r.return_value, 36, "cfi={cfi:?}");
            if matches!(cfi, CfiLevel::Full) {
                assert_eq!(r.cfi_violations, 0);
            }
        }
    }

    #[test]
    fn protected_branches_execute_cleanly_and_detect_symbol_corruption() {
        use secbranch_passes::{standard_protection_pipeline, AnCoderConfig};

        let mut b = FunctionBuilder::new("check", 2);
        b.protect_branches();
        let grant = b.create_block("grant");
        let deny = b.create_block("deny");
        let cond = b.cmp(Predicate::Eq, b.param(0), b.param(1));
        b.branch(cond, grant, deny);
        b.switch_to(grant);
        b.ret(Some(1u32.into()));
        b.switch_to(deny);
        b.ret(Some(0u32.into()));
        let mut m = IrModule::new();
        m.add_function(b.finish());
        standard_protection_pipeline(AnCoderConfig::default())
            .run(&mut m)
            .expect("pipeline");

        // Fault-free: correct result, clean CFI.
        for (x, y, expect) in [(5u32, 5u32, 1u32), (5, 6, 0)] {
            let r = compile_and_run(
                &m,
                &CodegenOptions {
                    cfi: CfiLevel::Full,
                    ..CodegenOptions::default()
                },
                "check",
                &[x, y],
            );
            assert_eq!(r.return_value, expect);
            assert_eq!(r.cfi_violations, 0);
        }

        // Unprotected variant (CFI off) still computes correctly.
        let r = compile_and_run(
            &m,
            &CodegenOptions {
                cfi: CfiLevel::None,
                ..CodegenOptions::default()
            },
            "check",
            &[7, 7],
        );
        assert_eq!(r.return_value, 1);
    }

    #[test]
    fn compilation_is_bit_deterministic() {
        use secbranch_passes::{standard_protection_pipeline, AnCoderConfig};

        // The protected pipeline exercises every order-sensitive piece:
        // shadow locals (Loop Decoupler), fresh values (AN Coder), edge
        // stubs and slot allocation. Two independent compilations must be
        // byte-identical, listings included.
        let mut m = abs_diff_module();
        m.function_mut("abs_diff").unwrap().attrs.protect_branches = true;
        standard_protection_pipeline(AnCoderConfig::default())
            .run(&mut m)
            .expect("pipeline");
        let options = CodegenOptions {
            cfi: CfiLevel::Full,
            ..CodegenOptions::default()
        };
        let first = compile(&m, &options).expect("compiles");
        let second = compile(&m, &options).expect("compiles");
        assert_eq!(first.program, second.program);
        assert_eq!(first.global_addresses, second.global_addresses);
        assert_eq!(first.function_sizes, second.function_sizes);
        assert_eq!(
            first.program.annotated_listing(),
            second.program.annotated_listing()
        );
    }

    #[test]
    fn provenance_tags_attribute_instructions_to_pipeline_layers() {
        use secbranch_passes::{standard_protection_pipeline, AnCoderConfig};
        use std::collections::BTreeSet;

        let mut b = FunctionBuilder::new("check", 2);
        b.protect_branches();
        let grant = b.create_block("grant");
        let deny = b.create_block("deny");
        let cond = b.cmp(Predicate::Eq, b.param(0), b.param(1));
        b.branch(cond, grant, deny);
        b.switch_to(grant);
        b.ret(Some(1u32.into()));
        b.switch_to(deny);
        b.ret(Some(0u32.into()));
        let mut m = IrModule::new();
        m.add_function(b.finish());
        standard_protection_pipeline(AnCoderConfig::default())
            .run(&mut m)
            .expect("pipeline");

        let compiled = compile(
            &m,
            &CodegenOptions {
                cfi: CfiLevel::Full,
                ..CodegenOptions::default()
            },
        )
        .expect("compiles");
        let origins: BTreeSet<&str> = (0..compiled.program.len())
            .map(|i| compiled.program.origin_at(i))
            .collect();
        for expected in [
            "prologue", "body", "an-coder", "cfi", "cfi-edge", "epilogue",
        ] {
            assert!(origins.contains(expected), "missing origin {expected:?}");
        }
        // The encoded-compare kernel instructions (UDIV/MLS only ever come
        // from Algorithm 1/2) are attributed to the AN Coder.
        for (i, instr) in compiled.program.instructions().iter().enumerate() {
            if matches!(instr, Instr::Udiv { .. } | Instr::Mls { .. }) {
                assert_eq!(compiled.program.origin_at(i), "an-coder", "pc {i}");
            }
        }
    }

    #[test]
    fn unlowered_switch_is_rejected() {
        let mut b = FunctionBuilder::new("sw", 1);
        let a = b.create_block("a");
        let d = b.create_block("d");
        b.switch(b.param(0), d, &[(1, a)]);
        b.switch_to(a);
        b.ret(Some(1u32.into()));
        b.switch_to(d);
        b.ret(Some(0u32.into()));
        let mut m = IrModule::new();
        m.add_function(b.finish());
        assert!(matches!(
            compile(&m, &CodegenOptions::default()),
            Err(CodegenError::Unsupported { .. })
        ));
    }

    #[test]
    fn unknown_global_is_rejected() {
        let mut b = FunctionBuilder::new("g", 0);
        let a = b.global_addr("missing");
        b.ret(Some(a));
        let mut m = IrModule::new();
        m.add_function(b.finish());
        // The verifier would also reject this, but the back end must not
        // panic when handed an unverified module.
        assert!(matches!(
            compile(&m, &CodegenOptions::default()),
            Err(CodegenError::UnknownGlobal { .. })
        ));
    }
}
