//! The secbranch back end: instruction selection from the IR to the
//! ARMv7-M-like target, a simple stack-based register allocation, and the
//! CFI instrumentation that links protected branches into the CFI state
//! (the architecture/CFI-specific part of the paper's Figure 3 pipeline).
//!
//! The code generator is deliberately simple (every IR value lives in a stack
//! slot, instructions load their operands into scratch registers and store
//! their result back). This inflates absolute code size and cycle counts
//! uniformly across all protection variants, so the *relative* overheads the
//! paper reports (CFI baseline vs. duplication vs. the AN-code prototype)
//! remain meaningful — see `EXPERIMENTS.md` for the measured numbers.
//!
//! CFI instrumentation follows the GPSA model of `secbranch-cfi`: every CFG
//! edge gets a small stub that applies the edge's XOR update to the
//! memory-mapped CFI unit; edges leaving a *protected* branch additionally
//! store the redundant condition value, so only the correct symbol on the
//! correct edge reproduces the successor's signature (Section III of the
//! paper). Function entries replace the state, returns check it.
//!
//! # Example
//!
//! ```
//! use secbranch_codegen::{compile, CodegenOptions};
//! use secbranch_ir::{builder::FunctionBuilder, BinOp, Module};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::new("triple", 1);
//! let r = b.bin(BinOp::Mul, b.param(0), 3u32);
//! b.ret(Some(r));
//! let mut module = Module::new();
//! module.add_function(b.finish());
//!
//! let compiled = compile(&module, &CodegenOptions::default())?;
//! let mut sim = compiled.into_simulator(64 * 1024);
//! assert_eq!(sim.call("triple", &[14], 10_000)?.return_value, 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod isel;
pub mod snippet;

pub use error::CodegenError;
pub use isel::{compile, CfiLevel, CodegenOptions, CompiledModule, HardenRegion};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodegenError>();
        assert_send_sync::<CodegenOptions>();
        assert_send_sync::<CompiledModule>();
    }
}
