//! Error type of the back end.

use std::error::Error;
use std::fmt;

use secbranch_armv7m::SimError;

/// Errors produced during code generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodegenError {
    /// The module references a global that does not exist.
    UnknownGlobal {
        /// The missing global.
        name: String,
        /// The function referencing it.
        function: String,
    },
    /// The IR contains a construct the back end does not support
    /// (e.g. a `switch` terminator that was not lowered first).
    Unsupported {
        /// The function containing the construct.
        function: String,
        /// Human-readable description.
        message: String,
    },
    /// Assembling the generated program failed (duplicate or missing labels
    /// indicate a code-generator bug).
    Assembly(SimError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UnknownGlobal { name, function } => {
                write!(
                    f,
                    "function '{function}' references unknown global '{name}'"
                )
            }
            CodegenError::Unsupported { function, message } => {
                write!(f, "unsupported construct in '{function}': {message}")
            }
            CodegenError::Assembly(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl Error for CodegenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodegenError::Assembly(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CodegenError {
    fn from(e: SimError) -> Self {
        CodegenError::Assembly(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CodegenError::Unsupported {
            function: "f".to_string(),
            message: "switch terminators must be lowered".to_string(),
        };
        assert!(e.to_string().contains('f'));
        assert!(e.to_string().contains("switch"));
    }
}
