//! The on-disk record format: little-endian primitives, CRC-32 integrity
//! and the versioned record frame.
//!
//! Every record file is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SBGR"
//! 4       4     format version (u32 LE)
//! 8       1     record kind (1 = trace, 2 = cell)
//! 9       8     payload length (u64 LE)
//! 17      4     CRC-32 (IEEE) of the payload (u32 LE)
//! 21      n     payload
//! ```
//!
//! Hand-rolled on purpose (the offline workspace has no serde/bincode) and
//! **fixed by definition**: like the FNV fingerprints of the facade, the
//! byte layout must not drift with the toolchain, or stores written by one
//! build silently stop loading in the next. Everything is little-endian and
//! byte-oriented, so records are portable across hosts.

/// Magic bytes opening every record file.
pub const MAGIC: [u8; 4] = *b"SBGR";

/// The current format version. Bump on any layout change — readers refuse
/// other versions instead of misparsing them.
pub const FORMAT_VERSION: u32 = 1;

/// Record kind tag of a reference-trace record.
pub const KIND_TRACE: u8 = 1;

/// Record kind tag of a campaign-cell record.
pub const KIND_CELL: u8 = 2;

/// Size of the fixed frame header preceding the payload.
pub const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 4;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3, reflected) of `bytes`.
///
/// (`secbranch-programs` carries its own copy for the CRC workload's
/// embedded digest — that crate is a leaf and must not depend on the
/// persistence stack; both copies pin the `0xCBF43926` check vector.)
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// 64-bit FNV-1a — the same fixed, cross-build hash the facade uses for
/// fingerprints, here deriving record file names from key bytes.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Why a record failed to parse. [`RecordError::Version`] is split out so
/// callers can distinguish "written by a different format" from damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// Wrong magic, truncated header/payload, CRC mismatch, kind mismatch
    /// or malformed payload.
    Corrupt,
    /// The frame carries a different format version.
    Version(u32),
}

/// Wraps `payload` in a record frame of the given kind.
#[must_use]
pub fn frame_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a record frame and returns its payload slice.
///
/// Any shortfall — bad magic, truncation (a payload shorter than the header
/// promises), a trailing-garbage length mismatch, a CRC mismatch, the wrong
/// kind — is [`RecordError::Corrupt`]; a well-formed frame of another
/// format version is [`RecordError::Version`].
///
/// # Errors
///
/// See above.
pub fn parse_record(bytes: &[u8], expected_kind: u8) -> Result<&[u8], RecordError> {
    if bytes.len() < HEADER_LEN || bytes[0..4] != MAGIC {
        return Err(RecordError::Corrupt);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("length checked"));
    if version != FORMAT_VERSION {
        return Err(RecordError::Version(version));
    }
    let kind = bytes[8];
    let payload_len = u64::from_le_bytes(bytes[9..17].try_into().expect("length checked"));
    let crc = u32::from_le_bytes(bytes[17..21].try_into().expect("length checked"));
    let payload = &bytes[HEADER_LEN..];
    if kind != expected_kind || payload.len() as u64 != payload_len || crc32(payload) != crc {
        return Err(RecordError::Corrupt);
    }
    Ok(payload)
}

/// A growable little-endian byte sink for record payloads.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn u32s(&mut self, vs: &[u32]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u32(v);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn u64s(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u64(v);
        }
    }
}

/// A bounds-checked little-endian reader over a record payload. Every
/// method fails with [`RecordError::Corrupt`] instead of panicking, so a
/// damaged payload is dropped, never a crash.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// `true` when every byte has been consumed — decoders check this last
    /// so trailing garbage is rejected, not ignored.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        let end = self.pos.checked_add(n).ok_or(RecordError::Corrupt)?;
        if end > self.bytes.len() {
            return Err(RecordError::Corrupt);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`RecordError::Corrupt`] past the end.
    pub fn u8(&mut self) -> Result<u8, RecordError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`RecordError::Corrupt`] past the end.
    pub fn u32(&mut self) -> Result<u32, RecordError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("length checked"),
        ))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`RecordError::Corrupt`] past the end.
    pub fn u64(&mut self) -> Result<u64, RecordError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("length checked"),
        ))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`RecordError::Corrupt`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, RecordError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| RecordError::Corrupt)
    }

    /// Reads a length-prefixed byte vector.
    ///
    /// # Errors
    ///
    /// [`RecordError::Corrupt`] on truncation.
    pub fn byte_vec(&mut self) -> Result<Vec<u8>, RecordError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed `u32` vector.
    ///
    /// # Errors
    ///
    /// [`RecordError::Corrupt`] on truncation.
    pub fn u32s(&mut self) -> Result<Vec<u32>, RecordError> {
        let len = self.u32()? as usize;
        // Guard the allocation against a corrupted length before reading.
        if len > self.bytes.len().saturating_sub(self.pos) / 4 {
            return Err(RecordError::Corrupt);
        }
        (0..len).map(|_| self.u32()).collect()
    }

    /// Reads a length-prefixed `u64` vector.
    ///
    /// # Errors
    ///
    /// [`RecordError::Corrupt`] on truncation.
    pub fn u64s(&mut self) -> Result<Vec<u64>, RecordError> {
        let len = self.u32()? as usize;
        if len > self.bytes.len().saturating_sub(self.pos) / 8 {
            return Err(RecordError::Corrupt);
        }
        (0..len).map(|_| self.u64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_standard_test_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv_matches_the_standard_test_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        w.u32s(&[4, 5]);
        w.u64s(&[6]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.byte_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u32s().unwrap(), vec![4, 5]);
        assert_eq!(r.u64s().unwrap(), vec![6]);
        assert!(r.is_exhausted());
        assert_eq!(r.u8(), Err(RecordError::Corrupt), "reads past the end fail");
    }

    #[test]
    fn frames_round_trip_and_reject_damage() {
        let framed = frame_record(KIND_TRACE, b"payload");
        assert_eq!(parse_record(&framed, KIND_TRACE).unwrap(), b"payload");
        assert_eq!(
            parse_record(&framed, KIND_CELL),
            Err(RecordError::Corrupt),
            "kind mismatch"
        );

        let mut flipped = framed.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert_eq!(
            parse_record(&flipped, KIND_TRACE),
            Err(RecordError::Corrupt),
            "payload tamper breaks the CRC"
        );

        let truncated = &framed[..framed.len() - 1];
        assert_eq!(
            parse_record(truncated, KIND_TRACE),
            Err(RecordError::Corrupt),
            "truncation"
        );

        let mut versioned = framed.clone();
        versioned[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            parse_record(&versioned, KIND_TRACE),
            Err(RecordError::Version(99)),
            "future versions are rejected, not misparsed"
        );

        assert_eq!(parse_record(b"no", KIND_TRACE), Err(RecordError::Corrupt));
    }

    #[test]
    fn corrupted_length_prefixes_fail_cleanly() {
        // A huge length prefix must not trigger a huge allocation or a
        // panic — just a clean decode failure.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).u32s(), Err(RecordError::Corrupt));
        assert_eq!(Reader::new(&bytes).u64s(), Err(RecordError::Corrupt));
        assert_eq!(Reader::new(&bytes).byte_vec(), Err(RecordError::Corrupt));
        assert_eq!(Reader::new(&bytes).str(), Err(RecordError::Corrupt));
    }
}
