//! `secbranch-store` — a persistent, content-addressed grid store for
//! reference traces and completed campaign cells.
//!
//! PR 4 made compilation bit-deterministic, which turned
//! `artifact_fingerprint` into a sound *cross-process* cache key: the same
//! (module, pipeline) produces the same fingerprint in any build. This
//! crate is the disk layer that cashes that in. A [`GridStore`] is a
//! directory holding two record families:
//!
//! * **reference traces** — the fault-free execution every campaign
//!   classifies against, including its machine checkpoints, keyed by
//!   `(artifact fingerprint, entry, args)`
//!   ([`secbranch_campaign::TraceKey`]); and
//! * **campaign cells** — finished
//!   [`secbranch_campaign::CampaignReport`]s keyed by
//!   `(artifact fingerprint, fault-model fingerprint, entry, args)`
//!   ([`secbranch_campaign::CellKey`]).
//!
//! With a store attached, a re-run of an unchanged security matrix does
//! **zero simulation**: every cell is served from disk, byte-identical to a
//! fresh computation — across process restarts, between CI runs, and
//! between independently compiled builds.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/
//!   MANIFEST                   magic + format version (rejects mismatches)
//!   tmp/                       staging area for atomic writes
//!   traces/<hh>/<hash16>.rec   one reference trace per file
//!   cells/<hh>/<hash16>.rec    one campaign cell per file
//! ```
//!
//! Records are *content-addressed*: the file name is the FNV-1a hash of the
//! record's canonical key bytes — which are themselves fingerprints of the
//! artifact and model content — so the same cell always lands in the same
//! file and concurrent writers of the same key are idempotent. Each family
//! fans out across 256 shard subdirectories named by the first byte of that
//! hash (`<hh>` = its two hex digits), keeping directories small at
//! million-record scale; directories written by the flat PR 5 layout are
//! migrated transparently, one record at a time, whenever a record is
//! touched. Every record
//! carries a magic/version header and a CRC-32 over its payload
//! ([`mod@format`]); writes go to `tmp/` and are published by an atomic rename,
//! so a reader (or a second process sharing the directory) only ever sees
//! complete records — a consistent snapshot, never a torn write. Damaged,
//! truncated or foreign-version record files are dropped at load time and
//! counted, never served.
//!
//! # Wiring
//!
//! [`GridStore`] implements
//! [`secbranch_campaign::GridBackend`]; attach it to a
//! [`secbranch_campaign::TraceStore`] (the facade's
//! `Session::security_matrix_with` and `Artifact::campaign_with_store` take
//! an `Option<&Arc<GridStore>>` and do this for you) and both record
//! families flow automatically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod format;

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use secbranch_campaign::{
    CampaignReport, CellKey, GridBackend, PersistedTrace, RecordedReference, TraceKey,
};

use format::{fnv1a_64, frame_record, parse_record, RecordError, KIND_CELL, KIND_TRACE};

/// Magic bytes of the store manifest.
const MANIFEST_MAGIC: [u8; 8] = *b"SBGRIDMF";

/// File name of the store manifest.
const MANIFEST_NAME: &str = "MANIFEST";

/// Errors opening or scanning a [`GridStore`].
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// The directory was written by a different format version; refusing to
    /// read or write it (delete the directory or use a matching build).
    VersionMismatch {
        /// The version recorded in the manifest.
        found: u32,
        /// The version this build understands.
        expected: u32,
    },
    /// The manifest exists but is not a manifest (wrong magic or truncated).
    CorruptManifest,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "grid store I/O failure: {e}"),
            StoreError::VersionMismatch { found, expected } => write!(
                f,
                "grid store format version mismatch: directory has v{found}, \
                 this build reads v{expected}"
            ),
            StoreError::CorruptManifest => f.write_str("grid store manifest is corrupt"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A point-in-time snapshot of a store's runtime counters (everything this
/// process observed since [`GridStore::open`]; the on-disk totals come from
/// [`GridStore::scan`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Trace loads served from disk.
    pub trace_hits: u64,
    /// Trace loads that found nothing (or nothing intact).
    pub trace_misses: u64,
    /// Cell loads served from disk.
    pub cell_hits: u64,
    /// Cell loads that found nothing (or nothing intact).
    pub cell_misses: u64,
    /// Records written (published by rename).
    pub writes: u64,
    /// Writes skipped because an intact record already existed.
    pub write_skips: u64,
    /// Writes that failed on I/O (best-effort: callers keep going).
    pub write_errors: u64,
    /// Record files dropped as damaged (bad magic/CRC/truncation/foreign
    /// version/key collision) during loads.
    pub corrupt_dropped: u64,
    /// Flat-layout (PR 5) record files moved into their shard subdirectory
    /// on first touch.
    pub migrated: u64,
}

impl StoreStats {
    /// Registers the counters into an observability [`secbranch_obs::Registry`]
    /// (`secbranch_store_*` series) — the daemon's `METRICS` exposition
    /// and any other exporter read them through this one schema.
    pub fn register_into(&self, registry: &mut secbranch_obs::Registry) {
        registry.counter("secbranch_store_trace_hits_total", self.trace_hits);
        registry.counter("secbranch_store_trace_misses_total", self.trace_misses);
        registry.counter("secbranch_store_cell_hits_total", self.cell_hits);
        registry.counter("secbranch_store_cell_misses_total", self.cell_misses);
        registry.counter("secbranch_store_writes_total", self.writes);
        registry.counter("secbranch_store_write_skips_total", self.write_skips);
        registry.counter("secbranch_store_write_errors_total", self.write_errors);
        registry.counter(
            "secbranch_store_corrupt_dropped_total",
            self.corrupt_dropped,
        );
        registry.counter("secbranch_store_migrated_total", self.migrated);
    }

    /// Serialises the counters as JSON (hand-rolled: the offline build has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trace_hits\":{},\"trace_misses\":{},\"cell_hits\":{},\"cell_misses\":{},\
             \"writes\":{},\"write_skips\":{},\"write_errors\":{},\"corrupt_dropped\":{},\
             \"migrated\":{}}}",
            self.trace_hits,
            self.trace_misses,
            self.cell_hits,
            self.cell_misses,
            self.writes,
            self.write_skips,
            self.write_errors,
            self.corrupt_dropped,
            self.migrated,
        )
    }
}

/// What [`GridStore::scan`] found on disk: a full-directory validation
/// pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Intact trace records.
    pub trace_records: u64,
    /// Intact cell records.
    pub cell_records: u64,
    /// Record files that failed validation (left in place; loads ignore
    /// them and a later write of the same key replaces them).
    pub corrupt_records: u64,
    /// Total bytes of intact records (headers included).
    pub total_bytes: u64,
}

impl ScanReport {
    /// Serialises the scan as JSON (hand-rolled: the offline build has no
    /// serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"format_version\":{},\"trace_records\":{},\"cell_records\":{},\
             \"corrupt_records\":{},\"total_bytes\":{}}}",
            format::FORMAT_VERSION,
            self.trace_records,
            self.cell_records,
            self.corrupt_records,
            self.total_bytes,
        )
    }
}

/// What [`GridStore::compact`] did: removals by family, retained records,
/// and bytes given back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Intact records whose artifact is in the live set (kept).
    pub retained: u64,
    /// Trace records removed as dead (artifact not in the live set).
    pub removed_traces: u64,
    /// Cell records removed as dead.
    pub removed_cells: u64,
    /// Records removed because they were too damaged to classify.
    pub removed_corrupt: u64,
    /// Total size of the removed files, in bytes.
    pub reclaimed_bytes: u64,
}

impl CompactReport {
    /// Total records removed, all reasons combined.
    #[must_use]
    pub fn removed(&self) -> u64 {
        self.removed_traces + self.removed_cells + self.removed_corrupt
    }

    /// Serialises the compaction outcome as JSON (hand-rolled: the offline
    /// build has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"retained\":{},\"removed_traces\":{},\"removed_cells\":{},\
             \"removed_corrupt\":{},\"reclaimed_bytes\":{}}}",
            self.retained,
            self.removed_traces,
            self.removed_cells,
            self.removed_corrupt,
            self.reclaimed_bytes,
        )
    }
}

/// What [`GridStore::evict_to`] did: LRU eviction towards a byte budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictReport {
    /// Record files examined across both families.
    pub examined: u64,
    /// Files deleted, oldest modification time first.
    pub evicted: u64,
    /// Total size of the deleted files, in bytes.
    pub reclaimed_bytes: u64,
    /// Bytes remaining on disk after eviction.
    pub retained_bytes: u64,
}

impl EvictReport {
    /// Serialises the eviction outcome as JSON (hand-rolled: the offline
    /// build has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"examined\":{},\"evicted\":{},\"reclaimed_bytes\":{},\
             \"retained_bytes\":{}}}",
            self.examined, self.evicted, self.reclaimed_bytes, self.retained_bytes,
        )
    }
}

/// The disk-backed, content-addressed store (see the [crate docs](self) for
/// layout and guarantees).
///
/// A `GridStore` is cheap to share behind an [`Arc`](std::sync::Arc) and
/// safe to use from many threads and many processes at once: all methods
/// take `&self`, writes are atomic renames, and loads only ever observe
/// complete records.
#[derive(Debug)]
pub struct GridStore {
    root: PathBuf,
    tmp_counter: AtomicU64,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    cell_hits: AtomicU64,
    cell_misses: AtomicU64,
    writes: AtomicU64,
    write_skips: AtomicU64,
    write_errors: AtomicU64,
    corrupt_dropped: AtomicU64,
    migrated: AtomicU64,
}

impl GridStore {
    /// The on-disk format version this build reads and writes.
    pub const FORMAT_VERSION: u32 = format::FORMAT_VERSION;

    /// Opens (creating if necessary) the store rooted at `dir`.
    ///
    /// A fresh directory is initialised with a `MANIFEST` recording the
    /// format version; an existing one is validated against it.
    ///
    /// # Errors
    ///
    /// [`StoreError::VersionMismatch`] when the directory was written by a
    /// different format version, [`StoreError::CorruptManifest`] when its
    /// manifest is damaged, [`StoreError::Io`] on filesystem failure.
    pub fn open(dir: impl AsRef<Path>) -> Result<GridStore, StoreError> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(root.join("tmp"))?;
        fs::create_dir_all(root.join("traces"))?;
        fs::create_dir_all(root.join("cells"))?;
        sweep_stale_staging(&root.join("tmp"));
        let store = GridStore {
            root,
            tmp_counter: AtomicU64::new(0),
            trace_hits: AtomicU64::new(0),
            trace_misses: AtomicU64::new(0),
            cell_hits: AtomicU64::new(0),
            cell_misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_skips: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            corrupt_dropped: AtomicU64::new(0),
            migrated: AtomicU64::new(0),
        };
        store.check_manifest()?;
        Ok(store)
    }

    fn check_manifest(&self) -> Result<(), StoreError> {
        let path = self.root.join(MANIFEST_NAME);
        match fs::read(&path) {
            Ok(bytes) => {
                if bytes.len() != MANIFEST_MAGIC.len() + 4 || bytes[..8] != MANIFEST_MAGIC {
                    return Err(StoreError::CorruptManifest);
                }
                let found = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"));
                if found != Self::FORMAT_VERSION {
                    return Err(StoreError::VersionMismatch {
                        found,
                        expected: Self::FORMAT_VERSION,
                    });
                }
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let mut bytes = MANIFEST_MAGIC.to_vec();
                bytes.extend_from_slice(&Self::FORMAT_VERSION.to_le_bytes());
                // Atomic like every other write: a concurrent opener either
                // sees no manifest (and writes the identical one) or a
                // complete one.
                self.publish(&path, &bytes).map_err(StoreError::Io)?;
                Ok(())
            }
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A snapshot of this process's runtime counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
            cell_hits: self.cell_hits.load(Ordering::Relaxed),
            cell_misses: self.cell_misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_skips: self.write_skips.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            corrupt_dropped: self.corrupt_dropped.load(Ordering::Relaxed),
            migrated: self.migrated.load(Ordering::Relaxed),
        }
    }

    /// The sharded path of a record: `<family>/<hh>/<hash16>.rec`, where
    /// `<hh>` is the first byte of the key hash in hex. A flat-layout file
    /// from PR 5 (`<family>/<hash16>.rec`) is migrated into its shard on
    /// first touch — and if a sharded record already exists (another
    /// process migrated or rewrote it first; records are content-addressed,
    /// so both hold the same data), the flat leftover is removed instead.
    fn record_path(&self, family: &str, hash: u64) -> PathBuf {
        let family_root = self.root.join(family);
        let sharded = family_root
            .join(format!("{:02x}", hash >> 56))
            .join(format!("{hash:016x}.rec"));
        let flat = family_root.join(format!("{hash:016x}.rec"));
        if flat.exists() {
            if sharded.exists() {
                let _ = fs::remove_file(&flat);
            } else {
                if let Some(shard_dir) = sharded.parent() {
                    let _ = fs::create_dir_all(shard_dir);
                }
                // Losing the rename race to a concurrent migrator is fine:
                // the winner put the identical record in place.
                if fs::rename(&flat, &sharded).is_ok() {
                    self.migrated.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        sharded
    }

    fn trace_path(&self, key: &TraceKey) -> PathBuf {
        self.record_path("traces", fnv1a_64(&codec::encode_trace_key(key)))
    }

    fn cell_path(&self, key: &CellKey) -> PathBuf {
        self.record_path("cells", fnv1a_64(&codec::encode_cell_key(key)))
    }

    /// Writes `bytes` to `path` atomically: staged in `tmp/`, published by
    /// rename.
    fn publish(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let staged = self.root.join("tmp").join(format!(
            "{}.{}.tmp",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&staged, bytes)?;
        fs::rename(&staged, path)
    }

    /// Writes a framed record unless an *intact* one already exists
    /// (records are content-addressed, so an intact record under this path
    /// already holds this key's data); a damaged or foreign-version file is
    /// overwritten — writes are how a store heals. Counts
    /// writes/skips/errors.
    fn put_record(&self, path: &Path, kind: u8, payload: &[u8]) {
        if let Ok(existing) = fs::read(path) {
            if parse_record(&existing, kind).is_ok() {
                self.write_skips.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // Shard directories are created lazily, on first write into them.
        if let Some(shard_dir) = path.parent() {
            let _ = fs::create_dir_all(shard_dir);
        }
        match self.publish(path, &frame_record(kind, payload)) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Reads and validates the record file at `path`; `None` when absent,
    /// damaged or of a foreign version (damage is counted).
    fn read_record(&self, path: &Path, kind: u8) -> Option<Vec<u8>> {
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match parse_record(&bytes, kind) {
            Ok(payload) => Some(payload.to_vec()),
            Err(RecordError::Corrupt | RecordError::Version(_)) => {
                self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Loads the persisted trace for `key` (`None`: absent or not intact).
    #[must_use]
    pub fn get_trace(&self, key: &TraceKey) -> Option<PersistedTrace> {
        let _span = secbranch_obs::span_with("store_read", || format!("trace {}", key.artifact));
        let fetch = || {
            let payload = self.read_record(&self.trace_path(key), KIND_TRACE)?;
            let (stored_key, persisted) = match codec::decode_trace_payload(&payload) {
                Ok(decoded) => decoded,
                Err(_) => {
                    self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            };
            // A 64-bit file-name collision must read as a miss, never as
            // another key's trace.
            (stored_key == *key).then_some(persisted)
        };
        let result = fetch();
        match &result {
            Some(_) => self.trace_hits.fetch_add(1, Ordering::Relaxed),
            None => self.trace_misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Persists a recording under `key` (skipped when an intact record for
    /// this key already exists — same key means same content).
    pub fn put_trace(&self, key: &TraceKey, recorded: &RecordedReference) {
        let _span = secbranch_obs::span_with("store_write", || format!("trace {}", key.artifact));
        let payload = codec::encode_trace_payload(key, recorded);
        self.put_record(&self.trace_path(key), KIND_TRACE, &payload);
    }

    /// Loads the persisted campaign report for `key` (`None`: absent or not
    /// intact).
    #[must_use]
    pub fn get_cell(&self, key: &CellKey) -> Option<CampaignReport> {
        let _span = secbranch_obs::span_with("store_read", || format!("cell {}", key.artifact));
        let fetch = || {
            let payload = self.read_record(&self.cell_path(key), KIND_CELL)?;
            let (stored_key, report) = match codec::decode_cell_payload(&payload) {
                Ok(decoded) => decoded,
                Err(_) => {
                    self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            };
            (stored_key == *key).then_some(report)
        };
        let result = fetch();
        match &result {
            Some(_) => self.cell_hits.fetch_add(1, Ordering::Relaxed),
            None => self.cell_misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Persists a completed cell under `key` (skipped when an intact record
    /// already exists).
    pub fn put_cell(&self, key: &CellKey, report: &CampaignReport) {
        let _span = secbranch_obs::span_with("store_write", || format!("cell {}", key.artifact));
        let payload = codec::encode_cell_payload(key, report);
        self.put_record(&self.cell_path(key), KIND_CELL, &payload);
    }

    /// Walks the whole directory and validates every record — the on-disk
    /// truth behind `--store-stats`. Corrupt files are reported, not
    /// deleted (a later write of the same key replaces them).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when a directory cannot be listed (individual
    /// unreadable files count as corrupt instead).
    pub fn scan(&self) -> Result<ScanReport, StoreError> {
        let mut report = ScanReport::default();
        for (sub, kind, tally) in [("traces", KIND_TRACE, 0usize), ("cells", KIND_CELL, 1usize)] {
            for path in record_files(&self.root.join(sub))? {
                let Ok(bytes) = fs::read(&path) else {
                    report.corrupt_records += 1;
                    continue;
                };
                let intact = match parse_record(&bytes, kind) {
                    Ok(payload) => match kind {
                        KIND_TRACE => codec::decode_trace_payload(payload).is_ok(),
                        _ => codec::decode_cell_payload(payload).is_ok(),
                    },
                    Err(_) => false,
                };
                if intact {
                    if tally == 0 {
                        report.trace_records += 1;
                    } else {
                        report.cell_records += 1;
                    }
                    report.total_bytes += bytes.len() as u64;
                } else {
                    report.corrupt_records += 1;
                }
            }
        }
        Ok(report)
    }

    /// Garbage collection: deletes every record whose artifact fingerprint
    /// is *not* in `live`, plus any record too damaged to classify (a
    /// record that cannot name its artifact can never be served anyway).
    /// Retained records are untouched — compaction never rewrites, so it is
    /// safe to run while readers and writers share the directory: they only
    /// ever see a record present (intact) or absent (a clean miss).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when a directory cannot be listed (individual
    /// unreadable files are removed and counted as corrupt instead).
    pub fn compact(
        &self,
        live: &std::collections::HashSet<String>,
    ) -> Result<CompactReport, StoreError> {
        let mut report = CompactReport::default();
        for (sub, kind, family) in [("traces", KIND_TRACE, 0usize), ("cells", KIND_CELL, 1usize)] {
            for path in record_files(&self.root.join(sub))? {
                let size = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let artifact = fs::read(&path)
                    .ok()
                    .and_then(|bytes| parse_record(&bytes, kind).ok().map(<[u8]>::to_vec))
                    .and_then(|payload| codec::decode_record_artifact(&payload).ok());
                match artifact {
                    Some(artifact) if live.contains(&artifact) => report.retained += 1,
                    Some(_) => {
                        if fs::remove_file(&path).is_ok() {
                            if family == 0 {
                                report.removed_traces += 1;
                            } else {
                                report.removed_cells += 1;
                            }
                            report.reclaimed_bytes += size;
                        }
                    }
                    None => {
                        if fs::remove_file(&path).is_ok() {
                            report.removed_corrupt += 1;
                            report.reclaimed_bytes += size;
                        }
                    }
                }
            }
        }
        Ok(report)
    }

    /// Size-bounded LRU eviction: deletes record files — least recently
    /// modified first — until at most `max_bytes` remain on disk across
    /// both families. Modification time is the recency signal the store
    /// already maintains (publishes are write-then-rename, so every record
    /// carries the time it was produced); ties are broken by path so the
    /// eviction order is deterministic.
    ///
    /// Like [`GridStore::compact`] this never rewrites retained records,
    /// so it is safe to run while readers and writers share the directory:
    /// a concurrent reader sees each record either present (intact) or
    /// absent (a clean miss that recomputes).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when a directory cannot be listed (an individual
    /// file whose metadata or deletion fails is skipped and retained).
    pub fn evict_to(&self, max_bytes: u64) -> Result<EvictReport, StoreError> {
        let mut files = Vec::new();
        let mut total: u64 = 0;
        for sub in ["traces", "cells"] {
            for path in record_files(&self.root.join(sub))? {
                let Ok(meta) = fs::metadata(&path) else {
                    continue;
                };
                let size = meta.len();
                let modified = meta.modified().ok();
                total += size;
                files.push((modified, path, size));
            }
        }
        let mut report = EvictReport {
            examined: files.len() as u64,
            retained_bytes: total,
            ..EvictReport::default()
        };
        if total <= max_bytes {
            return Ok(report);
        }
        // Oldest first; files with unreadable mtimes sort first (evicting
        // them is the conservative choice), paths break ties.
        files.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        for (_, path, size) in files {
            if report.retained_bytes <= max_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                report.evicted += 1;
                report.reclaimed_bytes += size;
                report.retained_bytes -= size;
            }
        }
        Ok(report)
    }
}

/// Every record file under a family directory: the 256 shard
/// subdirectories plus any flat-layout leftovers at the top level.
fn record_files(family_root: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut files = Vec::new();
    for entry in fs::read_dir(family_root)? {
        let path = entry?.path();
        if path.is_dir() {
            for entry in fs::read_dir(&path)? {
                files.push(entry?.path());
            }
        } else {
            files.push(path);
        }
    }
    Ok(files)
}

/// How old a `tmp/` staging file must be before [`GridStore::open`] deletes
/// it as the leftover of a crashed writer. Generous on purpose: a live
/// writer stages and renames within milliseconds, so anything this old is
/// dead — and racing a concurrent *fresh* write is impossible below the
/// threshold.
const STALE_STAGING_SECS: u64 = 600;

/// Deletes staging files older than [`STALE_STAGING_SECS`] — a crashed or
/// killed process leaves its `.tmp` files behind (publishes are
/// write-then-rename), and nothing else ever removes them. Best effort:
/// unreadable metadata or a lost delete race is simply skipped.
fn sweep_stale_staging(tmp: &Path) {
    let Ok(entries) = fs::read_dir(tmp) else {
        return;
    };
    for entry in entries.flatten() {
        let stale = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|modified| modified.elapsed().ok())
            .is_some_and(|age| age.as_secs() > STALE_STAGING_SECS);
        if stale {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// The campaign engine talks to the store through this impl: loads fall
/// back to `None` (recompute) and store failures are only counted — the
/// grid store is an accelerator, never a correctness dependency.
impl GridBackend for GridStore {
    fn load_trace(&self, key: &TraceKey) -> Option<PersistedTrace> {
        self.get_trace(key)
    }

    fn store_trace(&self, key: &TraceKey, recorded: &RecordedReference) {
        self.put_trace(key, recorded);
    }

    fn load_cell(&self, key: &CellKey) -> Option<CampaignReport> {
        self.get_cell(key)
    }

    fn store_cell(&self, key: &CellKey, report: &CampaignReport) {
        self.put_cell(key, report);
    }
}
