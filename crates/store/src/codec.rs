//! Encoding and decoding of the two record payloads: reference traces
//! (with machine checkpoints) and completed campaign cells.
//!
//! Each payload opens with its own key, so a load can verify that the file
//! a key hashed to really belongs to that key (file names are 64-bit
//! hashes; a collision must read as a miss, not as somebody else's data).
//!
//! The decoders are total: any byte sequence either decodes to a value
//! whose re-encoding is byte-identical, or fails with
//! [`RecordError::Corrupt`] — there is no input that panics or allocates
//! unboundedly. That totality is what lets the store treat "damaged" and
//! "absent" identically.

use secbranch_armv7m::{ExecResult, Flags, MachineState};
use secbranch_campaign::{
    CampaignReport, CellKey, EscapeRecord, LocationReport, OutcomeCounts, PersistedTrace,
    RecordedReference, ReferenceTrace, TraceCheckpoint, TraceKey,
};
use secbranch_cfi::{CfiMonitor, Violation};

use crate::format::{Reader, RecordError, Writer};

// --- keys -----------------------------------------------------------------

/// The canonical byte encoding of a trace key (also the input of the file
/// name hash).
#[must_use]
pub fn encode_trace_key(key: &TraceKey) -> Vec<u8> {
    let mut w = Writer::new();
    write_trace_key(&mut w, key);
    w.into_bytes()
}

fn write_trace_key(w: &mut Writer, key: &TraceKey) {
    w.str(&key.artifact);
    w.str(&key.entry);
    w.u32s(&key.args);
}

fn read_trace_key(r: &mut Reader<'_>) -> Result<TraceKey, RecordError> {
    let artifact = r.str()?;
    let entry = r.str()?;
    let args = r.u32s()?;
    Ok(TraceKey::new(artifact, entry, &args))
}

/// The canonical byte encoding of a cell key (also the input of the file
/// name hash).
#[must_use]
pub fn encode_cell_key(key: &CellKey) -> Vec<u8> {
    let mut w = Writer::new();
    write_cell_key(&mut w, key);
    w.into_bytes()
}

fn write_cell_key(w: &mut Writer, key: &CellKey) {
    w.str(&key.artifact);
    w.str(&key.model);
    w.str(&key.entry);
    w.u32s(&key.args);
}

fn read_cell_key(r: &mut Reader<'_>) -> Result<CellKey, RecordError> {
    let artifact = r.str()?;
    let model = r.str()?;
    let entry = r.str()?;
    let args = r.u32s()?;
    Ok(CellKey::new(artifact, model, entry, &args))
}

// --- shared leaf types ----------------------------------------------------

fn write_exec_result(w: &mut Writer, result: &ExecResult) {
    w.u32(result.return_value);
    w.u64(result.cycles);
    w.u64(result.instructions);
    w.u32(result.cfi_checks);
    w.u32(result.cfi_violations);
}

fn read_exec_result(r: &mut Reader<'_>) -> Result<ExecResult, RecordError> {
    Ok(ExecResult {
        return_value: r.u32()?,
        cycles: r.u64()?,
        instructions: r.u64()?,
        cfi_checks: r.u32()?,
        cfi_violations: r.u32()?,
    })
}

fn write_counts(w: &mut Writer, counts: &OutcomeCounts) {
    w.u64(counts.masked);
    w.u64(counts.detected);
    w.u64(counts.crashed);
    w.u64(counts.wrong_result_undetected);
}

fn read_counts(r: &mut Reader<'_>) -> Result<OutcomeCounts, RecordError> {
    Ok(OutcomeCounts {
        masked: r.u64()?,
        detected: r.u64()?,
        crashed: r.u64()?,
        wrong_result_undetected: r.u64()?,
    })
}

// --- machine checkpoints --------------------------------------------------

fn write_machine_state(w: &mut Writer, state: &MachineState) {
    for &reg in state.regs() {
        w.u32(reg);
    }
    w.u32(state.flags().to_bits());
    let cfi = state.cfi();
    w.u32(cfi.state());
    w.u32(cfi.checks());
    w.u32(cfi.violations());
    match cfi.first_violation() {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.u32(v.actual_state);
            w.u32(v.expected_state);
            w.u32(v.check_index);
        }
    }
    w.u32(state.segments().len() as u32);
    for (base, bytes) in state.segments() {
        w.u32(*base);
        w.bytes(bytes);
    }
}

fn read_machine_state(r: &mut Reader<'_>) -> Result<MachineState, RecordError> {
    let mut regs = [0u32; 16];
    for reg in &mut regs {
        *reg = r.u32()?;
    }
    let flags = Flags::from_bits(r.u32()?);
    let state = r.u32()?;
    let checks = r.u32()?;
    let violations = r.u32()?;
    let first_violation = match r.u8()? {
        0 => None,
        1 => Some(Violation {
            actual_state: r.u32()?,
            expected_state: r.u32()?,
            check_index: r.u32()?,
        }),
        _ => return Err(RecordError::Corrupt),
    };
    let cfi = CfiMonitor::from_parts(state, checks, violations, first_violation);
    let segment_count = r.u32()? as usize;
    let mut segments = Vec::new();
    for _ in 0..segment_count {
        let base = r.u32()?;
        let bytes = r.byte_vec()?;
        segments.push((base, bytes));
    }
    Ok(MachineState::from_parts(regs, flags, cfi, segments))
}

// --- trace records --------------------------------------------------------

/// Encodes a trace record payload: the key, then the persistable parts of
/// the recording (trace, memory size, checkpoints — never the program; see
/// `secbranch_campaign::persist`).
#[must_use]
pub fn encode_trace_payload(key: &TraceKey, recorded: &RecordedReference) -> Vec<u8> {
    let mut w = Writer::new();
    write_trace_key(&mut w, key);
    write_exec_result(&mut w, &recorded.trace.result);
    w.u32s(&recorded.trace.pcs);
    w.u64s(&recorded.trace.conditional_steps);
    w.u32(recorded.memory_size);
    w.u32(recorded.checkpoints.len() as u32);
    for cp in &recorded.checkpoints {
        w.u64(cp.steps_done);
        w.u32(cp.pc);
        write_machine_state(&mut w, &cp.state);
    }
    w.into_bytes()
}

/// Decodes a trace record payload.
///
/// # Errors
///
/// [`RecordError::Corrupt`] on any malformed byte sequence (truncation,
/// bad UTF-8, trailing garbage).
pub fn decode_trace_payload(payload: &[u8]) -> Result<(TraceKey, PersistedTrace), RecordError> {
    let mut r = Reader::new(payload);
    let key = read_trace_key(&mut r)?;
    let result = read_exec_result(&mut r)?;
    let pcs = r.u32s()?;
    let conditional_steps = r.u64s()?;
    let memory_size = r.u32()?;
    let checkpoint_count = r.u32()? as usize;
    let mut checkpoints = Vec::new();
    for _ in 0..checkpoint_count {
        let steps_done = r.u64()?;
        let pc = r.u32()?;
        let state = read_machine_state(&mut r)?;
        checkpoints.push(TraceCheckpoint {
            steps_done,
            pc,
            state,
        });
    }
    if !r.is_exhausted() {
        return Err(RecordError::Corrupt);
    }
    Ok((
        key,
        PersistedTrace {
            trace: ReferenceTrace {
                result,
                pcs,
                conditional_steps,
            },
            memory_size,
            checkpoints,
        },
    ))
}

// --- cell records ---------------------------------------------------------

fn write_report(w: &mut Writer, report: &CampaignReport) {
    w.str(&report.model);
    w.str(&report.entry);
    w.u32s(&report.args);
    write_exec_result(w, &report.reference);
    write_counts(w, &report.counts);
    w.u32(report.locations.len() as u32);
    for loc in &report.locations {
        w.u64(loc.pc as u64);
        w.str(&loc.location);
        w.str(&loc.instruction);
        write_counts(w, &loc.counts);
    }
    w.u32(report.escapes.len() as u32);
    for esc in &report.escapes {
        w.str(&esc.fault);
        w.u64(esc.step);
        w.u64(esc.pc as u64);
        w.str(&esc.instruction);
        w.u32(esc.return_value);
    }
}

fn read_report(r: &mut Reader<'_>) -> Result<CampaignReport, RecordError> {
    let model = r.str()?;
    let entry = r.str()?;
    let args = r.u32s()?;
    let reference = read_exec_result(r)?;
    let counts = read_counts(r)?;
    let location_count = r.u32()? as usize;
    let mut locations = Vec::new();
    for _ in 0..location_count {
        locations.push(LocationReport {
            pc: r.u64()? as usize,
            location: r.str()?,
            instruction: r.str()?,
            counts: read_counts(r)?,
        });
    }
    let escape_count = r.u32()? as usize;
    let mut escapes = Vec::new();
    for _ in 0..escape_count {
        escapes.push(EscapeRecord {
            fault: r.str()?,
            step: r.u64()?,
            pc: r.u64()? as usize,
            instruction: r.str()?,
            return_value: r.u32()?,
        });
    }
    Ok(CampaignReport {
        model,
        entry,
        args,
        reference,
        counts,
        locations,
        escapes,
    })
}

/// Encodes a campaign report alone (no key) — the per-cell streaming unit
/// of the grid daemon's wire protocol.
#[must_use]
pub fn encode_report(report: &CampaignReport) -> Vec<u8> {
    let mut w = Writer::new();
    write_report(&mut w, report);
    w.into_bytes()
}

/// Decodes a bare campaign report (the inverse of [`encode_report`]).
///
/// # Errors
///
/// [`RecordError::Corrupt`] on any malformed byte sequence.
pub fn decode_report(payload: &[u8]) -> Result<CampaignReport, RecordError> {
    let mut r = Reader::new(payload);
    let report = read_report(&mut r)?;
    if !r.is_exhausted() {
        return Err(RecordError::Corrupt);
    }
    Ok(report)
}

/// Encodes a cell record payload: the key, then the full campaign report.
#[must_use]
pub fn encode_cell_payload(key: &CellKey, report: &CampaignReport) -> Vec<u8> {
    let mut w = Writer::new();
    write_cell_key(&mut w, key);
    write_report(&mut w, report);
    w.into_bytes()
}

/// Decodes a cell record payload.
///
/// # Errors
///
/// [`RecordError::Corrupt`] on any malformed byte sequence.
pub fn decode_cell_payload(payload: &[u8]) -> Result<(CellKey, CampaignReport), RecordError> {
    let mut r = Reader::new(payload);
    let key = read_cell_key(&mut r)?;
    let report = read_report(&mut r)?;
    if !r.is_exhausted() {
        return Err(RecordError::Corrupt);
    }
    Ok((key, report))
}

/// Reads only the artifact fingerprint a record payload belongs to — both
/// record families open with their key, and both keys open with the
/// artifact fingerprint, so garbage collection can classify a record
/// without decoding checkpoints or reports.
///
/// # Errors
///
/// [`RecordError::Corrupt`] when even the leading string is malformed.
pub fn decode_record_artifact(payload: &[u8]) -> Result<String, RecordError> {
    Reader::new(payload).str()
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_armv7m::Machine;

    fn sample_state() -> MachineState {
        let mut m = Machine::new(4096);
        m.set_reg(secbranch_armv7m::Reg::R3, 42);
        m.flags.set_from_cmp(1, 2);
        m.store_word(64, 0xDEAD_BEEF).expect("in range");
        m.cfi.replace(0x1234);
        m.cfi.check(0x9999); // latch a violation
        m.snapshot()
    }

    fn sample_trace_record() -> (TraceKey, RecordedReference) {
        let key = TraceKey::new("artifact-fp", "entry", &[1, 2, 3]);
        let recorded = RecordedReference {
            trace: ReferenceTrace {
                result: ExecResult {
                    return_value: 7,
                    cycles: 100,
                    instructions: 80,
                    cfi_checks: 3,
                    cfi_violations: 0,
                },
                pcs: vec![0, 1, 2, 5, 6],
                conditional_steps: vec![3],
            },
            program: std::sync::Arc::new(
                secbranch_armv7m::ProgramBuilder::new()
                    .assemble()
                    .expect("assembles"),
            ),
            memory_size: 4096,
            checkpoints: vec![TraceCheckpoint {
                steps_done: 0,
                pc: 0,
                state: sample_state(),
            }],
        };
        (key, recorded)
    }

    fn sample_cell_record() -> (CellKey, CampaignReport) {
        let key = CellKey::new(
            "artifact-fp",
            "register-flip(trials=5,seed=0x1)",
            "entry",
            &[9],
        );
        let report = CampaignReport {
            model: "register-flip".to_string(),
            entry: "entry".to_string(),
            args: vec![9],
            reference: ExecResult {
                return_value: 1,
                cycles: 10,
                instructions: 8,
                cfi_checks: 0,
                cfi_violations: 0,
            },
            counts: OutcomeCounts {
                masked: 2,
                detected: 1,
                crashed: 1,
                wrong_result_undetected: 1,
            },
            locations: vec![LocationReport {
                pc: usize::MAX, // the out-of-range sentinel must survive
                location: "?".to_string(),
                instruction: "<out of range>".to_string(),
                counts: OutcomeCounts::default(),
            }],
            escapes: vec![EscapeRecord {
                fault: "skip@step 2".to_string(),
                step: 2,
                pc: 1,
                instruction: "mov r0, r1".to_string(),
                return_value: 3,
            }],
        };
        (key, report)
    }

    #[test]
    fn trace_payloads_round_trip_byte_identically() {
        let (key, recorded) = sample_trace_record();
        let payload = encode_trace_payload(&key, &recorded);
        let (key_back, persisted) = decode_trace_payload(&payload).expect("decodes");
        assert_eq!(key_back, key);
        assert_eq!(persisted.trace.result, recorded.trace.result);
        assert_eq!(persisted.trace.pcs, recorded.trace.pcs);
        assert_eq!(persisted.memory_size, recorded.memory_size);
        assert_eq!(persisted.checkpoints.len(), 1);
        // Byte identity: re-encoding the decoded value reproduces the
        // payload exactly (the strongest round-trip statement available
        // without PartialEq on MachineState).
        let re_encoded = encode_trace_payload(
            &key_back,
            &persisted.into_recorded(recorded.program.clone()),
        );
        assert_eq!(re_encoded, payload);
    }

    #[test]
    fn decoded_checkpoints_restore_bit_identically() {
        let (key, recorded) = sample_trace_record();
        let payload = encode_trace_payload(&key, &recorded);
        let (_, persisted) = decode_trace_payload(&payload).expect("decodes");
        let mut original = Machine::new(4096);
        original.restore(&recorded.checkpoints[0].state);
        let mut loaded = Machine::new(4096);
        loaded.restore(&persisted.checkpoints[0].state);
        assert_eq!(original.reg(secbranch_armv7m::Reg::R3), 42);
        assert_eq!(
            original.read_bytes(0, 4096),
            loaded.read_bytes(0, 4096),
            "restored RAM is identical"
        );
        assert_eq!(original.flags, loaded.flags);
        assert_eq!(original.cfi, loaded.cfi);
        for r in secbranch_armv7m::Reg::ALL {
            assert_eq!(original.reg(r), loaded.reg(r));
        }
    }

    #[test]
    fn cell_payloads_round_trip_to_equal_reports() {
        let (key, report) = sample_cell_record();
        let payload = encode_cell_payload(&key, &report);
        let (key_back, report_back) = decode_cell_payload(&payload).expect("decodes");
        assert_eq!(key_back, key);
        assert_eq!(report_back, report);
        assert_eq!(
            report_back.to_json(),
            report.to_json(),
            "JSON byte identity"
        );
        assert_eq!(encode_cell_payload(&key_back, &report_back), payload);
    }

    #[test]
    fn truncated_and_garbled_payloads_fail_cleanly() {
        let (key, report) = sample_cell_record();
        let payload = encode_cell_payload(&key, &report);
        for cut in [0, 1, payload.len() / 2, payload.len() - 1] {
            assert_eq!(
                decode_cell_payload(&payload[..cut]),
                Err(RecordError::Corrupt),
                "cut at {cut}"
            );
        }
        let mut extended = payload.clone();
        extended.push(0);
        assert_eq!(
            decode_cell_payload(&extended),
            Err(RecordError::Corrupt),
            "trailing garbage is rejected"
        );

        let (key, recorded) = sample_trace_record();
        let payload = encode_trace_payload(&key, &recorded);
        for cut in [0, 10, payload.len() - 1] {
            assert!(
                matches!(
                    decode_trace_payload(&payload[..cut]),
                    Err(RecordError::Corrupt)
                ),
                "cut at {cut}"
            );
        }
    }
}
