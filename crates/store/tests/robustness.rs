//! Robustness acceptance of the grid store: records survive the round trip
//! byte-identically, and every kind of damage — tampered bytes, truncated
//! files, foreign format versions — degrades to a clean miss or a clean
//! error, never to wrong data.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use secbranch_armv7m::{Cond, Instr, Operand2, ProgramBuilder, Reg, Simulator, Target};
use secbranch_campaign::{
    record_reference, BranchInversion, CampaignRunner, CellKey, FaultModel, TraceKey,
};
use secbranch_store::{GridStore, StoreError};

/// A unique, self-cleaning store directory under the system temp dir (the
/// offline workspace has no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "secbranch-store-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        fs::create_dir_all(&dir).expect("temp dir creatable");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// `max(a, b)` — one conditional branch; enough surface for real traces,
/// checkpoints and campaign reports.
fn max_simulator() -> Simulator {
    let mut p = ProgramBuilder::new();
    p.label("max");
    p.push(Instr::Cmp {
        rn: Reg::R0,
        op2: Operand2::Reg(Reg::R1),
    });
    p.push(Instr::BCond {
        cond: Cond::Hs,
        target: Target::label("done"),
    });
    p.push(Instr::Mov {
        rd: Reg::R0,
        rm: Reg::R1,
    });
    p.label("done");
    p.push(Instr::Bx { rm: Reg::Lr });
    Simulator::new(p.assemble().expect("assembles"), 4096)
}

/// Every record file under a family directory — shard subdirectories plus
/// any flat-layout files at the top level.
fn record_files(dir: &std::path::Path, family: &str) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir.join(family)).expect("family dir exists") {
        let path = entry.expect("entry").path();
        if path.is_dir() {
            for entry in fs::read_dir(&path).expect("shard dir readable") {
                files.push(entry.expect("entry").path());
            }
        } else {
            files.push(path);
        }
    }
    files
}

fn sole_record_file(dir: &std::path::Path, family: &str) -> PathBuf {
    let mut files = record_files(dir, family);
    assert_eq!(files.len(), 1, "exactly one {family} record expected");
    files.pop().expect("one file")
}

#[test]
fn trace_and_cell_records_round_trip_byte_identically_through_disk() {
    let dir = TempDir::new("roundtrip");
    let sim = max_simulator();
    let recorded = record_reference(&sim, "max", &[7, 3], 100).expect("records");
    let trace_key = TraceKey::new("art-fp", "max", &[7, 3]);
    let report = CampaignRunner::new()
        .with_threads(1)
        .run(&sim, "max", &[7, 3], 100, &BranchInversion)
        .expect("campaign runs");
    let cell_key = CellKey::new("art-fp", BranchInversion.fingerprint(), "max", &[7, 3]);

    let store = GridStore::open(dir.path()).expect("opens");
    store.put_trace(&trace_key, &recorded);
    store.put_cell(&cell_key, &report);

    // A *different* store instance (fresh process simulation) reads back.
    let reopened = GridStore::open(dir.path()).expect("reopens");
    let persisted = reopened.get_trace(&trace_key).expect("trace loads");
    assert_eq!(persisted.trace.result, recorded.trace.result);
    assert_eq!(persisted.trace.pcs, recorded.trace.pcs);
    assert_eq!(
        persisted.trace.conditional_steps,
        recorded.trace.conditional_steps
    );
    assert_eq!(persisted.memory_size, recorded.memory_size);
    assert_eq!(persisted.checkpoints.len(), recorded.checkpoints.len());

    let loaded = reopened.get_cell(&cell_key).expect("cell loads");
    assert_eq!(loaded, report, "structured equality");
    assert_eq!(loaded.to_json(), report.to_json(), "byte-identical JSON");

    // Unknown keys are clean misses.
    assert!(reopened
        .get_cell(&CellKey::new("other", "branch-invert", "max", &[7, 3]))
        .is_none());
    assert_eq!(reopened.stats().cell_misses, 1);
}

#[test]
fn tampered_records_are_dropped_not_served() {
    let dir = TempDir::new("tamper");
    let sim = max_simulator();
    let report = CampaignRunner::new()
        .with_threads(1)
        .run(&sim, "max", &[9, 2], 100, &BranchInversion)
        .expect("campaign runs");
    let key = CellKey::new("art-fp", "branch-invert", "max", &[9, 2]);
    let store = GridStore::open(dir.path()).expect("opens");
    store.put_cell(&key, &report);

    // Flip one payload byte: the CRC must catch it.
    let file = sole_record_file(dir.path(), "cells");
    let mut bytes = fs::read(&file).expect("readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(&file, &bytes).expect("writable");

    let reopened = GridStore::open(dir.path()).expect("reopens");
    assert!(reopened.get_cell(&key).is_none(), "tampered record dropped");
    assert_eq!(reopened.stats().corrupt_dropped, 1);
    let scan = reopened.scan().expect("scans");
    assert_eq!(scan.corrupt_records, 1);
    assert_eq!(scan.cell_records, 0);

    // The store recovers by rewriting the record.
    reopened.put_cell(&key, &report);
    assert_eq!(reopened.get_cell(&key).expect("restored"), report);
}

#[test]
fn truncated_records_are_dropped_and_rewritable() {
    let dir = TempDir::new("truncate");
    let sim = max_simulator();
    let recorded = record_reference(&sim, "max", &[5, 5], 100).expect("records");
    let key = TraceKey::new("art-fp", "max", &[5, 5]);
    let store = GridStore::open(dir.path()).expect("opens");
    store.put_trace(&key, &recorded);

    let file = sole_record_file(dir.path(), "traces");
    let bytes = fs::read(&file).expect("readable");
    for keep in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
        fs::write(&file, &bytes[..keep]).expect("writable");
        let reopened = GridStore::open(dir.path()).expect("reopens");
        assert!(
            reopened.get_trace(&key).is_none(),
            "truncation to {keep} bytes must read as a miss"
        );
        assert_eq!(reopened.stats().corrupt_dropped, 1);
    }

    // An overwrite heals the store.
    store.put_trace(&key, &recorded);
    assert!(store.get_trace(&key).is_some());
}

#[test]
fn version_mismatch_is_rejected_cleanly_at_open() {
    let dir = TempDir::new("version");
    GridStore::open(dir.path()).expect("initialises the manifest");

    // Bump the manifest version: a future-format directory.
    let manifest = dir.path().join("MANIFEST");
    let mut bytes = fs::read(&manifest).expect("readable");
    let len = bytes.len();
    bytes[len - 4..].copy_from_slice(&(GridStore::FORMAT_VERSION + 1).to_le_bytes());
    fs::write(&manifest, &bytes).expect("writable");

    match GridStore::open(dir.path()) {
        Err(StoreError::VersionMismatch { found, expected }) => {
            assert_eq!(found, GridStore::FORMAT_VERSION + 1);
            assert_eq!(expected, GridStore::FORMAT_VERSION);
        }
        other => panic!("expected a version mismatch, got {other:?}"),
    }

    // A manifest that is not a manifest at all is also rejected, not read.
    fs::write(&manifest, b"garbage").expect("writable");
    assert!(matches!(
        GridStore::open(dir.path()),
        Err(StoreError::CorruptManifest)
    ));
}

#[test]
fn open_sweeps_stale_staging_files_but_not_fresh_ones() {
    let dir = TempDir::new("staging");
    GridStore::open(dir.path()).expect("initialises");
    let fresh = dir.path().join("tmp").join("123.0.tmp");
    let stale = dir.path().join("tmp").join("456.0.tmp");
    fs::write(&fresh, b"in flight").expect("writable");
    fs::write(&stale, b"left by a crashed writer").expect("writable");
    // Backdate the stale file past the sweep threshold (best effort: if
    // this host cannot set mtimes the assertion below is skipped).
    let backdated = std::process::Command::new("touch")
        .args(["-d", "2 days ago"])
        .arg(&stale)
        .status()
        .map(|s| s.success())
        .unwrap_or(false);

    GridStore::open(dir.path()).expect("reopens");
    assert!(
        fresh.exists(),
        "a fresh staging file may belong to a live writer and must survive"
    );
    if backdated {
        assert!(!stale.exists(), "stale staging files are swept at open");
    }
}

#[test]
fn records_land_in_their_hash_shard() {
    let dir = TempDir::new("sharded");
    let sim = max_simulator();
    let report = CampaignRunner::new()
        .with_threads(1)
        .run(&sim, "max", &[6, 2], 100, &BranchInversion)
        .expect("campaign runs");
    let key = CellKey::new("art-fp", "branch-invert", "max", &[6, 2]);
    let store = GridStore::open(dir.path()).expect("opens");
    store.put_cell(&key, &report);

    let file = sole_record_file(dir.path(), "cells");
    let shard = file
        .parent()
        .and_then(|p| p.file_name())
        .and_then(|n| n.to_str())
        .expect("shard dir name")
        .to_string();
    let stem = file
        .file_stem()
        .and_then(|n| n.to_str())
        .expect("record file name");
    assert_eq!(
        shard,
        stem[..2].to_string(),
        "shard dir is the first byte of the key hash"
    );
    assert_eq!(store.stats().migrated, 0, "a fresh store migrates nothing");
}

#[test]
fn flat_layout_records_are_migrated_on_read() {
    let dir = TempDir::new("migrate");
    let sim = max_simulator();
    let report = CampaignRunner::new()
        .with_threads(1)
        .run(&sim, "max", &[4, 9], 100, &BranchInversion)
        .expect("campaign runs");
    let key = CellKey::new("art-fp", "branch-invert", "max", &[4, 9]);
    let recorded = record_reference(&sim, "max", &[4, 9], 100).expect("records");
    let trace_key = TraceKey::new("art-fp", "max", &[4, 9]);

    // Write sharded records, then flatten them back into the PR 5 layout.
    let store = GridStore::open(dir.path()).expect("opens");
    store.put_cell(&key, &report);
    store.put_trace(&trace_key, &recorded);
    for family in ["cells", "traces"] {
        let sharded = sole_record_file(dir.path(), family);
        let flat = dir
            .path()
            .join(family)
            .join(sharded.file_name().expect("file name"));
        fs::rename(&sharded, &flat).expect("flattens");
        fs::remove_dir(sharded.parent().expect("shard dir")).expect("removes empty shard");
    }

    // A fresh store serves both records and moves them into their shards.
    let reopened = GridStore::open(dir.path()).expect("reopens");
    assert_eq!(
        reopened.get_cell(&key).expect("served via migration"),
        report
    );
    assert!(reopened.get_trace(&trace_key).is_some());
    assert_eq!(reopened.stats().migrated, 2);
    for family in ["cells", "traces"] {
        let file = sole_record_file(dir.path(), family);
        assert!(
            file.parent() != Some(&dir.path().join(family)),
            "{family} record now lives in a shard subdirectory"
        );
    }
    // The migration is one-time: a second read finds the sharded record.
    assert_eq!(reopened.get_cell(&key).expect("still served"), report);
    assert_eq!(reopened.stats().migrated, 2);
    let scan = reopened.scan().expect("scans");
    assert_eq!((scan.trace_records, scan.cell_records), (1, 1));
}

#[test]
fn compaction_drops_dead_artifacts_and_keeps_live_ones() {
    let dir = TempDir::new("compact");
    let sim = max_simulator();
    let report = CampaignRunner::new()
        .with_threads(1)
        .run(&sim, "max", &[3, 8], 100, &BranchInversion)
        .expect("campaign runs");
    let recorded = record_reference(&sim, "max", &[3, 8], 100).expect("records");

    let store = GridStore::open(dir.path()).expect("opens");
    for artifact in ["live-fp", "dead-fp"] {
        store.put_trace(&TraceKey::new(artifact, "max", &[3, 8]), &recorded);
        store.put_cell(
            &CellKey::new(artifact, "branch-invert", "max", &[3, 8]),
            &report,
        );
    }
    // One unclassifiable file rides along and must be collected too.
    fs::write(dir.path().join("cells").join("junk.rec"), b"not a record").expect("writable");

    let live: std::collections::HashSet<String> = ["live-fp".to_string()].into_iter().collect();
    let compacted = store.compact(&live).expect("compacts");
    assert_eq!(compacted.retained, 2);
    assert_eq!(compacted.removed_traces, 1);
    assert_eq!(compacted.removed_cells, 1);
    assert_eq!(compacted.removed_corrupt, 1);
    assert_eq!(compacted.removed(), 3);
    assert!(compacted.reclaimed_bytes > 0);

    // The live records still load; the dead ones are clean misses.
    assert!(store
        .get_trace(&TraceKey::new("live-fp", "max", &[3, 8]))
        .is_some());
    assert!(store
        .get_cell(&CellKey::new("live-fp", "branch-invert", "max", &[3, 8]))
        .is_some());
    assert!(store
        .get_trace(&TraceKey::new("dead-fp", "max", &[3, 8]))
        .is_none());
    let scan = store.scan().expect("scans");
    assert_eq!((scan.trace_records, scan.cell_records), (1, 1));
    assert_eq!(scan.corrupt_records, 0);
}

#[test]
fn concurrent_openers_see_consistent_snapshots() {
    let dir = TempDir::new("concurrent");
    let sim = max_simulator();
    let report = CampaignRunner::new()
        .with_threads(1)
        .run(&sim, "max", &[8, 1], 100, &BranchInversion)
        .expect("campaign runs");

    // Two stores over one directory, used from several threads at once:
    // every load observes either nothing or a complete, intact record.
    let a = Arc::new(GridStore::open(dir.path()).expect("opens"));
    let b = Arc::new(GridStore::open(dir.path()).expect("opens"));
    let keys: Vec<CellKey> = (0..16)
        .map(|i| CellKey::new("art-fp", "branch-invert", "max", &[8, 1, i]))
        .collect();

    std::thread::scope(|scope| {
        for writer in [&a, &b] {
            let writer = Arc::clone(writer);
            let keys = keys.clone();
            let report = report.clone();
            scope.spawn(move || {
                for key in &keys {
                    writer.put_cell(key, &report);
                }
            });
        }
        for reader in [&a, &b] {
            let reader = Arc::clone(reader);
            let keys = keys.clone();
            let report = report.clone();
            scope.spawn(move || {
                for _ in 0..4 {
                    for key in &keys {
                        if let Some(loaded) = reader.get_cell(key) {
                            assert_eq!(loaded, report, "no torn or foreign record is ever served");
                        }
                    }
                }
            });
        }
    });

    // After the dust settles: both handles agree with the disk and nothing
    // was flagged corrupt.
    for key in &keys {
        assert_eq!(a.get_cell(key).expect("present"), report);
        assert_eq!(b.get_cell(key).expect("present"), report);
    }
    assert_eq!(a.stats().corrupt_dropped + b.stats().corrupt_dropped, 0);
    let scan = a.scan().expect("scans");
    assert_eq!(scan.cell_records, 16);
    assert_eq!(scan.corrupt_records, 0);
}

#[test]
fn eviction_trims_oldest_records_down_to_the_byte_budget() {
    let dir = TempDir::new("evict");
    let sim = max_simulator();
    let report = CampaignRunner::new()
        .with_threads(1)
        .run(&sim, "max", &[3, 8], 100, &BranchInversion)
        .expect("campaign runs");

    let store = GridStore::open(dir.path()).expect("opens");
    // Eight cell records, written oldest-to-newest with distinct mtimes
    // (filetime granularity can be coarse, so space them explicitly).
    let mut keys = Vec::new();
    for i in 0..8u32 {
        let key = CellKey::new(format!("fp-{i}"), "branch-invert", "max", &[3, 8]);
        store.put_cell(&key, &report);
        keys.push(key);
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let scan = store.scan().expect("scans");
    assert_eq!(scan.cell_records, 8);
    let total = scan.total_bytes;
    let per_record = total / 8;

    // A budget above the current footprint evicts nothing.
    let idle = store.evict_to(total + 1).expect("evicts");
    assert_eq!(idle.evicted, 0);
    assert_eq!(idle.examined, 8);
    assert_eq!(idle.retained_bytes, total);

    // A budget of roughly half evicts the OLDEST records first.
    let evicted = store.evict_to(total / 2).expect("evicts");
    assert!(evicted.evicted >= 4, "evicted {} records", evicted.evicted);
    assert!(evicted.retained_bytes <= total / 2);
    assert_eq!(evicted.reclaimed_bytes + evicted.retained_bytes, total);
    assert!(evicted.reclaimed_bytes >= evicted.evicted * (per_record - 64));
    // LRU order: the newest records survive, the oldest are gone.
    for (i, key) in keys.iter().enumerate() {
        let present = store.get_cell(key).is_some();
        if i >= 8 - (8 - evicted.evicted as usize) {
            assert!(present, "record {i} (recent) must survive");
        }
    }
    assert!(
        store.get_cell(&keys[0]).is_none(),
        "oldest record is evicted"
    );
    assert!(store.get_cell(&keys[7]).is_some(), "newest record survives");

    // Everything still on disk is intact.
    let rescan = store.scan().expect("scans");
    assert_eq!(rescan.corrupt_records, 0);
    assert_eq!(rescan.cell_records, 8 - evicted.evicted);
}
