//! Instruction-level fault injection on the ARMv7-M simulator.
//!
//! The sweeps here are thin adapters over the general campaign engine in
//! `secbranch-campaign` (which adds double faults, memory flips, branch
//! inversion, multi-threaded execution and per-location attribution); they
//! keep the historical single-model API — and its exact numbers — for
//! existing callers.

use secbranch_armv7m::{ExecResult, Simulator};
use secbranch_campaign::{CampaignRunner, InstructionSkip, RegisterBitFlip};

// The outcome classification lives in the campaign engine; re-exported here
// so `secbranch_fault::{Outcome, OutcomeCounts}` keep working. The trace
// store is re-exported for the `run_cached` adapters, which let legacy
// sweep callers join the matrix executor's reference-trace memoisation.
pub use secbranch_campaign::{Outcome, OutcomeCounts, TraceKey, TraceStore};

/// Report of a sweep: the reference execution plus the outcome counters.
///
/// The full [`secbranch_campaign::CampaignReport`] additionally attributes
/// outcomes to program locations; this type keeps the historical aggregate
/// shape (and flattens from a campaign report via `From`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepReport {
    /// The fault-free reference result.
    pub reference: ExecResult,
    /// The outcome counters.
    pub counts: OutcomeCounts,
}

impl From<&secbranch_campaign::CampaignReport> for SweepReport {
    /// The single home of the report flattening: keeps the aggregate
    /// quantities, drops the per-location attribution.
    fn from(report: &secbranch_campaign::CampaignReport) -> Self {
        SweepReport {
            reference: report.reference,
            counts: report.counts,
        }
    }
}

/// Runs one fault model through the engine on clones of `simulator`
/// (preserving any pre-run machine tampering) and flattens the report.
fn sweep_with(
    simulator: &Simulator,
    entry: &str,
    args: &[u32],
    max_steps: u64,
    model: &dyn secbranch_campaign::FaultModel,
) -> Result<SweepReport, secbranch_armv7m::SimError> {
    let report = CampaignRunner::new().run(simulator, entry, args, max_steps, model)?;
    Ok(SweepReport::from(&report))
}

/// Exhaustive single-instruction-skip sweep: every dynamic instruction of the
/// reference execution is skipped once (the instruction-skip fault model of
/// Section II). Adapter over [`secbranch_campaign::InstructionSkip`].
#[derive(Debug, Clone)]
pub struct InstructionSkipSweep {
    entry: String,
    args: Vec<u32>,
    max_steps: u64,
}

impl InstructionSkipSweep {
    /// Creates a sweep for calling `entry(args)`.
    #[must_use]
    pub fn new(entry: impl Into<String>, args: &[u32], max_steps: u64) -> Self {
        InstructionSkipSweep {
            entry: entry.into(),
            args: args.to_vec(),
            max_steps,
        }
    }

    /// Runs the sweep on fresh clones of `simulator` per injection.
    ///
    /// # Errors
    ///
    /// Returns the simulator error of the fault-free reference run if that
    /// fails (individual faulted runs are classified, not propagated).
    pub fn run(&self, simulator: &Simulator) -> Result<SweepReport, secbranch_armv7m::SimError> {
        sweep_with(
            simulator,
            &self.entry,
            &self.args,
            self.max_steps,
            &InstructionSkip,
        )
    }

    /// Like [`InstructionSkipSweep::run`], resolving the reference execution
    /// through a caller-owned [`TraceStore`]: repeated sweeps (or other
    /// campaigns on the same target) record the reference trace once. The
    /// caller provides the key and owns its discrimination contract — see
    /// the trace-store docs in `secbranch-campaign`.
    ///
    /// # Errors
    ///
    /// Returns the simulator error of the fault-free reference run if that
    /// fails.
    pub fn run_cached(
        &self,
        simulator: &Simulator,
        store: &TraceStore,
        key: &TraceKey,
    ) -> Result<SweepReport, secbranch_armv7m::SimError> {
        let recorded = store.reference(key, simulator, &self.entry, &self.args, self.max_steps)?;
        let report = CampaignRunner::new().run_recorded(
            simulator,
            &self.entry,
            &self.args,
            self.max_steps,
            &InstructionSkip,
            &recorded,
        );
        Ok(SweepReport::from(&report))
    }
}

/// Monte-Carlo register-bit-flip campaign: at a random dynamic step, a random
/// bit of a random low register is flipped. Adapter over
/// [`secbranch_campaign::RegisterBitFlip`]; the *first* run of a given seed
/// reproduces the historical numbers exactly (same sampling order).
#[derive(Debug, Clone)]
pub struct RegisterBitFlipCampaign {
    entry: String,
    args: Vec<u32>,
    max_steps: u64,
    seed: u64,
}

impl RegisterBitFlipCampaign {
    /// Creates a campaign with a deterministic seed.
    #[must_use]
    pub fn new(entry: impl Into<String>, args: &[u32], max_steps: u64, seed: u64) -> Self {
        RegisterBitFlipCampaign {
            entry: entry.into(),
            args: args.to_vec(),
            max_steps,
            seed,
        }
    }

    /// Runs `trials` injections on fresh clones of `simulator`.
    ///
    /// The first run of a fresh campaign reproduces the historical
    /// (persistent-RNG) implementation bit for bit. Each successful run with
    /// a nonzero trial count then advances the campaign's seed, so repeated
    /// runs keep drawing *fresh* deterministic schedules — but, unlike the
    /// historical implementation, the follow-up schedules are derived from
    /// the seed alone rather than from the RNG state the previous trials
    /// left behind.
    ///
    /// # Errors
    ///
    /// Returns the simulator error of the fault-free reference run if that
    /// fails.
    pub fn run(
        &mut self,
        simulator: &Simulator,
        trials: u64,
    ) -> Result<SweepReport, secbranch_armv7m::SimError> {
        let model = RegisterBitFlip {
            trials,
            seed: self.seed,
        };
        let report = sweep_with(simulator, &self.entry, &self.args, self.max_steps, &model)?;
        if trials > 0 {
            // SplitMix64 increment: a deterministic next-seed step, taken
            // only when injections actually ran.
            self.seed = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_codegen::{compile, CfiLevel, CodegenOptions};
    use secbranch_passes::{standard_protection_pipeline, AnCoderConfig};
    use secbranch_programs::integer_compare_module;

    fn protected_simulator() -> Simulator {
        let mut module = integer_compare_module();
        standard_protection_pipeline(AnCoderConfig::default())
            .run(&mut module)
            .expect("pipeline");
        compile(
            &module,
            &CodegenOptions {
                cfi: CfiLevel::Full,
                ..CodegenOptions::default()
            },
        )
        .expect("compiles")
        .into_simulator(64 * 1024)
    }

    fn unprotected_simulator() -> Simulator {
        let module = integer_compare_module();
        compile(
            &module,
            &CodegenOptions {
                cfi: CfiLevel::None,
                ..CodegenOptions::default()
            },
        )
        .expect("compiles")
        .into_simulator(64 * 1024)
    }

    #[test]
    fn skip_sweep_shows_the_protected_variant_is_much_harder_to_attack() {
        // The protected variant covers the branch decision; two classes of
        // single-skip faults remain outside its scope and keep the success
        // rate above zero: (a) faults on the plain input data before it
        // enters the encoded domain (covered by the paper's full AN-code
        // *data* protection, which this pipeline applies only at the
        // comparison boundary) and (b) skipped instructions inside the
        // encoded-compare sequence itself (the paper assumes an
        // *instruction-granular* CFI scheme for those; ours is
        // block-granular). The protected variant must still be strictly
        // harder to attack than the unprotected one and must detect a
        // substantial share of injections.
        let sweep = InstructionSkipSweep::new("integer_compare", &[1234, 4321], 1_000_000);
        let protected = sweep.run(&protected_simulator()).expect("runs");
        let unprotected = sweep.run(&unprotected_simulator()).expect("runs");
        assert_eq!(protected.reference.return_value, 0);
        assert!(protected.counts.detected > 0);
        assert!(
            protected.counts.attack_success_rate() < unprotected.counts.attack_success_rate(),
            "protected {:?} vs unprotected {:?}",
            protected.counts,
            unprotected.counts
        );
    }

    #[test]
    fn unprotected_variant_is_vulnerable_to_instruction_skips() {
        let sweep = InstructionSkipSweep::new("integer_compare", &[1234, 4321], 100_000);
        let unprotected = sweep.run(&unprotected_simulator()).expect("runs");
        assert_eq!(unprotected.reference.return_value, 0);
        assert!(
            unprotected.counts.wrong_result_undetected > 0,
            "skipping the branch of the unprotected variant must flip the decision"
        );
    }

    #[test]
    fn register_flip_campaign_classifies_outcomes() {
        let mut campaign =
            RegisterBitFlipCampaign::new("integer_compare", &[77, 77], 1_000_000, 0xABCDEF);
        let report = campaign.run(&protected_simulator(), 200).expect("runs");
        assert_eq!(report.counts.total(), 200);
        assert!(report.counts.detected + report.counts.crashed > 0);
        assert!(
            report.counts.attack_success_rate() < 0.10,
            "single register bit flips rarely defeat the protected branch: {:?}",
            report.counts
        );
    }

    #[test]
    fn repeated_runs_on_one_campaign_advance_the_schedule() {
        let mut campaign =
            RegisterBitFlipCampaign::new("integer_compare", &[12, 13], 1_000_000, 42);
        let sim = unprotected_simulator();
        let first = campaign.run(&sim, 100).expect("runs");
        let second = campaign.run(&sim, 100).expect("runs");
        assert_eq!(first.counts.total(), 100);
        assert_eq!(second.counts.total(), 100);
        // A fresh campaign with the same seed reproduces the first run.
        let mut fresh = RegisterBitFlipCampaign::new("integer_compare", &[12, 13], 1_000_000, 42);
        assert_eq!(fresh.run(&sim, 100).expect("runs").counts, first.counts);
    }

    #[test]
    fn cached_sweep_matches_and_memoises() {
        let sim = protected_simulator();
        let sweep = InstructionSkipSweep::new("integer_compare", &[1234, 4321], 1_000_000);
        let plain = sweep.run(&sim).expect("runs");

        let store = TraceStore::new();
        let key = TraceKey::new(
            "protected-integer-compare",
            "integer_compare",
            &[1234, 4321],
        );
        let first = sweep.run_cached(&sim, &store, &key).expect("runs");
        let second = sweep.run_cached(&sim, &store, &key).expect("runs");
        assert_eq!(first, plain, "the cached path reports the same numbers");
        assert_eq!(second, plain);
        assert_eq!(
            (store.hits(), store.misses()),
            (1, 1),
            "one recording serves both sweeps"
        );
    }

    #[test]
    fn outcome_counts_arithmetic() {
        let mut counts = OutcomeCounts::default();
        counts.record(Outcome::Masked);
        counts.record(Outcome::Detected);
        counts.record(Outcome::Crashed);
        counts.record(Outcome::WrongResultUndetected);
        assert_eq!(counts.total(), 4);
        assert!((counts.attack_success_rate() - 0.25).abs() < 1e-12);
    }
}
