//! Instruction-level fault injection on the ARMv7-M simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secbranch_armv7m::{ExecResult, FaultAction, FaultHook, Instr, Machine, Reg, Simulator};

/// Classification of a faulted run against the fault-free reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Same return value as the reference, no CFI violation — the fault was
    /// masked.
    Masked,
    /// The CFI unit flagged a violation (regardless of the produced result):
    /// the fault is detected.
    Detected,
    /// The run crashed (memory fault, runaway program, step limit), which a
    /// deployed system also treats as detection.
    Crashed,
    /// The run produced a *different* result than the reference without any
    /// violation — a successful attack.
    WrongResultUndetected,
}

/// Outcome counters of a fault-injection sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Masked faults.
    pub masked: u64,
    /// Faults detected by the CFI/AN-code machinery.
    pub detected: u64,
    /// Faults that crashed the run.
    pub crashed: u64,
    /// Undetected wrong results (successful attacks).
    pub wrong_result_undetected: u64,
}

impl OutcomeCounts {
    /// Total number of injections.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.masked + self.detected + self.crashed + self.wrong_result_undetected
    }

    /// Fraction of injections that succeeded as attacks.
    #[must_use]
    pub fn attack_success_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.wrong_result_undetected as f64 / self.total() as f64
        }
    }

    fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Masked => self.masked += 1,
            Outcome::Detected => self.detected += 1,
            Outcome::Crashed => self.crashed += 1,
            Outcome::WrongResultUndetected => self.wrong_result_undetected += 1,
        }
    }
}

/// Report of a sweep: the reference execution plus the outcome counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepReport {
    /// The fault-free reference result.
    pub reference: ExecResult,
    /// The outcome counters.
    pub counts: OutcomeCounts,
}

struct SkipAt {
    step: u64,
}

impl FaultHook for SkipAt {
    fn before_execute(&mut self, step: u64, _: usize, _: &Instr, _: &mut Machine) -> FaultAction {
        if step == self.step {
            FaultAction::Skip
        } else {
            FaultAction::Continue
        }
    }
}

struct FlipRegAt {
    step: u64,
    reg: Reg,
    bit: u32,
}

impl FaultHook for FlipRegAt {
    fn before_execute(
        &mut self,
        step: u64,
        _: usize,
        _: &Instr,
        machine: &mut Machine,
    ) -> FaultAction {
        if step == self.step {
            machine.flip_register_bit(self.reg, self.bit);
        }
        FaultAction::Continue
    }
}

fn classify(
    reference: &ExecResult,
    result: Result<ExecResult, secbranch_armv7m::SimError>,
) -> Outcome {
    match result {
        Err(_) => Outcome::Crashed,
        Ok(r) => {
            if r.cfi_violations > 0 {
                Outcome::Detected
            } else if r.return_value == reference.return_value {
                Outcome::Masked
            } else {
                Outcome::WrongResultUndetected
            }
        }
    }
}

/// Exhaustive single-instruction-skip sweep: every dynamic instruction of the
/// reference execution is skipped once (the instruction-skip fault model of
/// Section II).
#[derive(Debug, Clone)]
pub struct InstructionSkipSweep {
    entry: String,
    args: Vec<u32>,
    max_steps: u64,
}

impl InstructionSkipSweep {
    /// Creates a sweep for calling `entry(args)`.
    #[must_use]
    pub fn new(entry: impl Into<String>, args: &[u32], max_steps: u64) -> Self {
        InstructionSkipSweep {
            entry: entry.into(),
            args: args.to_vec(),
            max_steps,
        }
    }

    /// Runs the sweep on a fresh clone of `simulator` per injection.
    ///
    /// # Errors
    ///
    /// Returns the simulator error of the fault-free reference run if that
    /// fails (individual faulted runs are classified, not propagated).
    pub fn run(&self, simulator: &Simulator) -> Result<SweepReport, secbranch_armv7m::SimError> {
        let mut reference_sim = simulator.clone();
        let reference = reference_sim.call(&self.entry, &self.args, self.max_steps)?;
        let mut counts = OutcomeCounts::default();
        for step in 1..=reference.instructions {
            let mut sim = simulator.clone();
            let result = sim.call_with_faults(
                &self.entry,
                &self.args,
                self.max_steps,
                &mut SkipAt { step },
            );
            counts.record(classify(&reference, result));
        }
        Ok(SweepReport { reference, counts })
    }
}

/// Monte-Carlo register-bit-flip campaign: at a random dynamic step, a random
/// bit of a random low register is flipped.
#[derive(Debug, Clone)]
pub struct RegisterBitFlipCampaign {
    entry: String,
    args: Vec<u32>,
    max_steps: u64,
    rng: StdRng,
}

impl RegisterBitFlipCampaign {
    /// Creates a campaign with a deterministic seed.
    #[must_use]
    pub fn new(entry: impl Into<String>, args: &[u32], max_steps: u64, seed: u64) -> Self {
        RegisterBitFlipCampaign {
            entry: entry.into(),
            args: args.to_vec(),
            max_steps,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs `trials` injections on fresh clones of `simulator`.
    ///
    /// # Errors
    ///
    /// Returns the simulator error of the fault-free reference run if that
    /// fails.
    pub fn run(
        &mut self,
        simulator: &Simulator,
        trials: u64,
    ) -> Result<SweepReport, secbranch_armv7m::SimError> {
        let mut reference_sim = simulator.clone();
        let reference = reference_sim.call(&self.entry, &self.args, self.max_steps)?;
        let registers = [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R12];
        let mut counts = OutcomeCounts::default();
        for _ in 0..trials {
            let step = self.rng.gen_range(1..=reference.instructions);
            let reg = registers[self.rng.gen_range(0..registers.len())];
            let bit = self.rng.gen_range(0..32);
            let mut sim = simulator.clone();
            let result = sim.call_with_faults(
                &self.entry,
                &self.args,
                self.max_steps,
                &mut FlipRegAt { step, reg, bit },
            );
            counts.record(classify(&reference, result));
        }
        Ok(SweepReport { reference, counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_codegen::{compile, CfiLevel, CodegenOptions};
    use secbranch_passes::{standard_protection_pipeline, AnCoderConfig};
    use secbranch_programs::integer_compare_module;

    fn protected_simulator() -> Simulator {
        let mut module = integer_compare_module();
        standard_protection_pipeline(AnCoderConfig::default())
            .run(&mut module)
            .expect("pipeline");
        compile(
            &module,
            &CodegenOptions {
                cfi: CfiLevel::Full,
            },
        )
        .expect("compiles")
        .into_simulator(64 * 1024)
    }

    fn unprotected_simulator() -> Simulator {
        let module = integer_compare_module();
        compile(
            &module,
            &CodegenOptions {
                cfi: CfiLevel::None,
            },
        )
        .expect("compiles")
        .into_simulator(64 * 1024)
    }

    #[test]
    fn skip_sweep_shows_the_protected_variant_is_much_harder_to_attack() {
        // The protected variant covers the branch decision; two classes of
        // single-skip faults remain outside its scope and keep the success
        // rate above zero: (a) faults on the plain input data before it
        // enters the encoded domain (covered by the paper's full AN-code
        // *data* protection, which this pipeline applies only at the
        // comparison boundary) and (b) skipped instructions inside the
        // encoded-compare sequence itself (the paper assumes an
        // *instruction-granular* CFI scheme for those; ours is
        // block-granular). The protected variant must still be strictly
        // harder to attack than the unprotected one and must detect a
        // substantial share of injections.
        let sweep = InstructionSkipSweep::new("integer_compare", &[1234, 4321], 1_000_000);
        let protected = sweep.run(&protected_simulator()).expect("runs");
        let unprotected = sweep.run(&unprotected_simulator()).expect("runs");
        assert_eq!(protected.reference.return_value, 0);
        assert!(protected.counts.detected > 0);
        assert!(
            protected.counts.attack_success_rate() < unprotected.counts.attack_success_rate(),
            "protected {:?} vs unprotected {:?}",
            protected.counts,
            unprotected.counts
        );
    }

    #[test]
    fn unprotected_variant_is_vulnerable_to_instruction_skips() {
        let sweep = InstructionSkipSweep::new("integer_compare", &[1234, 4321], 100_000);
        let unprotected = sweep.run(&unprotected_simulator()).expect("runs");
        assert_eq!(unprotected.reference.return_value, 0);
        assert!(
            unprotected.counts.wrong_result_undetected > 0,
            "skipping the branch of the unprotected variant must flip the decision"
        );
    }

    #[test]
    fn register_flip_campaign_classifies_outcomes() {
        let mut campaign =
            RegisterBitFlipCampaign::new("integer_compare", &[77, 77], 1_000_000, 0xABCDEF);
        let report = campaign.run(&protected_simulator(), 200).expect("runs");
        assert_eq!(report.counts.total(), 200);
        assert!(report.counts.detected + report.counts.crashed > 0);
        assert!(
            report.counts.attack_success_rate() < 0.10,
            "single register bit flips rarely defeat the protected branch: {:?}",
            report.counts
        );
    }

    #[test]
    fn outcome_counts_arithmetic() {
        let mut counts = OutcomeCounts::default();
        counts.record(Outcome::Masked);
        counts.record(Outcome::Detected);
        counts.record(Outcome::Crashed);
        counts.record(Outcome::WrongResultUndetected);
        assert_eq!(counts.total(), 4);
        assert!((counts.attack_success_rate() - 0.25).abs() < 1e-12);
    }
}
