//! Fault models, injection campaigns and outcome classification.
//!
//! Two complementary campaign styles reproduce the paper's security analysis
//! (Section VI):
//!
//! * [`condition`] — *arithmetic-level* fault simulation of the encoded
//!   condition computation: `k` bit flips are placed at random locations over
//!   all intermediate values of Algorithm 1/2 and the outcome is classified
//!   (detected / masked / undetected decision flip). This regenerates the
//!   "error detectability is reduced to 3 bits … with four bits the rate of
//!   an undetected condition flip is 0.0002 %" result.
//! * [`simulation`] — *instruction-level* fault injection on the ARMv7-M
//!   simulator through [`secbranch_armv7m::FaultHook`]s: single instruction
//!   skips and register bit flips swept over the dynamic execution of a
//!   compiled workload, with outcomes classified by comparing against the
//!   fault-free run and the CFI verdict. These sweeps are thin adapters over
//!   the general multi-model campaign engine in `secbranch-campaign`, which
//!   adds double skips, memory flips, branch inversion, multi-threaded
//!   execution and per-location attribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod condition;
pub mod simulation;

pub use condition::{ConditionCampaign, ConditionOutcomeCounts, FaultLocation};
pub use simulation::{
    InstructionSkipSweep, Outcome, OutcomeCounts, RegisterBitFlipCampaign, SweepReport, TraceKey,
    TraceStore,
};
