//! Arithmetic-level fault simulation of the encoded condition computation
//! (Section VI of the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secbranch_ancode::compare::{ConditionOutcome, Predicate};
use secbranch_ancode::{CodeWord, Parameters};

/// Where a fault can strike during the computation of a condition value.
///
/// The locations correspond to the intermediate values of Algorithms 1 and 2:
/// the two AN-coded operands, the difference after adding `C`, the remainder,
/// and the final condition value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultLocation {
    /// The left AN-coded operand.
    OperandX,
    /// The right AN-coded operand.
    OperandY,
    /// The (first) difference plus the condition constant.
    Difference,
    /// The (first) remainder.
    Remainder,
    /// The final condition value.
    Condition,
}

impl FaultLocation {
    /// All fault locations.
    pub const ALL: [FaultLocation; 5] = [
        FaultLocation::OperandX,
        FaultLocation::OperandY,
        FaultLocation::Difference,
        FaultLocation::Remainder,
        FaultLocation::Condition,
    ];
}

/// Counters of campaign outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConditionOutcomeCounts {
    /// Experiments where the final value was neither valid symbol: the fault
    /// is detected (by the CFI linkage).
    pub detected: u64,
    /// Experiments where the final value was the *correct* symbol: the fault
    /// was masked and the decision unchanged.
    pub masked: u64,
    /// Experiments where the final value was the *wrong* valid symbol: the
    /// attacker flipped the decision without detection.
    pub undetected_flip: u64,
}

impl ConditionOutcomeCounts {
    /// Total number of experiments.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.detected + self.masked + self.undetected_flip
    }

    /// Fraction of experiments where the decision was flipped undetected.
    /// Shares the rate arithmetic of [`secbranch_campaign::rate`] with the
    /// instruction-level counters.
    #[must_use]
    pub fn undetected_rate(&self) -> f64 {
        secbranch_campaign::rate(self.undetected_flip, self.total())
    }
}

/// A Monte-Carlo fault campaign over the encoded condition computation.
#[derive(Debug, Clone)]
pub struct ConditionCampaign {
    params: Parameters,
    predicate: Predicate,
    rng: StdRng,
}

impl ConditionCampaign {
    /// Creates a campaign for one predicate with a deterministic seed.
    #[must_use]
    pub fn new(params: Parameters, predicate: Predicate, seed: u64) -> Self {
        ConditionCampaign {
            params,
            predicate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs `trials` experiments, each flipping `bits` random bits spread over
    /// random locations of the condition computation, with random in-range
    /// operands.
    pub fn run(&mut self, bits: u32, trials: u64) -> ConditionOutcomeCounts {
        let mut counts = ConditionOutcomeCounts::default();
        let max = self.params.code().functional_max_exclusive();
        for _ in 0..trials {
            let x = self.rng.gen_range(0..max);
            let y = self.rng.gen_range(0..max);
            let faults: Vec<(FaultLocation, u32)> = (0..bits)
                .map(|_| {
                    let loc = FaultLocation::ALL[self.rng.gen_range(0..FaultLocation::ALL.len())];
                    (loc, self.rng.gen_range(0..32))
                })
                .collect();
            let outcome = self.single_experiment(x, y, &faults);
            match outcome {
                ExperimentOutcome::Detected => counts.detected += 1,
                ExperimentOutcome::Masked => counts.masked += 1,
                ExperimentOutcome::UndetectedFlip => counts.undetected_flip += 1,
            }
        }
        counts
    }

    /// Runs the sweep the paper reports: `bits = 1..=max_bits`, each with
    /// `trials` experiments, returning `(bits, counts)` rows.
    pub fn sweep(&mut self, max_bits: u32, trials: u64) -> Vec<(u32, ConditionOutcomeCounts)> {
        (1..=max_bits)
            .map(|bits| (bits, self.run(bits, trials)))
            .collect()
    }

    fn single_experiment(
        &self,
        x: u32,
        y: u32,
        faults: &[(FaultLocation, u32)],
    ) -> ExperimentOutcome {
        let code = self.params.code();
        let a = code.constant();
        let c = if self.predicate.is_equality_class() {
            self.params.equality_constant()
        } else {
            self.params.ordering_constant()
        };
        let symbols = self.params.symbols(self.predicate);
        let fault_free = self.predicate.evaluate(x, y);
        let expected = if fault_free {
            symbols.true_value()
        } else {
            symbols.false_value()
        };
        let wrong = if fault_free {
            symbols.false_value()
        } else {
            symbols.true_value()
        };

        let mask = |loc: FaultLocation| -> u32 {
            faults
                .iter()
                .filter(|(l, _)| *l == loc)
                .fold(0u32, |m, (_, bit)| m ^ (1 << bit))
        };

        // Recompute the condition value with faults applied to the
        // intermediates, mirroring Algorithms 1 and 2 step by step.
        let xc = CodeWord(code.encode(x).expect("in range").raw() ^ mask(FaultLocation::OperandX));
        let yc = CodeWord(code.encode(y).expect("in range").raw() ^ mask(FaultLocation::OperandY));
        let (first, second) = match self.predicate {
            Predicate::Ugt | Predicate::Ule => (yc, xc),
            _ => (xc, yc),
        };
        let cond = if self.predicate.is_equality_class() {
            let diff1 = first.raw().wrapping_sub(second.raw()).wrapping_add(c)
                ^ mask(FaultLocation::Difference);
            let rem1 = (diff1 % a) ^ mask(FaultLocation::Remainder);
            let diff2 = second.raw().wrapping_sub(first.raw()).wrapping_add(c);
            let rem2 = diff2 % a;
            rem1.wrapping_add(rem2) ^ mask(FaultLocation::Condition)
        } else {
            let diff = first.raw().wrapping_sub(second.raw()).wrapping_add(c)
                ^ mask(FaultLocation::Difference);
            let rem = (diff % a) ^ mask(FaultLocation::Remainder);
            rem ^ mask(FaultLocation::Condition)
        };

        if cond == wrong {
            ExperimentOutcome::UndetectedFlip
        } else if cond == expected {
            ExperimentOutcome::Masked
        } else {
            match symbols.classify(cond) {
                ConditionOutcome::Invalid => ExperimentOutcome::Detected,
                _ => ExperimentOutcome::UndetectedFlip,
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExperimentOutcome {
    Detected,
    Masked,
    UndetectedFlip,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bit_faults_never_flip_an_ordering_decision() {
        // For the ordering class (Algorithm 1) a single bit flip anywhere in
        // the condition computation cannot produce the other valid symbol:
        // the residue displacement `±2^b (mod A)` never equals `±2^32 mod A`
        // for the paper's `A` (verified exhaustively by the parameter
        // analysis), so every such fault is detected or masked.
        let mut campaign =
            ConditionCampaign::new(Parameters::paper_defaults(), Predicate::Ult, 0xC0FFEE);
        let counts = campaign.run(1, 50_000);
        assert_eq!(counts.undetected_flip, 0);
        assert!(counts.detected > 0);
    }

    #[test]
    fn low_order_faults_flip_the_equality_decision_only_very_rarely() {
        // Reproduction finding (documented in EXPERIMENTS.md): because
        // Algorithm 2 adds the two remainders *without* a final reduction, a
        // single operand bit flip shifts both remainders and the unreduced
        // sum can — very rarely (~2.5e-6) — land exactly on the other symbol.
        // The rate must stay far below the 1e-3 level.
        let mut campaign =
            ConditionCampaign::new(Parameters::paper_defaults(), Predicate::Eq, 0xFEED);
        for bits in 1..=2 {
            let counts = campaign.run(bits, 100_000);
            assert!(
                counts.undetected_rate() < 1e-3,
                "{bits} bit(s): {:?}",
                counts
            );
        }
    }

    #[test]
    fn three_bit_faults_are_still_detected_for_the_ordering_class() {
        // "Simulations show that for our parameter selection the error
        // detectability is reduced to 3-bits, arbitrarily placed over all the
        // whole computation of the condition value."
        let mut campaign =
            ConditionCampaign::new(Parameters::paper_defaults(), Predicate::Ult, 0xFEED);
        let counts = campaign.run(3, 50_000);
        assert_eq!(counts.undetected_flip, 0);
    }

    #[test]
    fn a_precisely_targeted_symbol_flip_is_classified_as_undetected() {
        // An attacker who can place the exact 15-bit XOR pattern between the
        // two symbols onto the final condition value flips the decision
        // without detection — the classification machinery must report this.
        let params = Parameters::paper_defaults();
        let campaign = ConditionCampaign::new(params, Predicate::Ult, 1);
        let symbols = params.symbols(Predicate::Ult);
        let pattern = symbols.true_value() ^ symbols.false_value();
        let faults: Vec<(FaultLocation, u32)> = (0..32)
            .filter(|b| pattern >> b & 1 == 1)
            .map(|b| (FaultLocation::Condition, b))
            .collect();
        assert_eq!(faults.len(), 15);
        let outcome = campaign.single_experiment(10, 20, &faults);
        assert_eq!(outcome, ExperimentOutcome::UndetectedFlip);
        // The same pattern on a *different* location is not a clean flip.
        let elsewhere: Vec<(FaultLocation, u32)> = faults
            .iter()
            .map(|(_, b)| (FaultLocation::OperandX, *b))
            .collect();
        assert_ne!(
            campaign.single_experiment(10, 20, &elsewhere),
            ExperimentOutcome::UndetectedFlip
        );
    }

    #[test]
    fn sweep_produces_one_row_per_bit_count() {
        let mut campaign = ConditionCampaign::new(Parameters::paper_defaults(), Predicate::Eq, 1);
        let rows = campaign.sweep(4, 1_000);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, 1);
        assert_eq!(rows[3].0, 4);
        for (_, counts) in rows {
            assert_eq!(counts.total(), 1_000);
        }
    }

    #[test]
    fn counts_report_rates() {
        let counts = ConditionOutcomeCounts {
            detected: 99,
            masked: 0,
            undetected_flip: 1,
        };
        assert_eq!(counts.total(), 100);
        assert!((counts.undetected_rate() - 0.01).abs() < 1e-12);
        assert_eq!(ConditionOutcomeCounts::default().undetected_rate(), 0.0);
    }
}
