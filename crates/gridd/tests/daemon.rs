//! End-to-end daemon tests: byte-identity of daemon-served grids against
//! local runs, warm serving with zero simulation, single-flight under
//! concurrent clients, protocol-version rejection, and per-request
//! degradation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use secbranch::campaign::{FaultModel, MatrixExecutor};
use secbranch::{SecurityReport, Session};
use secbranch_gridd::{
    catalog, protocol, ClientError, DaemonConfig, GridClient, GridDaemon, GridRequest, Served,
};

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "secbranch-gridd-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&path).expect("temp dir creates");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A daemon on an ephemeral port, running on its own thread until the test
/// shuts it down through a client.
struct RunningDaemon {
    addr: String,
    runner: Option<thread::JoinHandle<std::io::Result<()>>>,
}

impl RunningDaemon {
    fn start(config: DaemonConfig) -> RunningDaemon {
        Self::start_on("127.0.0.1:0", config)
    }

    fn start_on(addr: &str, config: DaemonConfig) -> RunningDaemon {
        let daemon = GridDaemon::bind(addr, config).expect("daemon binds");
        let addr = daemon.local_addr().to_string();
        RunningDaemon {
            addr,
            runner: Some(thread::spawn(move || daemon.run())),
        }
    }

    fn client(&self) -> GridClient {
        GridClient::connect_with_retry(&self.addr, 20, Duration::from_millis(25))
            .expect("client connects")
    }

    fn stop(mut self) -> protocol::StatsSnapshot {
        let stats = self.client().shutdown().expect("shutdown acknowledged");
        self.runner
            .take()
            .expect("runner present")
            .join()
            .expect("accept loop joins")
            .expect("accept loop exits cleanly");
        stats
    }
}

fn request(workloads: &[&str], variants: &[&str], models: &[&str], trials: u64) -> GridRequest {
    GridRequest {
        priority: 0,
        trials,
        max_steps: 200_000,
        deadline_millis: 0,
        workloads: workloads.iter().map(|s| (*s).to_string()).collect(),
        variants: variants.iter().map(|s| (*s).to_string()).collect(),
        models: models.iter().map(|s| (*s).to_string()).collect(),
        cold: false,
    }
}

/// The same grid run locally through `Session::security_matrix_with` — the
/// reference every daemon-served report must match byte for byte.
fn local_report(grid: &GridRequest) -> SecurityReport {
    let workloads: Vec<_> = grid
        .workloads
        .iter()
        .map(|name| catalog::workload(name).expect("known workload"))
        .collect();
    let pipelines: Vec<_> = grid
        .variants
        .iter()
        .map(|label| catalog::pipeline(label, grid.max_steps).expect("known variant"))
        .collect();
    let models: Vec<_> = grid
        .models
        .iter()
        .map(|name| catalog::model(name, grid.trials).expect("known model"))
        .collect();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(|m| &**m as &dyn FaultModel).collect();
    Session::new()
        .security_matrix_with(
            &MatrixExecutor::new(),
            &workloads,
            &pipelines,
            &model_refs,
            None,
        )
        .expect("local matrix runs")
}

#[test]
fn cold_then_warm_requests_match_a_local_run_byte_for_byte() {
    let store = TempDir::new("cold-warm");
    let daemon = RunningDaemon::start(DaemonConfig {
        store_dir: Some(store.0.clone()),
        ..DaemonConfig::default()
    });
    let grid = request(
        &["integer_compare"],
        &["unprotected", "prototype"],
        &["skip", "branch-invert"],
        100,
    );
    let expected_json = local_report(&grid).to_json();

    // Cold: every cell is computed (nothing persisted yet), and the
    // assembled report already matches the local run byte for byte.
    let mut client = daemon.client();
    let mut cold_cells = Vec::new();
    let cold = client
        .request_grid(&grid, |cell| cold_cells.push(cell.clone()))
        .expect("cold grid serves");
    assert_eq!(cold.cells, 4);
    assert_eq!(cold.computed_cells, 4);
    assert_eq!(cold.warm_cells, 0);
    assert_eq!(cold.coalesced_cells, 0);
    assert!(cold.recordings >= 2, "both artifacts record a reference");
    assert_eq!(cold.report_json, expected_json);
    assert_eq!(cold_cells.len(), 4);
    assert!(cold_cells.iter().all(|c| c.served == Served::Computed));

    // Warm: the same grid on a fresh connection does zero simulation —
    // every cell streams from the store, nothing is recorded, and the
    // report is still byte-identical.
    let mut warm_client = daemon.client();
    let mut warm_cells = Vec::new();
    let warm = warm_client
        .request_grid(&grid, |cell| warm_cells.push(cell.clone()))
        .expect("warm grid serves");
    assert_eq!(warm.warm_cells, 4);
    assert_eq!(warm.computed_cells, 0);
    assert_eq!(warm.recordings, 0, "warm serving records nothing");
    assert_eq!(warm.report_json, expected_json);
    assert_eq!(warm_cells.len(), 4);
    assert!(warm_cells
        .iter()
        .all(|c| c.served == Served::StoreWarm && c.compute_micros == 0));
    // Streamed cells carry the same per-cell reports the document embeds.
    let report = local_report(&grid);
    for cell in &warm_cells {
        let local = &report.cells[cell.cell_index as usize];
        assert_eq!(cell.workload, local.workload);
        assert_eq!(cell.pipeline, local.pipeline);
        assert_eq!(cell.model, local.model);
        assert_eq!(cell.report, local.report);
    }

    let stats = daemon.stop();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.cells_requested, 8);
    assert_eq!(stats.computed_cells, 4);
    assert_eq!(stats.warm_cells, 4);
    assert!(stats.store.is_some(), "store counters surface in STATS");
}

#[test]
fn cold_requests_recompute_against_a_warm_store_without_deleting_it() {
    let store = TempDir::new("forced-cold");
    let daemon = RunningDaemon::start(DaemonConfig {
        store_dir: Some(store.0.clone()),
        ..DaemonConfig::default()
    });
    let grid = request(&["integer_compare"], &["unprotected"], &["skip"], 50);
    let expected_json = local_report(&grid).to_json();

    let mut client = daemon.client();
    let first = client
        .request_grid(&grid, |_| {})
        .expect("cold grid serves");
    assert_eq!(first.computed_cells, 1);

    // The store is warm now, but a cold-flagged request must ignore it and
    // compute the cell again — byte-identically.
    let mut forced = grid.clone();
    forced.cold = true;
    let mut served = Vec::new();
    let recomputed = client
        .request_grid(&forced, |cell| served.push(cell.served))
        .expect("forced-cold grid serves");
    assert_eq!(recomputed.computed_cells, 1);
    assert_eq!(recomputed.warm_cells, 0);
    assert_eq!(recomputed.report_json, expected_json);
    assert_eq!(served, vec![Served::Computed]);

    // Ignoring is not deleting: a plain request afterwards is fully warm.
    let warm = client
        .request_grid(&grid, |_| {})
        .expect("warm grid serves");
    assert_eq!(warm.warm_cells, 1);
    assert_eq!(warm.computed_cells, 0);
    assert_eq!(warm.report_json, expected_json);

    daemon.stop();
}

#[test]
fn concurrent_clients_get_identical_reports_with_single_flight_computation() {
    let store = TempDir::new("concurrent");
    let daemon = RunningDaemon::start(DaemonConfig {
        store_dir: Some(store.0.clone()),
        ..DaemonConfig::default()
    });
    // One model per artifact: four distinct cold cells, each with its own
    // reference trace, so "recorded exactly once" is exact, not racy.
    let grid = request(
        &["integer_compare", "pin_retry"],
        &["unprotected", "cfi"],
        &["skip"],
        50,
    );
    let expected_json = local_report(&grid).to_json();

    const CLIENTS: usize = 4;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut joins = Vec::new();
    for _ in 0..CLIENTS {
        let addr = daemon.addr.clone();
        let grid = grid.clone();
        let barrier = Arc::clone(&barrier);
        joins.push(thread::spawn(move || {
            let mut client = GridClient::connect_with_retry(&addr, 20, Duration::from_millis(25))
                .expect("client connects");
            barrier.wait();
            client
                .request_grid(&grid, |_| {})
                .expect("concurrent grid serves")
        }));
    }
    for join in joins {
        let done = join.join().expect("client thread joins");
        assert_eq!(done.cells, 4);
        assert_eq!(
            done.report_json, expected_json,
            "every client's report is byte-identical to the local run"
        );
    }

    let stats = daemon.stop();
    assert_eq!(stats.requests, CLIENTS as u64);
    assert_eq!(stats.cells_requested, 16);
    assert_eq!(
        stats.computed_cells, 4,
        "each cold cell is computed exactly once across all clients"
    );
    assert_eq!(
        stats.recordings, 4,
        "each cold cell's reference trace is recorded exactly once"
    );
    assert_eq!(
        stats.warm_cells + stats.coalesced_cells,
        12,
        "every other serving was store-warm or coalesced, never recomputed"
    );
    assert_eq!(stats.request_errors, 0);
}

#[test]
fn foreign_protocol_versions_are_rejected_with_both_versions() {
    let daemon = RunningDaemon::start(DaemonConfig::default());

    // A hand-built STATS frame claiming protocol version 9.
    let mut stream = std::net::TcpStream::connect(&daemon.addr).expect("connects");
    let mut frame = Vec::new();
    frame.extend_from_slice(b"SBGD");
    frame.extend_from_slice(&9u32.to_le_bytes());
    frame.push(2); // REQ_STATS
    frame.extend_from_slice(&0u64.to_le_bytes());
    frame.extend_from_slice(&secbranch::store::format::crc32(b"").to_le_bytes());
    use std::io::Write as _;
    stream.write_all(&frame).expect("frame sends");

    let response = protocol::read_frame(&mut stream).expect("rejection arrives");
    assert_eq!(response.kind, 20, "RESP_REJECT");
    let reject = protocol::decode_reject(&response.payload).expect("decodes");
    assert_eq!(reject.found, 9);
    assert_eq!(reject.expected, protocol::PROTOCOL_VERSION);
    // The daemon closed the connection after rejecting.
    assert!(protocol::read_frame(&mut stream).is_err());

    let stats = daemon.stop();
    assert_eq!(stats.version_rejects, 1);
}

#[test]
fn request_failures_degrade_per_request_not_per_daemon() {
    let daemon = RunningDaemon::start(DaemonConfig {
        max_cells_per_request: 4,
        max_steps_cap: 1_000_000,
        ..DaemonConfig::default()
    });
    let mut client = daemon.client();

    // Unknown catalog names are refused...
    let unknown = request(&["quicksort"], &["unprotected"], &["skip"], 10);
    match client.request_grid(&unknown, |_| {}) {
        Err(ClientError::Server(message)) => assert!(message.contains("quicksort")),
        other => panic!("expected a server refusal, got {other:?}"),
    }
    // ...as are grids over the cell budget...
    let oversized = request(
        &["integer_compare"],
        &["unprotected", "cfi", "prototype"],
        &["skip", "branch-invert"],
        10,
    );
    match client.request_grid(&oversized, |_| {}) {
        Err(ClientError::Server(message)) => assert!(message.contains("limit")),
        other => panic!("expected a server refusal, got {other:?}"),
    }
    // ...and step budgets over the cap...
    let mut greedy = request(&["integer_compare"], &["unprotected"], &["skip"], 10);
    greedy.max_steps = 2_000_000;
    match client.request_grid(&greedy, |_| {}) {
        Err(ClientError::Server(message)) => assert!(message.contains("max_steps")),
        other => panic!("expected a server refusal, got {other:?}"),
    }
    // ...and duplicate axis entries, including two spellings of one variant.
    let duplicated = request(
        &["integer_compare"],
        &["prototype", "ancode"],
        &["skip"],
        10,
    );
    match client.request_grid(&duplicated, |_| {}) {
        Err(ClientError::Server(message)) => assert!(message.contains("duplicate")),
        other => panic!("expected a server refusal, got {other:?}"),
    }

    // The connection (and the daemon) survive all of it: a valid request
    // on the same connection still serves.
    let valid = request(&["integer_compare"], &["unprotected"], &["skip"], 10);
    let done = client.request_grid(&valid, |_| {}).expect("valid serves");
    assert_eq!(done.cells, 1);
    assert_eq!(done.report_json, local_report(&valid).to_json());

    let stats = daemon.stop();
    assert_eq!(stats.request_errors, 4);
    assert_eq!(stats.requests, 1, "refused requests are not admitted");
}

#[test]
fn metrics_expose_pool_store_and_executor_series() {
    let store = TempDir::new("metrics");
    let daemon = RunningDaemon::start(DaemonConfig {
        store_dir: Some(store.0.clone()),
        ..DaemonConfig::default()
    });
    let grid = request(&["integer_compare"], &["unprotected"], &["skip"], 50);

    let mut client = daemon.client();
    client.request_grid(&grid, |_| {}).expect("grid serves");
    let exposition = client.metrics().expect("metrics serve");

    // Daemon counters, pool gauges, trace-store counters, persistent-store
    // counters and the per-model compute histogram all render in one
    // Prometheus-style exposition.
    assert!(exposition.contains("secbranch_gridd_requests_total 1"));
    assert!(exposition.contains("secbranch_gridd_computed_cells_total 1"));
    assert!(exposition.contains("secbranch_pool_workers"));
    assert!(exposition.contains("secbranch_trace_store_misses_total"));
    assert!(exposition.contains("secbranch_store_"));
    assert!(exposition.contains("secbranch_cell_compute_micros_bucket{model=\"skip\""));
    assert!(exposition.contains("# TYPE secbranch_gridd_requests_total counter"));
    // The computed cell observed exactly one compute-time sample.
    assert!(exposition.contains("secbranch_cell_compute_micros_count{model=\"skip\"} 1"));

    // The connection survives the metrics round-trip, and the v3 STATS
    // snapshot carries the executor counters end to end.
    let stats = client.stats().expect("stats serve");
    assert!(
        stats.decoded_programs >= 1,
        "the computed cell decoded its program"
    );
    let json = stats.to_json();
    assert!(json.contains("\"decoded_programs\":"));
    assert!(json.contains("\"decode_micros\":"));
    assert!(json.contains("\"snapshot_restores\":"));
    assert!(json.contains("\"suffix_steps_saved\":"));

    daemon.stop();
}

#[test]
fn v2_clients_survive_a_metrics_rejection_and_keep_their_connection() {
    let daemon = RunningDaemon::start(DaemonConfig::default());

    let mut stream = std::net::TcpStream::connect(&daemon.addr).expect("connects");
    protocol::write_frame_versioned(&mut stream, 2, protocol::REQ_METRICS, b"")
        .expect("v2 metrics request sends");

    // METRICS is a v3 frame: a v2 peer is told so with a rejection carrying
    // both versions...
    let response = protocol::read_frame(&mut stream).expect("rejection arrives");
    assert_eq!(response.kind, 20, "RESP_REJECT");
    let reject = protocol::decode_reject(&response.payload).expect("decodes");
    assert_eq!(reject.found, 2);
    assert_eq!(reject.expected, protocol::PROTOCOL_VERSION);

    // ...but unlike a foreign-version frame the connection stays open: a
    // v2 STATS request on the same stream is answered in kind, with the
    // v3-only executor counters cleanly absent from the payload.
    protocol::write_frame_versioned(&mut stream, 2, protocol::REQ_STATS, b"")
        .expect("v2 stats request sends");
    let response = protocol::read_frame(&mut stream).expect("stats arrive");
    assert_eq!(response.kind, 18, "RESP_STATS");
    assert_eq!(
        response.version, 2,
        "replies are framed at the peer's version"
    );
    let stats = protocol::decode_stats(&response.payload, response.version).expect("v2 decodes");
    assert_eq!(stats.protocol_version, protocol::PROTOCOL_VERSION);
    assert_eq!(stats.decoded_programs, 0, "v3-only fields stay zero for v2");
    drop(stream);

    let stats = daemon.stop();
    assert_eq!(stats.version_rejects, 1);
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_serves_and_cleans_up() {
    let dir = TempDir::new("unix");
    let socket = dir.0.join("gridd.sock");
    let daemon = RunningDaemon::start_on(
        &format!("unix:{}", socket.display()),
        DaemonConfig::default(),
    );
    assert_eq!(daemon.addr, format!("unix:{}", socket.display()));

    let mut client = daemon.client();
    let grid = request(&["integer_compare"], &["unprotected"], &["skip"], 10);
    let done = client.request_grid(&grid, |_| {}).expect("grid serves");
    assert_eq!(done.report_json, local_report(&grid).to_json());
    let stats = client.stats().expect("stats serve");
    assert_eq!(stats.protocol_version, protocol::PROTOCOL_VERSION);
    assert_eq!(stats.computed_cells, 1);

    daemon.stop();
    assert!(!socket.exists(), "socket file is removed on shutdown");
}
