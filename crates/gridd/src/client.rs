//! The [`GridClient`]: a blocking connection to a grid daemon.
//!
//! One client holds one connection and issues one request at a time (the
//! protocol interleaves nothing on a single connection); concurrency comes
//! from connecting more clients. [`GridClient::request_grid`] surfaces
//! every streamed cell through a callback as it arrives, then returns the
//! completion frame — the full report a warm daemon assembled without any
//! simulation, byte-identical to a local run of the same grid.

use std::io;
use std::time::Duration;

use crate::protocol::{
    decode_cell, decode_done, decode_reject, decode_stats, encode_grid_request, read_frame,
    write_frame, CellFrame, DoneFrame, GridRequest, StatsSnapshot, WireError, REQ_GRID,
    REQ_METRICS, REQ_SHUTDOWN, REQ_STATS, RESP_CELL, RESP_DONE, RESP_ERROR, RESP_METRICS,
    RESP_REJECT, RESP_STATS,
};
use crate::transport::{self, Stream};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or was dropped.
    Io(io::Error),
    /// The daemon sent something the protocol does not allow here (or a
    /// frame failed validation).
    Protocol(String),
    /// The daemon speaks a different protocol version and rejected us (or
    /// we received a frame of a foreign version).
    Rejected {
        /// The version found on the wire.
        found: u32,
        /// The version expected by the rejecting side.
        expected: u32,
    },
    /// The daemon answered the request with an error.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failure: {e}"),
            ClientError::Protocol(message) => write!(f, "protocol violation: {message}"),
            ClientError::Rejected { found, expected } => write!(
                f,
                "protocol version rejected: v{found} offered, v{expected} required"
            ),
            ClientError::Server(message) => write!(f, "daemon refused the request: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            WireError::Corrupt => ClientError::Protocol("malformed frame".to_string()),
            WireError::VersionMismatch { found, expected } => {
                ClientError::Rejected { found, expected }
            }
        }
    }
}

/// A connected grid client — see the [crate docs](crate) for the usage
/// model.
pub struct GridClient {
    stream: Stream,
}

impl std::fmt::Debug for GridClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridClient").finish_non_exhaustive()
    }
}

impl GridClient {
    /// Connects to `addr` (`unix:<path>` or a TCP address).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> Result<GridClient, ClientError> {
        Ok(GridClient {
            stream: transport::connect(addr)?,
        })
    }

    /// Connects with retries (`attempts` total, `delay` between them) —
    /// for racing a daemon that is still binding its socket.
    ///
    /// # Errors
    ///
    /// The last connection failure once the attempts are exhausted.
    pub fn connect_with_retry(
        addr: &str,
        attempts: u32,
        delay: Duration,
    ) -> Result<GridClient, ClientError> {
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
            }
            match GridClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Sends `request` and blocks until completion, invoking `on_cell` for
    /// every streamed cell in arrival order (warm cells first, cold cells
    /// in completion order — not canonical order; use
    /// [`CellFrame::cell_index`] to place them).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the daemon refuses or fails the
    /// request, [`ClientError::Rejected`] on a protocol-version mismatch,
    /// otherwise transport/protocol failures.
    pub fn request_grid(
        &mut self,
        request: &GridRequest,
        mut on_cell: impl FnMut(&CellFrame),
    ) -> Result<DoneFrame, ClientError> {
        write_frame(&mut self.stream, REQ_GRID, &encode_grid_request(request))?;
        loop {
            let frame = read_frame(&mut self.stream)?;
            match frame.kind {
                RESP_CELL => {
                    let cell = decode_cell(&frame.payload)
                        .map_err(|_| ClientError::Protocol("bad cell frame".to_string()))?;
                    on_cell(&cell);
                }
                RESP_DONE => {
                    return decode_done(&frame.payload)
                        .map_err(|_| ClientError::Protocol("bad completion frame".to_string()));
                }
                kind => return Err(unexpected(kind, &frame.payload)),
            }
        }
    }

    /// Fetches the daemon's statistics snapshot.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a daemon-side error frame.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.round_trip(REQ_STATS)
    }

    /// Asks the daemon to shut down; the final statistics snapshot is the
    /// acknowledgement.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a daemon-side error frame.
    pub fn shutdown(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.round_trip(REQ_SHUTDOWN)
    }

    /// Fetches the daemon's metrics registry as a Prometheus-style text
    /// exposition (v3 only; an older daemon answers with a rejection).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, [`ClientError::Rejected`] against a
    /// pre-v3 daemon, or a daemon-side error frame.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        write_frame(&mut self.stream, REQ_METRICS, b"")?;
        let frame = read_frame(&mut self.stream)?;
        match frame.kind {
            RESP_METRICS => String::from_utf8(frame.payload)
                .map_err(|_| ClientError::Protocol("bad metrics frame".to_string())),
            kind => Err(unexpected(kind, &frame.payload)),
        }
    }

    fn round_trip(&mut self, kind: u8) -> Result<StatsSnapshot, ClientError> {
        write_frame(&mut self.stream, kind, b"")?;
        let frame = read_frame(&mut self.stream)?;
        match frame.kind {
            RESP_STATS => decode_stats(&frame.payload, frame.version)
                .map_err(|_| ClientError::Protocol("bad stats frame".to_string())),
            kind => Err(unexpected(kind, &frame.payload)),
        }
    }
}

/// Classifies an out-of-place response frame: server errors and version
/// rejections carry their own meaning, anything else is a protocol
/// violation.
fn unexpected(kind: u8, payload: &[u8]) -> ClientError {
    match kind {
        RESP_ERROR => ClientError::Server(String::from_utf8_lossy(payload).into_owned()),
        RESP_REJECT => match decode_reject(payload) {
            Ok(reject) => ClientError::Rejected {
                found: reject.found,
                expected: reject.expected,
            },
            Err(_) => ClientError::Protocol("bad rejection frame".to_string()),
        },
        kind => ClientError::Protocol(format!("unexpected response kind {kind}")),
    }
}
