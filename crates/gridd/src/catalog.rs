//! The daemon's request catalog: the names a [`GridRequest`] may use on
//! each axis, resolved to the same constructors (modules, entries,
//! arguments, model seeds, memory size) the `campaign` binary uses.
//!
//! Clients name cells, they never ship programs — the daemon only executes
//! artifacts it can rebuild bit-deterministically itself, which is what
//! makes its content-addressed cell cache shareable between the daemon and
//! local runs: the same catalog name always reaches the same artifact
//! fingerprint, so a grid served by the daemon is byte-identical to the
//! same grid run locally.
//!
//! [`GridRequest`]: crate::protocol::GridRequest

use std::sync::Arc;

use secbranch::campaign::{
    BranchInversion, DoubleInstructionSkip, FaultModel, InstructionSkip, MemoryBitFlip,
    RegisterBitFlip,
};
use secbranch::programs::{
    crc32_table_module, integer_compare_module, memcmp_module, password_check_module,
    pin_retry_module,
};
use secbranch::{Pipeline, ProtectionVariant, Workload};

/// Guest RAM size of every catalog pipeline, matching the `campaign`
/// binary — part of the artifact fingerprint, so diverging here would
/// split the cell cache.
pub const MEMORY_SIZE: u32 = 1 << 18;

/// The workload names the catalog resolves.
pub const WORKLOADS: [&str; 5] = [
    "integer_compare",
    "memcmp",
    "password_check",
    "crc32",
    "pin_retry",
];

/// The fault-model names the catalog resolves.
pub const MODELS: [&str; 5] = [
    "skip",
    "double-skip",
    "register-flip",
    "memory-flip",
    "branch-invert",
];

/// Resolves a workload name — module, entry point and arguments identical
/// to the `campaign` binary's.
#[must_use]
pub fn workload(name: &str) -> Option<Workload> {
    Some(match name {
        "integer_compare" => Workload::new(
            "integer compare",
            integer_compare_module(),
            "integer_compare",
            &[1234, 4321],
        ),
        "memcmp" => Workload::new("memcmp x16", memcmp_module(16), "memcmp_bench", &[]),
        "password_check" => Workload::new(
            "password check",
            password_check_module(8),
            "password_check",
            &[],
        ),
        "crc32" => Workload::new("crc32 x16", crc32_table_module(16), "crc32_check", &[]),
        "pin_retry" => Workload::new("pin retry", pin_retry_module(4, 3), "pin_check", &[]),
        _ => return None,
    })
}

/// Resolves a fault-model name under the request's sampling budget — same
/// seeds as the `campaign` binary, so the model *fingerprints* (which key
/// persisted cells) match too.
#[must_use]
pub fn model(name: &str, trials: u64) -> Option<Arc<dyn FaultModel + Send + Sync>> {
    Some(match name {
        "skip" => Arc::new(InstructionSkip),
        "double-skip" => Arc::new(DoubleInstructionSkip {
            max_injections: trials,
            seed: 0x2FA17,
        }),
        "register-flip" => Arc::new(RegisterBitFlip {
            trials,
            seed: 0xABCDEF,
        }),
        "memory-flip" => Arc::new(MemoryBitFlip {
            trials,
            seed: 0xFEED,
        }),
        "branch-invert" => Arc::new(BranchInversion),
        _ => return None,
    })
}

/// Resolves a protection-variant label (everything
/// [`ProtectionVariant::from_str`] accepts, e.g. `unprotected`, `cfi`,
/// `duplication(x3)`, `prototype`) to the catalog pipeline under the
/// request's step budget.
///
/// [`ProtectionVariant::from_str`]: std::str::FromStr::from_str
#[must_use]
pub fn pipeline(label: &str, max_steps: u64) -> Option<Pipeline> {
    let variant: ProtectionVariant = label.parse().ok()?;
    Some(
        Pipeline::for_variant(variant)
            .with_memory_size(MEMORY_SIZE)
            .with_max_steps(max_steps),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_advertised_name_resolves() {
        for name in WORKLOADS {
            assert!(workload(name).is_some(), "workload {name} must resolve");
        }
        for name in MODELS {
            let resolved = model(name, 10).expect("model resolves");
            assert_eq!(resolved.name(), name, "catalog names are model names");
        }
        for label in ["unprotected", "cfi", "duplication(x3)", "prototype"] {
            assert!(pipeline(label, 1_000).is_some(), "variant {label} resolves");
        }
    }

    #[test]
    fn unknown_names_are_refused() {
        assert!(workload("quicksort").is_none());
        assert!(model("rowhammer", 10).is_none());
        assert!(pipeline("duplication(x1)", 1_000).is_none());
    }

    #[test]
    fn model_fingerprints_track_the_sampling_budget() {
        let small = model("register-flip", 10).expect("resolves").fingerprint();
        let large = model("register-flip", 20).expect("resolves").fingerprint();
        assert_ne!(small, large, "budget is part of the cell identity");
        let skip_a = model("skip", 10).expect("resolves").fingerprint();
        let skip_b = model("skip", 20).expect("resolves").fingerprint();
        assert_eq!(skip_a, skip_b, "exhaustive models ignore the budget");
    }
}
