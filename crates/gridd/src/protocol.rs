//! The SBGD wire protocol: length-prefixed, CRC-checked, versioned binary
//! frames over any byte stream.
//!
//! The framing deliberately mirrors the SBGR record format of
//! `secbranch-store` — magic, format version, kind tag, payload length,
//! CRC-32, payload — because it has the same job under the same
//! constraints: hand-rolled (the offline workspace has no serde), fixed by
//! definition, little-endian, and safe to parse from an untrusted peer
//! (every decoder is total: any byte sequence either decodes or fails
//! cleanly, never panics or over-allocates).
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SBGD"
//! 4       4     protocol version (u32 LE)
//! 8       1     frame kind
//! 9       8     payload length (u64 LE, at most MAX_FRAME)
//! 17      4     CRC-32 (IEEE) of the payload (u32 LE)
//! 21      n     payload
//! ```
//!
//! A frame of a foreign protocol version is answered with a
//! [`RejectFrame`] and the connection is closed — clients of a foreign
//! protocol get a machine-readable "speak my version" instead of a hang
//! or a misparse. Payload contents are encoded with the same
//! [`Writer`]/[`Reader`] primitives the store records use.

use std::io::{self, Read, Write};

use secbranch_campaign::CampaignReport;
use secbranch_store::format::{crc32, Reader, RecordError, Writer};
use secbranch_store::StoreStats;

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"SBGD";

/// The protocol version this build speaks. Bump on any frame or payload
/// layout change — peers refuse other versions instead of misparsing them.
/// v2 added [`GridRequest::cold`] (the decoders reject trailing bytes, so
/// the field could not ride on v1 frames). v3 added the `REQ_METRICS` /
/// `RESP_METRICS` exchange and four executor counters to
/// [`StatsSnapshot`]; v2 peers are still served (see
/// [`MIN_PROTOCOL_VERSION`]) — every reply is framed and encoded at the
/// peer's version, with the v3-only stats fields left off v2 payloads.
pub const PROTOCOL_VERSION: u32 = 3;

/// The oldest protocol version this build still serves. Frames between
/// here and [`PROTOCOL_VERSION`] are accepted and answered at the peer's
/// version; anything older (or newer) is rejected with a [`RejectFrame`].
pub const MIN_PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a frame payload; a corrupted or hostile length prefix
/// fails the read instead of triggering a giant allocation.
pub const MAX_FRAME: u64 = 64 << 20;

/// Size of the fixed frame header preceding the payload.
pub const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 4;

/// Client → daemon: run a security grid (a [`GridRequest`] payload).
pub const REQ_GRID: u8 = 1;
/// Client → daemon: return a [`StatsSnapshot`] (empty payload).
pub const REQ_STATS: u8 = 2;
/// Client → daemon: stop accepting connections (empty payload); answered
/// with a final [`StatsSnapshot`].
pub const REQ_SHUTDOWN: u8 = 3;
/// Client → daemon: return a Prometheus-style text exposition of the
/// daemon's metrics registry (empty payload). v3 only — a v2 peer sending
/// this kind gets a [`RejectFrame`] for the frame, without losing the
/// connection.
pub const REQ_METRICS: u8 = 4;

/// Daemon → client: one finished cell of the running grid request
/// (a [`CellFrame`] payload), streamed as soon as the cell is available.
pub const RESP_CELL: u8 = 16;
/// Daemon → client: the grid request is complete (a [`DoneFrame`] payload).
pub const RESP_DONE: u8 = 17;
/// Daemon → client: a [`StatsSnapshot`] payload.
pub const RESP_STATS: u8 = 18;
/// Daemon → client: the request failed (a UTF-8 message payload).
pub const RESP_ERROR: u8 = 19;
/// Daemon → client: protocol version mismatch (a [`RejectFrame`] payload);
/// the daemon closes the connection after sending it — except for a v2
/// peer's [`REQ_METRICS`], which is rejected per-frame with the
/// connection kept open.
pub const RESP_REJECT: u8 = 20;
/// Daemon → client: a Prometheus-style text exposition (UTF-8 payload).
pub const RESP_METRICS: u8 = 21;

/// Why reading a frame from the wire failed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (includes a peer disconnect).
    Io(io::Error),
    /// Bad magic, CRC mismatch, oversized payload or malformed payload
    /// bytes.
    Corrupt,
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version in the received frame.
        found: u32,
        /// The version this build speaks.
        expected: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport failure: {e}"),
            WireError::Corrupt => f.write_str("malformed frame"),
            WireError::VersionMismatch { found, expected } => write!(
                f,
                "protocol version mismatch: peer speaks v{found}, this build speaks v{expected}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<RecordError> for WireError {
    fn from(_: RecordError) -> Self {
        WireError::Corrupt
    }
}

/// One frame as read off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The protocol version the frame carried (within
    /// [`MIN_PROTOCOL_VERSION`]..=[`PROTOCOL_VERSION`]).
    pub version: u32,
    /// The kind tag (one of the `REQ_*`/`RESP_*` constants).
    pub kind: u8,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

/// Writes one frame at this build's own [`PROTOCOL_VERSION`].
///
/// # Errors
///
/// Propagates stream I/O failures.
pub fn write_frame(stream: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    write_frame_versioned(stream, PROTOCOL_VERSION, kind, payload)
}

/// Writes one frame stamped with an explicit protocol version — how the
/// daemon answers a [`MIN_PROTOCOL_VERSION`] peer in the version it
/// speaks.
///
/// # Errors
///
/// Propagates stream I/O failures.
pub fn write_frame_versioned(
    stream: &mut impl Write,
    version: u32,
    kind: u8,
    payload: &[u8],
) -> io::Result<()> {
    let mut header = Vec::with_capacity(HEADER_LEN + payload.len());
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&version.to_le_bytes());
    header.push(kind);
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    header.extend_from_slice(&crc32(payload).to_le_bytes());
    header.extend_from_slice(payload);
    stream.write_all(&header)?;
    stream.flush()
}

/// Reads and validates one frame.
///
/// # Errors
///
/// [`WireError::Io`] on stream failure (including a clean peer disconnect,
/// which surfaces as `UnexpectedEof`), [`WireError::VersionMismatch`] when
/// the frame carries a version outside
/// [`MIN_PROTOCOL_VERSION`]..=[`PROTOCOL_VERSION`],
/// [`WireError::Corrupt`] on bad magic, an oversized length or a CRC
/// mismatch.
pub fn read_frame(stream: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        return Err(WireError::Corrupt);
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("length checked"));
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(WireError::VersionMismatch {
            found: version,
            expected: PROTOCOL_VERSION,
        });
    }
    let kind = header[8];
    let payload_len = u64::from_le_bytes(header[9..17].try_into().expect("length checked"));
    let crc = u32::from_le_bytes(header[17..21].try_into().expect("length checked"));
    if payload_len > MAX_FRAME {
        return Err(WireError::Corrupt);
    }
    let mut payload = vec![0u8; payload_len as usize];
    stream.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(WireError::Corrupt);
    }
    Ok(Frame {
        version,
        kind,
        payload,
    })
}

// --- grid requests --------------------------------------------------------

/// A grid request: which cells to evaluate (catalog names on every axis)
/// and under which budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridRequest {
    /// Scheduling priority of this request's cold cells (higher runs
    /// earlier; ties are FIFO across the whole daemon).
    pub priority: u8,
    /// Injection budget of the sampling fault models.
    pub trials: u64,
    /// Dynamic instruction budget per execution (part of the artifact
    /// fingerprint, so it selects which cached cells can serve this grid).
    pub max_steps: u64,
    /// Wall-clock budget for the whole request in milliseconds
    /// (0 = unbounded); exceeded requests fail with a clean error.
    pub deadline_millis: u64,
    /// Workload catalog names (e.g. `integer_compare`).
    pub workloads: Vec<String>,
    /// Protection variant labels (e.g. `unprotected`, `cfi`, `prototype`).
    pub variants: Vec<String>,
    /// Fault model names (e.g. `skip`, `branch-invert`).
    pub models: Vec<String>,
    /// When set, the daemon ignores (without deleting) any cached cells in
    /// its persistent grid store and computes every cell of this request
    /// from scratch. Write-back still happens, so a cold request re-warms
    /// the store for its successors. Used by benchmark clients to measure
    /// genuine cold-path cost against a pre-populated store.
    pub cold: bool,
}

fn write_names(w: &mut Writer, names: &[String]) {
    w.u32(names.len() as u32);
    for name in names {
        w.str(name);
    }
}

fn read_names(r: &mut Reader<'_>) -> Result<Vec<String>, RecordError> {
    let count = r.u32()? as usize;
    (0..count).map(|_| r.str()).collect()
}

/// Encodes a [`GridRequest`] payload.
#[must_use]
pub fn encode_grid_request(request: &GridRequest) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(request.priority);
    w.u64(request.trials);
    w.u64(request.max_steps);
    w.u64(request.deadline_millis);
    write_names(&mut w, &request.workloads);
    write_names(&mut w, &request.variants);
    write_names(&mut w, &request.models);
    w.u8(u8::from(request.cold));
    w.into_bytes()
}

/// Decodes a [`GridRequest`] payload.
///
/// # Errors
///
/// [`RecordError::Corrupt`] on any malformed byte sequence.
pub fn decode_grid_request(payload: &[u8]) -> Result<GridRequest, RecordError> {
    let mut r = Reader::new(payload);
    let request = GridRequest {
        priority: r.u8()?,
        trials: r.u64()?,
        max_steps: r.u64()?,
        deadline_millis: r.u64()?,
        workloads: read_names(&mut r)?,
        variants: read_names(&mut r)?,
        models: read_names(&mut r)?,
        cold: match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(RecordError::Corrupt),
        },
    };
    if !r.is_exhausted() {
        return Err(RecordError::Corrupt);
    }
    Ok(request)
}

// --- streamed cells -------------------------------------------------------

/// How the daemon obtained a streamed cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Computed for this request (it was the cold submitter).
    Computed,
    /// Served from the persistent grid store without any simulation.
    StoreWarm,
    /// Coalesced onto another request's identical in-flight computation
    /// (single-flight: this request triggered no simulation of its own).
    Coalesced,
}

impl Served {
    fn tag(self) -> u8 {
        match self {
            Served::Computed => 0,
            Served::StoreWarm => 1,
            Served::Coalesced => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Served, RecordError> {
        match tag {
            0 => Ok(Served::Computed),
            1 => Ok(Served::StoreWarm),
            2 => Ok(Served::Coalesced),
            _ => Err(RecordError::Corrupt),
        }
    }

    /// The wire tag's stable text form (`computed`, `store-warm`,
    /// `coalesced`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Served::Computed => "computed",
            Served::StoreWarm => "store-warm",
            Served::Coalesced => "coalesced",
        }
    }
}

/// One finished cell, streamed to the client the moment it is available
/// (warm cells flush during request admission, cold cells in completion
/// order; `cell_index` restores the canonical order client-side).
#[derive(Debug, Clone, PartialEq)]
pub struct CellFrame {
    /// Position of this cell in the canonical (workload-major,
    /// pipeline-then-model) grid order.
    pub cell_index: u32,
    /// Total cells of the request, for progress display.
    pub total_cells: u32,
    /// How the cell was obtained.
    pub served: Served,
    /// The workload display name.
    pub workload: String,
    /// The pipeline label.
    pub pipeline: String,
    /// The fault model name.
    pub model: String,
    /// The full campaign report, byte-identical to a local run's.
    pub report: CampaignReport,
    /// Injection compute time of the cell in microseconds (zero when
    /// served warm).
    pub compute_micros: u64,
}

/// Encodes a [`CellFrame`] payload.
#[must_use]
pub fn encode_cell(cell: &CellFrame) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(cell.cell_index);
    w.u32(cell.total_cells);
    w.u8(cell.served.tag());
    w.str(&cell.workload);
    w.str(&cell.pipeline);
    w.str(&cell.model);
    w.bytes(&secbranch_store::codec::encode_report(&cell.report));
    w.u64(cell.compute_micros);
    w.into_bytes()
}

/// Decodes a [`CellFrame`] payload.
///
/// # Errors
///
/// [`RecordError::Corrupt`] on any malformed byte sequence.
pub fn decode_cell(payload: &[u8]) -> Result<CellFrame, RecordError> {
    let mut r = Reader::new(payload);
    let cell_index = r.u32()?;
    let total_cells = r.u32()?;
    let served = Served::from_tag(r.u8()?)?;
    let workload = r.str()?;
    let pipeline = r.str()?;
    let model = r.str()?;
    let report = secbranch_store::codec::decode_report(&r.byte_vec()?)?;
    let compute_micros = r.u64()?;
    if !r.is_exhausted() {
        return Err(RecordError::Corrupt);
    }
    Ok(CellFrame {
        cell_index,
        total_cells,
        served,
        workload,
        pipeline,
        model,
        report,
        compute_micros,
    })
}

// --- completion -----------------------------------------------------------

/// The completion frame of a grid request: the assembled report (as its
/// canonical JSON serialisation, byte-identical to a local
/// `SecurityReport::to_json`) plus how the request was served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoneFrame {
    /// The full `SecurityReport` JSON document.
    pub report_json: String,
    /// Total cells of the request.
    pub cells: u32,
    /// Cells served from the grid store (zero simulation).
    pub warm_cells: u32,
    /// Cells computed because this request submitted them cold.
    pub computed_cells: u32,
    /// Cells coalesced onto another request's in-flight computation.
    pub coalesced_cells: u32,
    /// Reference traces recorded on behalf of this request (zero on a
    /// fully warm request).
    pub recordings: u32,
    /// End-to-end wall time of the request in microseconds.
    pub wall_micros: u64,
}

/// Encodes a [`DoneFrame`] payload.
#[must_use]
pub fn encode_done(done: &DoneFrame) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&done.report_json);
    w.u32(done.cells);
    w.u32(done.warm_cells);
    w.u32(done.computed_cells);
    w.u32(done.coalesced_cells);
    w.u32(done.recordings);
    w.u64(done.wall_micros);
    w.into_bytes()
}

/// Decodes a [`DoneFrame`] payload.
///
/// # Errors
///
/// [`RecordError::Corrupt`] on any malformed byte sequence.
pub fn decode_done(payload: &[u8]) -> Result<DoneFrame, RecordError> {
    let mut r = Reader::new(payload);
    let done = DoneFrame {
        report_json: r.str()?,
        cells: r.u32()?,
        warm_cells: r.u32()?,
        computed_cells: r.u32()?,
        coalesced_cells: r.u32()?,
        recordings: r.u32()?,
        wall_micros: r.u64()?,
    };
    if !r.is_exhausted() {
        return Err(RecordError::Corrupt);
    }
    Ok(done)
}

// --- rejection ------------------------------------------------------------

/// The version-mismatch rejection: what the peer sent, what this daemon
/// speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectFrame {
    /// The protocol version the rejected frame carried.
    pub found: u32,
    /// The version the daemon speaks.
    pub expected: u32,
}

/// Encodes a [`RejectFrame`] payload.
#[must_use]
pub fn encode_reject(reject: RejectFrame) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(reject.found);
    w.u32(reject.expected);
    w.into_bytes()
}

/// Decodes a [`RejectFrame`] payload.
///
/// # Errors
///
/// [`RecordError::Corrupt`] on any malformed byte sequence.
pub fn decode_reject(payload: &[u8]) -> Result<RejectFrame, RecordError> {
    let mut r = Reader::new(payload);
    let reject = RejectFrame {
        found: r.u32()?,
        expected: r.u32()?,
    };
    if !r.is_exhausted() {
        return Err(RecordError::Corrupt);
    }
    Ok(reject)
}

// --- observability --------------------------------------------------------

/// The daemon's observability surface: a superset of the per-run
/// `MatrixStats` — lifetime request/cell counters, the job queue, the
/// shared trace store, recent per-cell compute times, and the persistent
/// store's own counters when one is attached.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// The daemon's protocol version.
    pub protocol_version: u32,
    /// Grid requests admitted.
    pub requests: u64,
    /// Cells requested across all grid requests.
    pub cells_requested: u64,
    /// Cells served from the grid store without simulation.
    pub warm_cells: u64,
    /// Cells computed on the worker pool.
    pub computed_cells: u64,
    /// Cells coalesced onto an identical in-flight computation
    /// (single-flight).
    pub coalesced_cells: u64,
    /// Reference traces recorded by the daemon (lifetime).
    pub recordings: u64,
    /// Requests refused or failed (validation, budgets, simulation
    /// errors, deadlines).
    pub request_errors: u64,
    /// Connections rejected for speaking a foreign protocol version.
    pub version_rejects: u64,
    /// Jobs currently waiting in the bounded queue.
    pub queue_depth: u64,
    /// Jobs currently executing on workers.
    pub in_flight: u64,
    /// Worker threads of the pool.
    pub workers: u64,
    /// Capacity of the bounded job queue.
    pub queue_capacity: u64,
    /// Jobs ever admitted to the pool.
    pub pool_submitted: u64,
    /// Jobs completed successfully.
    pub pool_completed: u64,
    /// Jobs whose fault-free reference run failed.
    pub pool_errored: u64,
    /// Jobs dropped unexecuted because the request deadline passed while
    /// they were still queued.
    pub pool_expired: u64,
    /// Injection compute time summed over all completed cells, in µs.
    pub pool_compute_micros: u64,
    /// Reference traces served from the in-memory trace store.
    pub trace_hits: u64,
    /// Reference traces loaded from the persistent store.
    pub trace_disk_hits: u64,
    /// Reference traces that had to be recorded.
    pub trace_misses: u64,
    /// Distinct programs decoded into micro-ops by the daemon's executors
    /// (v3; encoded as zero-left-off on v2 frames).
    pub decoded_programs: u64,
    /// Wall-clock microseconds spent in those decodes (v3).
    pub decode_micros: u64,
    /// Spine-snapshot restores across all computed cells (v3).
    pub snapshot_restores: u64,
    /// Reference-suffix steps the differential executors avoided
    /// executing (v3).
    pub suffix_steps_saved: u64,
    /// Compute µs of the most recently completed cells (newest last).
    pub recent_cell_micros: Vec<u64>,
    /// The attached grid store's runtime counters (`None` when the daemon
    /// runs without persistence).
    pub store: Option<StoreStats>,
}

impl StatsSnapshot {
    /// Serialises the snapshot as JSON (hand-rolled: the offline build has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let recent: Vec<String> = self.recent_cell_micros.iter().map(u64::to_string).collect();
        format!(
            "{{\"protocol_version\":{},\"requests\":{},\"cells_requested\":{},\
             \"warm_cells\":{},\"computed_cells\":{},\"coalesced_cells\":{},\
             \"recordings\":{},\"request_errors\":{},\"version_rejects\":{},\
             \"queue_depth\":{},\"in_flight\":{},\"workers\":{},\"queue_capacity\":{},\
             \"pool_submitted\":{},\"pool_completed\":{},\"pool_errored\":{},\
             \"pool_expired\":{},\"pool_compute_micros\":{},\"trace_hits\":{},\
             \"trace_disk_hits\":{},\"trace_misses\":{},\"decoded_programs\":{},\
             \"decode_micros\":{},\"snapshot_restores\":{},\"suffix_steps_saved\":{},\
             \"recent_cell_micros\":[{}],\"store\":{}}}",
            self.protocol_version,
            self.requests,
            self.cells_requested,
            self.warm_cells,
            self.computed_cells,
            self.coalesced_cells,
            self.recordings,
            self.request_errors,
            self.version_rejects,
            self.queue_depth,
            self.in_flight,
            self.workers,
            self.queue_capacity,
            self.pool_submitted,
            self.pool_completed,
            self.pool_errored,
            self.pool_expired,
            self.pool_compute_micros,
            self.trace_hits,
            self.trace_disk_hits,
            self.trace_misses,
            self.decoded_programs,
            self.decode_micros,
            self.snapshot_restores,
            self.suffix_steps_saved,
            recent.join(","),
            self.store
                .as_ref()
                .map_or_else(|| "null".to_string(), StoreStats::to_json),
        )
    }
}

/// Encodes a [`StatsSnapshot`] payload for a peer speaking `version`.
/// The four executor counters added in v3 are left off v2 payloads —
/// the decoders reject trailing bytes, so they cannot ride along.
#[must_use]
pub fn encode_stats(stats: &StatsSnapshot, version: u32) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(stats.protocol_version);
    for v in [
        stats.requests,
        stats.cells_requested,
        stats.warm_cells,
        stats.computed_cells,
        stats.coalesced_cells,
        stats.recordings,
        stats.request_errors,
        stats.version_rejects,
        stats.queue_depth,
        stats.in_flight,
        stats.workers,
        stats.queue_capacity,
        stats.pool_submitted,
        stats.pool_completed,
        stats.pool_errored,
        stats.pool_expired,
        stats.pool_compute_micros,
        stats.trace_hits,
        stats.trace_disk_hits,
        stats.trace_misses,
    ] {
        w.u64(v);
    }
    if version >= 3 {
        w.u64(stats.decoded_programs);
        w.u64(stats.decode_micros);
        w.u64(stats.snapshot_restores);
        w.u64(stats.suffix_steps_saved);
    }
    w.u64s(&stats.recent_cell_micros);
    match &stats.store {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            for v in [
                s.trace_hits,
                s.trace_misses,
                s.cell_hits,
                s.cell_misses,
                s.writes,
                s.write_skips,
                s.write_errors,
                s.corrupt_dropped,
                s.migrated,
            ] {
                w.u64(v);
            }
        }
    }
    w.into_bytes()
}

/// Decodes a [`StatsSnapshot`] payload encoded for a peer speaking
/// `version`; on a v2 payload the v3-only counters stay zero.
///
/// # Errors
///
/// [`RecordError::Corrupt`] on any malformed byte sequence.
pub fn decode_stats(payload: &[u8], version: u32) -> Result<StatsSnapshot, RecordError> {
    let mut r = Reader::new(payload);
    let mut stats = StatsSnapshot {
        protocol_version: r.u32()?,
        ..StatsSnapshot::default()
    };
    for field in [
        &mut stats.requests,
        &mut stats.cells_requested,
        &mut stats.warm_cells,
        &mut stats.computed_cells,
        &mut stats.coalesced_cells,
        &mut stats.recordings,
        &mut stats.request_errors,
        &mut stats.version_rejects,
        &mut stats.queue_depth,
        &mut stats.in_flight,
        &mut stats.workers,
        &mut stats.queue_capacity,
        &mut stats.pool_submitted,
        &mut stats.pool_completed,
        &mut stats.pool_errored,
        &mut stats.pool_expired,
        &mut stats.pool_compute_micros,
        &mut stats.trace_hits,
        &mut stats.trace_disk_hits,
        &mut stats.trace_misses,
    ] {
        *field = r.u64()?;
    }
    if version >= 3 {
        stats.decoded_programs = r.u64()?;
        stats.decode_micros = r.u64()?;
        stats.snapshot_restores = r.u64()?;
        stats.suffix_steps_saved = r.u64()?;
    }
    stats.recent_cell_micros = r.u64s()?;
    stats.store = match r.u8()? {
        0 => None,
        1 => {
            let mut s = StoreStats::default();
            for field in [
                &mut s.trace_hits,
                &mut s.trace_misses,
                &mut s.cell_hits,
                &mut s.cell_misses,
                &mut s.writes,
                &mut s.write_skips,
                &mut s.write_errors,
                &mut s.corrupt_dropped,
                &mut s.migrated,
            ] {
                *field = r.u64()?;
            }
            Some(s)
        }
        _ => return Err(RecordError::Corrupt),
    };
    if !r.is_exhausted() {
        return Err(RecordError::Corrupt);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> GridRequest {
        GridRequest {
            priority: 7,
            trials: 500,
            max_steps: 200_000,
            deadline_millis: 30_000,
            workloads: vec!["integer_compare".to_string(), "crc32".to_string()],
            variants: vec!["unprotected".to_string(), "prototype".to_string()],
            models: vec!["skip".to_string(), "branch-invert".to_string()],
            cold: true,
        }
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let payload = encode_grid_request(&sample_request());
        let mut wire = Vec::new();
        write_frame(&mut wire, REQ_GRID, &payload).expect("writes");
        let frame = read_frame(&mut wire.as_slice()).expect("reads");
        assert_eq!(frame.kind, REQ_GRID);
        assert_eq!(
            decode_grid_request(&frame.payload).expect("decodes"),
            sample_request()
        );
    }

    #[test]
    fn foreign_versions_and_damage_are_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, REQ_STATS, b"").expect("writes");

        let mut foreign = wire.clone();
        foreign[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut foreign.as_slice()),
            Err(WireError::VersionMismatch {
                found: 9,
                expected: PROTOCOL_VERSION
            })
        ));

        let mut magic = wire.clone();
        magic[0] = b'X';
        assert!(matches!(
            read_frame(&mut magic.as_slice()),
            Err(WireError::Corrupt)
        ));

        let mut payload = Vec::new();
        write_frame(&mut payload, REQ_GRID, b"data").expect("writes");
        let last = payload.len() - 1;
        payload[last] ^= 1;
        assert!(matches!(
            read_frame(&mut payload.as_slice()),
            Err(WireError::Corrupt)
        ));

        let mut oversized = wire;
        oversized[9..17].copy_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut oversized.as_slice()),
            Err(WireError::Corrupt)
        ));

        assert!(matches!(
            read_frame(&mut [0u8; 3].as_slice()),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn grid_request_payloads_reject_trailing_garbage() {
        let mut payload = encode_grid_request(&sample_request());
        payload.push(0);
        assert_eq!(decode_grid_request(&payload), Err(RecordError::Corrupt));
        assert_eq!(decode_grid_request(&[1, 2]), Err(RecordError::Corrupt));
    }

    #[test]
    fn done_reject_and_stats_payloads_round_trip() {
        let done = DoneFrame {
            report_json: "{\"cells\":[]}".to_string(),
            cells: 12,
            warm_cells: 7,
            computed_cells: 3,
            coalesced_cells: 2,
            recordings: 4,
            wall_micros: 123_456,
        };
        assert_eq!(decode_done(&encode_done(&done)).expect("decodes"), done);

        let reject = RejectFrame {
            found: 3,
            expected: PROTOCOL_VERSION,
        };
        assert_eq!(
            decode_reject(&encode_reject(reject)).expect("decodes"),
            reject
        );

        let stats = StatsSnapshot {
            protocol_version: PROTOCOL_VERSION,
            requests: 5,
            cells_requested: 60,
            warm_cells: 40,
            computed_cells: 15,
            coalesced_cells: 5,
            recordings: 6,
            pool_expired: 4,
            decoded_programs: 9,
            decode_micros: 1_234,
            snapshot_restores: 77,
            suffix_steps_saved: 88_888,
            recent_cell_micros: vec![10, 20, 30],
            store: Some(StoreStats {
                cell_hits: 40,
                migrated: 2,
                ..StoreStats::default()
            }),
            ..StatsSnapshot::default()
        };
        let decoded = decode_stats(&encode_stats(&stats, PROTOCOL_VERSION), PROTOCOL_VERSION)
            .expect("decodes");
        assert_eq!(decoded, stats);
        assert!(decoded.to_json().contains("\"coalesced_cells\":5"));
        assert!(decoded.to_json().contains("\"pool_expired\":4"));
        assert!(decoded.to_json().contains("\"migrated\":2"));
        assert!(decoded.to_json().contains("\"decoded_programs\":9"));
        assert!(decoded.to_json().contains("\"decode_micros\":1234"));
        assert!(decoded.to_json().contains("\"snapshot_restores\":77"));
        assert!(decoded.to_json().contains("\"suffix_steps_saved\":88888"));

        let stripped = StatsSnapshot::default();
        assert_eq!(
            decode_stats(&encode_stats(&stripped, PROTOCOL_VERSION), PROTOCOL_VERSION)
                .expect("decodes"),
            stripped
        );
        assert!(stripped.to_json().contains("\"store\":null"));
    }

    #[test]
    fn v2_stats_payloads_drop_the_executor_counters_cleanly() {
        let stats = StatsSnapshot {
            protocol_version: PROTOCOL_VERSION,
            requests: 3,
            decoded_programs: 9,
            decode_micros: 1_234,
            snapshot_restores: 77,
            suffix_steps_saved: 88_888,
            recent_cell_micros: vec![42],
            ..StatsSnapshot::default()
        };
        // A v2 payload carries no executor counters: the decoder (told it
        // is v2) leaves them zero, and every other field round-trips.
        let v2 = encode_stats(&stats, 2);
        let decoded = decode_stats(&v2, 2).expect("decodes");
        assert_eq!(decoded.requests, 3);
        assert_eq!(decoded.recent_cell_micros, vec![42]);
        assert_eq!(decoded.decoded_programs, 0);
        assert_eq!(decoded.suffix_steps_saved, 0);
        // The two layouts genuinely differ — the fields are not silently
        // appended where a v2 decoder would choke on them.
        assert_eq!(
            encode_stats(&stats, PROTOCOL_VERSION).len(),
            v2.len() + 4 * 8
        );
        // Mismatched framing fails cleanly instead of misparsing.
        assert_eq!(
            decode_stats(&v2, PROTOCOL_VERSION),
            Err(RecordError::Corrupt)
        );
    }

    #[test]
    fn frames_of_every_served_version_are_accepted() {
        for version in [MIN_PROTOCOL_VERSION, PROTOCOL_VERSION] {
            let mut wire = Vec::new();
            write_frame_versioned(&mut wire, version, REQ_STATS, b"").expect("writes");
            let frame = read_frame(&mut wire.as_slice()).expect("reads");
            assert_eq!(frame.version, version);
            assert_eq!(frame.kind, REQ_STATS);
        }
        // One below the floor and one above the ceiling are both foreign.
        for version in [MIN_PROTOCOL_VERSION - 1, PROTOCOL_VERSION + 1] {
            let mut wire = Vec::new();
            write_frame_versioned(&mut wire, version, REQ_STATS, b"").expect("writes");
            assert!(matches!(
                read_frame(&mut wire.as_slice()),
                Err(WireError::VersionMismatch { found, expected: PROTOCOL_VERSION })
                    if found == version
            ));
        }
    }
}
