//! `secbranch-gridd` — a multi-client fault-campaign grid daemon with
//! streaming results.
//!
//! One [`GridDaemon`] serves security grids (workloads × protection
//! variants × fault models, named through a fixed [`catalog`]) to any
//! number of concurrent clients over TCP or Unix-domain sockets, speaking
//! a versioned, CRC-checked binary [`protocol`] built from the same
//! primitives as the on-disk SBGR store format. Three properties define
//! the service:
//!
//! * **Warm grids do zero simulation.** Every cell is content-addressed by
//!   `(artifact fingerprint, fault-model fingerprint, entry, args)` —
//!   bit-deterministic compilation makes the fingerprint a proof of
//!   identity — so a cell present in the attached persistent
//!   [`GridStore`](secbranch::store::GridStore) streams to the client
//!   immediately, byte-identical to a freshly computed one (and to a local
//!   `Session::security_matrix_with` run of the same grid).
//! * **Cold cells are computed exactly once.** Identical cells requested
//!   concurrently by different clients coalesce onto one in-flight
//!   computation (single-flight); everything cold is scheduled onto one
//!   shared, bounded, priority-ordered
//!   [`ExecutorPool`](secbranch::campaign::ExecutorPool).
//! * **Degradation is per-request.** Unknown names, over-budget grids,
//!   failing builds, blown deadlines and foreign protocol versions each
//!   answer one request (or one connection) with a structured error while
//!   the daemon keeps serving — and because results are content-addressed,
//!   retrying any failed request is idempotent.
//!
//! ```no_run
//! use secbranch_gridd::{DaemonConfig, GridClient, GridDaemon, GridRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let daemon = GridDaemon::bind("127.0.0.1:0", DaemonConfig::default())?;
//! let addr = daemon.local_addr().to_string();
//! std::thread::spawn(move || daemon.run());
//!
//! let mut client = GridClient::connect(&addr)?;
//! let done = client.request_grid(
//!     &GridRequest {
//!         priority: 0,
//!         trials: 100,
//!         max_steps: 200_000,
//!         deadline_millis: 0,
//!         workloads: vec!["integer_compare".into()],
//!         variants: vec!["unprotected".into(), "prototype".into()],
//!         models: vec!["skip".into(), "branch-invert".into()],
//!         cold: false,
//!     },
//!     |cell| eprintln!("cell {}/{} {}", cell.cell_index + 1, cell.total_cells, cell.served.label()),
//! )?;
//! println!("{}", done.report_json);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod client;
mod daemon;
pub mod protocol;
mod transport;

pub use client::{ClientError, GridClient};
pub use daemon::{DaemonConfig, GridDaemon};
pub use protocol::{
    CellFrame, DoneFrame, GridRequest, RejectFrame, Served, StatsSnapshot, WireError,
    PROTOCOL_VERSION,
};
