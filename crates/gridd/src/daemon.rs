//! The [`GridDaemon`]: many clients, one fault-space grid.
//!
//! One daemon owns one [`ExecutorPool`] (over one shared trace store,
//! optionally backed by a persistent [`GridStore`]) and serves grid
//! requests from any number of concurrent connections. Per requested cell,
//! admission takes exactly one of three paths, decided under one lock so
//! the paths cannot race each other:
//!
//! 1. **warm** — the persistent store already holds the cell: it streams
//!    to the client immediately, with zero simulation;
//! 2. **coalesced** — an identical cell (same artifact fingerprint, model
//!    fingerprint, entry, arguments) is already in flight for another
//!    request: this request subscribes to that computation instead of
//!    submitting its own (single-flight);
//! 3. **cold** — the cell is submitted to the pool at the request's
//!    priority; on completion the result fans out to every subscriber and
//!    the in-flight entry is removed.
//!
//! The ordering makes "each cold cell is computed exactly once" strict for
//! one daemon over one store: the executor writes a computed cell back to
//! the store *before* the completion callback runs, and the callback
//! removes the in-flight entry *before* any later admission can probe the
//! store — so a cell is either in flight (subsequent requests coalesce) or
//! persisted (they hit the store), never neither.
//!
//! Degradation is per-request, never daemon-wide: malformed or oversized
//! requests, unknown catalog names, failing builds and blown deadlines
//! each answer that request with an error frame and leave the connection
//! (and every other request) untouched. A peer speaking a foreign protocol
//! version is told both versions and disconnected. Because cells are
//! content-addressed, a client retrying after any of these is idempotent —
//! whatever was computed before the failure is served warm on the retry.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use secbranch::campaign::{
    CampaignReport, CellKey, CellRequest, ExecutorPool, FaultModel, GridBackend, MatrixCellResult,
    OwnedModule, PoolError, SimulatorSource, TraceFetch, TraceKey, TraceStore,
};
use secbranch::obs::{Histogram, Registry};
use secbranch::store::GridStore;
use secbranch::{MatrixStats, Pipeline, SecurityCell, SecurityReport, Session, Workload};

use crate::catalog;
use crate::protocol::{
    decode_grid_request, encode_cell, encode_done, encode_reject, encode_stats, read_frame,
    write_frame, write_frame_versioned, CellFrame, DoneFrame, GridRequest, RejectFrame, Served,
    StatsSnapshot, WireError, PROTOCOL_VERSION, REQ_GRID, REQ_METRICS, REQ_SHUTDOWN, REQ_STATS,
    RESP_CELL, RESP_DONE, RESP_ERROR, RESP_METRICS, RESP_REJECT, RESP_STATS,
};
use crate::transport::{self, Listener, Stream};

/// How many per-cell compute times the daemon retains for the `STATS`
/// surface.
const RECENT_CELLS: usize = 64;

/// Daemon tuning knobs; [`DaemonConfig::default`] is sized for tests and
/// single-host service.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker threads of the shared pool (`0` = available parallelism).
    pub workers: usize,
    /// Bounded job-queue capacity; admission blocks (backpressure) while
    /// the queue is full.
    pub queue_capacity: usize,
    /// Persistent grid store directory (`None` = in-memory only: traces
    /// are still memoised and in-flight cells still coalesce, but nothing
    /// survives the daemon).
    pub store_dir: Option<PathBuf>,
    /// Largest cell count one grid request may span.
    pub max_cells_per_request: usize,
    /// Largest per-execution step budget a request may ask for.
    pub max_steps_cap: u64,
    /// When non-zero, every computed cell whose injection compute time
    /// reaches this many microseconds is logged to stderr as one
    /// structured line (cell key, compute µs, trace source, snapshot
    /// restores). `0` (the default) disables the log.
    pub slow_cell_micros: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 0,
            queue_capacity: 256,
            store_dir: None,
            max_cells_per_request: 1024,
            max_steps_cap: 10_000_000,
            slow_cell_micros: 0,
        }
    }
}

/// What a completed cold cell fans out to its subscribers.
#[derive(Clone)]
struct Delivered {
    report: CampaignReport,
    compute_micros: u64,
    /// The executor had to record the reference trace.
    recorded: bool,
    /// The executor found the cell in the store after all (a race with an
    /// external writer; never another request of this daemon).
    cell_hit: bool,
}

type CellOutcome = (u32, Result<Delivered, String>);

struct Waiter {
    index: u32,
    tx: mpsc::Sender<CellOutcome>,
}

struct Shared {
    config: DaemonConfig,
    pool: ExecutorPool,
    /// Build cache: each catalog artifact is compiled once per daemon.
    session: Mutex<Session>,
    grid: Option<Arc<GridStore>>,
    /// Single-flight registry: cell identity → subscribers of the one
    /// in-flight computation.
    inflight: Mutex<HashMap<CellKey, Vec<Waiter>>>,
    recent: Mutex<VecDeque<u64>>,
    shutdown: AtomicBool,
    addr: String,
    requests: AtomicU64,
    cells_requested: AtomicU64,
    warm_cells: AtomicU64,
    computed_cells: AtomicU64,
    coalesced_cells: AtomicU64,
    recordings: AtomicU64,
    request_errors: AtomicU64,
    version_rejects: AtomicU64,
    snapshot_restores: AtomicU64,
    suffix_steps_saved: AtomicU64,
    decoded_programs: AtomicU64,
    decode_micros: AtomicU64,
    /// Program identities (`Arc` data pointers of the daemon's build-cached
    /// programs) whose decode cost is already accounted, so re-runs of an
    /// artifact never double-count the one decode it paid.
    decode_seen: Mutex<HashSet<usize>>,
    /// Per-fault-model latency histograms of computed cells, for the
    /// `METRICS` exposition. Derived observability data only.
    model_micros: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// The daemon: bind, then [`GridDaemon::run`] the accept loop (usually on
/// its own thread). A `SHUTDOWN` request from any client stops the loop.
pub struct GridDaemon {
    listener: Listener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for GridDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridDaemon")
            .field("addr", &self.shared.addr)
            .finish_non_exhaustive()
    }
}

impl GridDaemon {
    /// Binds `addr` (`unix:<path>` or a TCP address; `127.0.0.1:0` binds
    /// an ephemeral port, resolved in [`GridDaemon::local_addr`]) and
    /// opens the configured store.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; a store directory that cannot be opened
    /// is reported as [`io::ErrorKind::InvalidData`].
    pub fn bind(addr: &str, config: DaemonConfig) -> io::Result<GridDaemon> {
        let grid = match &config.store_dir {
            Some(dir) => Some(Arc::new(GridStore::open(dir).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("grid store: {e}"))
            })?)),
            None => None,
        };
        let store = Arc::new(TraceStore::new());
        if let Some(grid) = &grid {
            store.attach_backend(Arc::clone(grid) as Arc<dyn GridBackend>);
        }
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            config.workers
        };
        let pool = ExecutorPool::new(store, workers, config.queue_capacity);
        let (listener, addr) = Listener::bind(addr)?;
        Ok(GridDaemon {
            listener,
            shared: Arc::new(Shared {
                config,
                pool,
                session: Mutex::new(Session::new()),
                grid,
                inflight: Mutex::new(HashMap::new()),
                recent: Mutex::new(VecDeque::new()),
                shutdown: AtomicBool::new(false),
                addr,
                requests: AtomicU64::new(0),
                cells_requested: AtomicU64::new(0),
                warm_cells: AtomicU64::new(0),
                computed_cells: AtomicU64::new(0),
                coalesced_cells: AtomicU64::new(0),
                recordings: AtomicU64::new(0),
                request_errors: AtomicU64::new(0),
                version_rejects: AtomicU64::new(0),
                snapshot_restores: AtomicU64::new(0),
                suffix_steps_saved: AtomicU64::new(0),
                decoded_programs: AtomicU64::new(0),
                decode_micros: AtomicU64::new(0),
                decode_seen: Mutex::new(HashSet::new()),
                model_micros: Mutex::new(BTreeMap::new()),
            }),
        })
    }

    /// The bound address in the syntax clients connect with (ephemeral TCP
    /// ports resolved).
    #[must_use]
    pub fn local_addr(&self) -> &str {
        &self.shared.addr
    }

    /// Serves connections until a client sends `SHUTDOWN`. Each connection
    /// is handled on its own thread; requests already admitted when the
    /// shutdown arrives run to completion (the pool outlives the accept
    /// loop through the handler threads' shared handle).
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures other than a shutdown.
    pub fn run(self) -> io::Result<()> {
        loop {
            let stream = match self.listener.accept() {
                Ok(stream) => stream,
                Err(_) if self.shared.shutdown.load(Ordering::SeqCst) => return Ok(()),
                Err(e) => return Err(e),
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(&shared, stream));
        }
    }
}

/// One connection: a loop of request frames until the peer disconnects,
/// breaks framing, or speaks the wrong protocol version. Every reply is
/// framed (and, for stats, encoded) at the peer's version, so a
/// [`MIN_PROTOCOL_VERSION`](crate::protocol::MIN_PROTOCOL_VERSION) client
/// keeps working against a newer daemon.
fn handle_connection(shared: &Arc<Shared>, mut stream: Stream) {
    loop {
        match read_frame(&mut stream) {
            Ok(frame) => {
                let version = frame.version;
                let served = match frame.kind {
                    REQ_GRID => handle_grid(shared, &mut stream, version, &frame.payload),
                    REQ_STATS => write_frame_versioned(
                        &mut stream,
                        version,
                        RESP_STATS,
                        &encode_stats(&snapshot(shared), version),
                    ),
                    REQ_METRICS if version >= 3 => write_frame_versioned(
                        &mut stream,
                        version,
                        RESP_METRICS,
                        render_metrics(shared).as_bytes(),
                    ),
                    REQ_METRICS => {
                        // The frame kind arrived in v3: a v2 peer asking
                        // for it gets a machine-readable rejection of the
                        // *frame* — the connection stays usable.
                        shared.version_rejects.fetch_add(1, Ordering::Relaxed);
                        write_frame_versioned(
                            &mut stream,
                            version,
                            RESP_REJECT,
                            &encode_reject(RejectFrame {
                                found: version,
                                expected: PROTOCOL_VERSION,
                            }),
                        )
                    }
                    REQ_SHUTDOWN => {
                        let _ = write_frame_versioned(
                            &mut stream,
                            version,
                            RESP_STATS,
                            &encode_stats(&snapshot(shared), version),
                        );
                        shared.shutdown.store(true, Ordering::SeqCst);
                        // The accept loop is blocked in accept(); a
                        // throwaway connection wakes it to observe the flag.
                        let _ = transport::connect(&shared.addr);
                        return;
                    }
                    kind => {
                        let message = format!("unsupported request kind {kind}");
                        write_frame_versioned(&mut stream, version, RESP_ERROR, message.as_bytes())
                    }
                };
                if served.is_err() {
                    return; // the response path failed: drop the connection
                }
            }
            Err(WireError::VersionMismatch { found, expected }) => {
                shared.version_rejects.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    &mut stream,
                    RESP_REJECT,
                    &encode_reject(RejectFrame { found, expected }),
                );
                return;
            }
            Err(WireError::Corrupt) => {
                // Framing is lost: report and disconnect rather than
                // misparse everything after the damage.
                let _ = write_frame(&mut stream, RESP_ERROR, b"malformed frame");
                return;
            }
            Err(WireError::Io(_)) => return, // peer gone
        }
    }
}

/// A validated grid request: resolved axes plus per-(workload, pipeline)
/// artifact identities.
struct Plan {
    workloads: Vec<Workload>,
    pipelines: Vec<Pipeline>,
    models: Vec<Arc<dyn FaultModel + Send + Sync>>,
    /// Per workload × pipeline (workload-major): the simulator source, the
    /// artifact fingerprint and the trace key of the reference execution.
    artifacts: Vec<(Arc<OwnedModule>, String, TraceKey)>,
}

/// Resolves and validates a request against the catalog and the daemon's
/// budgets; any failure is a client-facing message.
fn plan_request(shared: &Shared, request: &GridRequest) -> Result<Plan, String> {
    if request.max_steps == 0 || request.max_steps > shared.config.max_steps_cap {
        return Err(format!(
            "max_steps must be in 1..={} (got {})",
            shared.config.max_steps_cap, request.max_steps
        ));
    }
    let workloads: Vec<Workload> = request
        .workloads
        .iter()
        .map(|name| catalog::workload(name).ok_or_else(|| format!("unknown workload {name:?}")))
        .collect::<Result<_, _>>()?;
    let pipelines: Vec<Pipeline> = request
        .variants
        .iter()
        .map(|label| {
            catalog::pipeline(label, request.max_steps)
                .ok_or_else(|| format!("unknown protection variant {label:?}"))
        })
        .collect::<Result<_, _>>()?;
    let models: Vec<Arc<dyn FaultModel + Send + Sync>> = request
        .models
        .iter()
        .map(|name| {
            catalog::model(name, request.trials)
                .ok_or_else(|| format!("unknown fault model {name:?}"))
        })
        .collect::<Result<_, _>>()?;
    if workloads.is_empty() || pipelines.is_empty() || models.is_empty() {
        return Err("a grid request needs at least one workload, variant and model".to_string());
    }
    // Duplicate *resolved* labels are rejected rather than disambiguated:
    // two spellings of one variant (`prototype`/`ancode`) would otherwise
    // produce a report no local run can reproduce.
    for (what, labels) in [
        (
            "workload",
            workloads.iter().map(|w| w.name.clone()).collect::<Vec<_>>(),
        ),
        (
            "variant",
            pipelines
                .iter()
                .map(|p| p.label().to_string())
                .collect::<Vec<_>>(),
        ),
        ("model", models.iter().map(|m| m.name()).collect::<Vec<_>>()),
    ] {
        let mut seen = HashSet::new();
        for label in labels {
            if !seen.insert(label.clone()) {
                return Err(format!("duplicate {what} {label:?} in request"));
            }
        }
    }
    let cells = workloads.len() * pipelines.len() * models.len();
    if cells > shared.config.max_cells_per_request {
        return Err(format!(
            "request spans {cells} cells, over the per-request limit of {}",
            shared.config.max_cells_per_request
        ));
    }

    // Compile (or fetch from the daemon's build cache) every artifact up
    // front, like a local security matrix does.
    let mut artifacts = Vec::with_capacity(workloads.len() * pipelines.len());
    let mut session = shared.session.lock().expect("session poisoned");
    for workload in &workloads {
        for pipeline in &pipelines {
            let artifact = session
                .artifact(&workload.name, &workload.module, pipeline)
                .map_err(|e| format!("build failed for {:?}: {e}", workload.name))?;
            let source = Arc::new(OwnedModule {
                compiled: artifact.compiled().clone(),
                memory_size: artifact.sim().memory_size,
            });
            let fingerprint = artifact.artifact_fingerprint().to_string();
            let key = artifact.trace_key(&workload.entry, &workload.args);
            artifacts.push((source, fingerprint, key));
        }
    }
    drop(session);
    Ok(Plan {
        workloads,
        pipelines,
        models,
        artifacts,
    })
}

/// Serves one grid request end to end: admission (warm cells stream
/// immediately), the drain loop (cold and coalesced cells stream in
/// completion order), then the assembled report.
///
/// `Ok` means the connection is still usable — request-level failures
/// answer with an error frame and return `Ok`. `Err` is a transport
/// failure.
fn handle_grid(
    shared: &Arc<Shared>,
    stream: &mut Stream,
    version: u32,
    payload: &[u8],
) -> io::Result<()> {
    let _span = secbranch::obs::span("request");
    let started = Instant::now();
    let request = match decode_grid_request(payload) {
        Ok(request) => request,
        Err(_) => return refuse(shared, stream, version, "malformed grid request payload"),
    };
    let plan = match plan_request(shared, &request) {
        Ok(plan) => plan,
        Err(message) => return refuse(shared, stream, version, &message),
    };
    shared.requests.fetch_add(1, Ordering::Relaxed);

    let total = (plan.workloads.len() * plan.pipelines.len() * plan.models.len()) as u32;
    shared
        .cells_requested
        .fetch_add(u64::from(total), Ordering::Relaxed);
    let (tx, rx) = mpsc::channel::<CellOutcome>();
    let mut roles: Vec<Served> = Vec::with_capacity(total as usize);
    let mut reports: Vec<Option<CampaignReport>> = vec![None; total as usize];
    let mut compute_micros: Vec<u64> = vec![0; total as usize];
    let mut pending = 0u32;
    let mut admission_failure: Option<String> = None;
    // The request's deadline governs both sides of a cold cell: the pool
    // expires still-queued jobs past it, and the drain loop below stops
    // waiting at the same instant.
    let deadline = (request.deadline_millis > 0)
        .then(|| started + Duration::from_millis(request.deadline_millis));

    // Admission, in canonical (workload-major, pipeline-then-model) order.
    let admission_span = secbranch::obs::span_with("admission", || format!("{total} cells"));
    'admission: for (windex, workload) in plan.workloads.iter().enumerate() {
        for (pindex, pipeline) in plan.pipelines.iter().enumerate() {
            let artifact_index = windex * plan.pipelines.len() + pindex;
            let (source, fingerprint, trace_key) = &plan.artifacts[artifact_index];
            for (mindex, model) in plan.models.iter().enumerate() {
                let index = (artifact_index * plan.models.len() + mindex) as u32;
                let cell_key = CellKey::new(
                    fingerprint.clone(),
                    model.fingerprint(),
                    workload.entry.clone(),
                    &workload.args,
                );
                // One lock hold covers the in-flight check, the store
                // probe and the registration — the three admission paths
                // cannot interleave for one cell identity.
                let mut inflight = shared.inflight.lock().expect("inflight poisoned");
                if let Some(waiters) = inflight.get_mut(&cell_key) {
                    waiters.push(Waiter {
                        index,
                        tx: tx.clone(),
                    });
                    drop(inflight);
                    roles.push(Served::Coalesced);
                    shared.coalesced_cells.fetch_add(1, Ordering::Relaxed);
                    pending += 1;
                } else if let Some(report) = shared
                    .grid
                    .as_deref()
                    .filter(|_| !request.cold)
                    .and_then(|grid| grid.load_cell(&cell_key))
                {
                    drop(inflight);
                    roles.push(Served::StoreWarm);
                    shared.warm_cells.fetch_add(1, Ordering::Relaxed);
                    write_frame_versioned(
                        stream,
                        version,
                        RESP_CELL,
                        &encode_cell(&CellFrame {
                            cell_index: index,
                            total_cells: total,
                            served: Served::StoreWarm,
                            workload: workload.name.clone(),
                            pipeline: pipeline.label().to_string(),
                            model: model.name(),
                            report: report.clone(),
                            compute_micros: 0,
                        }),
                    )?;
                    reports[index as usize] = Some(report);
                } else {
                    inflight.insert(
                        cell_key.clone(),
                        vec![Waiter {
                            index,
                            tx: tx.clone(),
                        }],
                    );
                    drop(inflight);
                    roles.push(Served::Computed);
                    pending += 1;
                    let cell_request = CellRequest {
                        source: Arc::clone(source) as Arc<dyn SimulatorSource + Send + Sync>,
                        key: trace_key.clone(),
                        entry: workload.entry.clone(),
                        args: workload.args.clone(),
                        max_steps: request.max_steps,
                        model: Arc::clone(model),
                        deadline,
                        cold: request.cold,
                    };
                    let callback_shared = Arc::clone(shared);
                    let callback_key = cell_key.clone();
                    let callback_model = model.name();
                    let accepted = shared.pool.submit(
                        request.priority,
                        cell_request,
                        Box::new(move |result| {
                            complete_cell(&callback_shared, &callback_key, &callback_model, result);
                        }),
                    );
                    if !accepted {
                        // Unregister the cell and fail anyone who coalesced
                        // onto it in the meantime — an in-flight entry with
                        // no job behind it would strand its subscribers.
                        let stranded = shared
                            .inflight
                            .lock()
                            .expect("inflight poisoned")
                            .remove(&cell_key)
                            .unwrap_or_default();
                        let message = "daemon is shutting down".to_string();
                        for waiter in stranded {
                            let _ = waiter.tx.send((waiter.index, Err(message.clone())));
                        }
                        admission_failure = Some(message);
                        break 'admission;
                    }
                }
            }
        }
    }
    drop(tx);
    drop(admission_span);

    // Drain: stream each remaining cell as it completes, under the
    // request's deadline.
    let stream_span = secbranch::obs::span_with("stream", || format!("{pending} pending"));
    let mut failure = admission_failure;
    let mut recordings = 0u32;
    while failure.is_none() && pending > 0 {
        let outcome = match deadline {
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    failure = Some(deadline_message(&request));
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(outcome) => outcome,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        failure = Some(deadline_message(&request));
                        break;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        failure = Some("cell computation abandoned".to_string());
                        break;
                    }
                }
            }
            None => match rx.recv() {
                Ok(outcome) => outcome,
                Err(_) => {
                    failure = Some("cell computation abandoned".to_string());
                    break;
                }
            },
        };
        pending -= 1;
        let (index, result) = outcome;
        match result {
            Ok(delivered) => {
                let role = roles[index as usize];
                // A submitter whose executor run hit the store after all
                // (external writer race) did zero simulation: report it
                // warm, like the admission probe would have.
                let served = if role == Served::Computed && delivered.cell_hit {
                    Served::StoreWarm
                } else {
                    role
                };
                roles[index as usize] = served;
                if served == Served::Computed {
                    compute_micros[index as usize] = delivered.compute_micros;
                    if delivered.recorded {
                        recordings += 1;
                    }
                }
                let (workload, pipeline, model) = cell_labels(&plan, index);
                write_frame_versioned(
                    stream,
                    version,
                    RESP_CELL,
                    &encode_cell(&CellFrame {
                        cell_index: index,
                        total_cells: total,
                        served,
                        workload,
                        pipeline,
                        model,
                        report: delivered.report.clone(),
                        compute_micros: compute_micros[index as usize],
                    }),
                )?;
                reports[index as usize] = Some(delivered.report);
            }
            Err(message) => {
                failure = Some(message);
            }
        }
    }
    drop(stream_span);
    if let Some(message) = failure {
        return refuse(shared, stream, version, &message);
    }

    // Decode-cost accounting, exactly like a local matrix run: each
    // build-cached program decodes at most once no matter how many
    // requests exercise it, so the counters only move the first time a
    // decoded program is seen.
    {
        let mut seen = shared.decode_seen.lock().expect("decode_seen poisoned");
        for (source, _, _) in &plan.artifacts {
            let program = &source.compiled.program;
            let identity = Arc::as_ptr(program) as *const () as usize;
            if seen.contains(&identity) {
                continue;
            }
            // A program served entirely warm has not decoded yet; leave it
            // unmarked so the request that eventually decodes it counts it.
            if let Some((_, micros)) = program.decode_stats() {
                seen.insert(identity);
                shared.decoded_programs.fetch_add(1, Ordering::Relaxed);
                shared.decode_micros.fetch_add(micros, Ordering::Relaxed);
            }
        }
    }

    // Assemble the canonical report — identical in shape (and bytes) to a
    // local `Session::security_matrix_with` over the same grid.
    let wall_micros = started.elapsed().as_micros() as u64;
    let mut warm = 0u32;
    let mut computed = 0u32;
    let mut coalesced = 0u32;
    for role in &roles {
        match role {
            Served::StoreWarm => warm += 1,
            Served::Computed => computed += 1,
            Served::Coalesced => coalesced += 1,
        }
    }
    let pool_stats = shared.pool.stats();
    let report = SecurityReport {
        workloads: plan.workloads.iter().map(|w| w.name.clone()).collect(),
        pipelines: plan
            .pipelines
            .iter()
            .map(|p| p.label().to_string())
            .collect(),
        models: plan.models.iter().map(|m| m.name()).collect(),
        cells: reports
            .into_iter()
            .enumerate()
            .map(|(index, report)| {
                let (workload, pipeline, model) = cell_labels(&plan, index as u32);
                SecurityCell {
                    workload,
                    pipeline,
                    model,
                    report: report.expect("all cells delivered"),
                }
            })
            .collect(),
        stats: MatrixStats {
            threads: pool_stats.workers,
            trace_misses: u64::from(recordings),
            cell_hits: u64::from(warm + coalesced),
            cell_misses: u64::from(computed),
            total_wall_micros: wall_micros,
            cell_compute_micros: compute_micros,
            ..MatrixStats::default()
        },
    };
    write_frame_versioned(
        stream,
        version,
        RESP_DONE,
        &encode_done(&DoneFrame {
            report_json: report.to_json(),
            cells: total,
            warm_cells: warm,
            computed_cells: computed,
            coalesced_cells: coalesced,
            recordings,
            wall_micros,
        }),
    )
}

/// The canonical labels of cell `index` (workload-major,
/// pipeline-then-model order).
fn cell_labels(plan: &Plan, index: u32) -> (String, String, String) {
    let index = index as usize;
    let per_workload = plan.pipelines.len() * plan.models.len();
    let workload = &plan.workloads[index / per_workload];
    let pipeline = &plan.pipelines[(index % per_workload) / plan.models.len()];
    let model = &plan.models[index % plan.models.len()];
    (
        workload.name.clone(),
        pipeline.label().to_string(),
        model.name(),
    )
}

fn deadline_message(request: &GridRequest) -> String {
    format!(
        "deadline of {} ms exceeded before all cells completed",
        request.deadline_millis
    )
}

/// Answers a request-level failure and keeps the connection.
fn refuse(shared: &Shared, stream: &mut Stream, version: u32, message: &str) -> io::Result<()> {
    shared.request_errors.fetch_add(1, Ordering::Relaxed);
    write_frame_versioned(stream, version, RESP_ERROR, message.as_bytes())
}

/// Pool-callback side of single-flight: take the subscriber list (making
/// the cell's identity free again — the store already holds the result,
/// written back before this callback ran), account the outcome, fan out.
fn complete_cell(
    shared: &Shared,
    key: &CellKey,
    model_name: &str,
    result: Result<MatrixCellResult, PoolError>,
) {
    let waiters = shared
        .inflight
        .lock()
        .expect("inflight poisoned")
        .remove(key)
        .unwrap_or_default();
    let outcome: Result<Delivered, String> = match result {
        Ok(cell) => {
            if cell.cell_hit {
                shared.warm_cells.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.computed_cells.fetch_add(1, Ordering::Relaxed);
            }
            let recorded = cell.trace_fetch == Some(TraceFetch::Recorded);
            if recorded {
                shared.recordings.fetch_add(1, Ordering::Relaxed);
            }
            shared
                .snapshot_restores
                .fetch_add(cell.snapshot_restores, Ordering::Relaxed);
            shared
                .suffix_steps_saved
                .fetch_add(cell.suffix_steps_saved, Ordering::Relaxed);
            if !cell.cell_hit {
                shared
                    .model_micros
                    .lock()
                    .expect("model_micros poisoned")
                    .entry(model_name.to_string())
                    .or_insert_with(|| Arc::new(Histogram::new()))
                    .observe(cell.compute_micros);
            }
            let slow_after = shared.config.slow_cell_micros;
            if slow_after > 0 && !cell.cell_hit && cell.compute_micros >= slow_after {
                let trace_source = match cell.trace_fetch {
                    Some(TraceFetch::Memory) => "memory",
                    Some(TraceFetch::Disk) => "disk",
                    Some(TraceFetch::Recorded) => "recorded",
                    None => "none",
                };
                eprintln!(
                    "slow-cell artifact={} model={} entry={} args={:?} \
                     compute_micros={} trace_source={} snapshot_restores={}",
                    key.artifact,
                    model_name,
                    key.entry,
                    key.args,
                    cell.compute_micros,
                    trace_source,
                    cell.snapshot_restores,
                );
            }
            let mut recent = shared.recent.lock().expect("recent poisoned");
            if recent.len() == RECENT_CELLS {
                recent.pop_front();
            }
            recent.push_back(cell.compute_micros);
            drop(recent);
            Ok(Delivered {
                report: cell.report,
                compute_micros: cell.compute_micros,
                recorded,
                cell_hit: cell.cell_hit,
            })
        }
        // `Display` for `PoolError` already distinguishes a failing
        // reference run from a queue-deadline expiry.
        Err(e) => Err(e.to_string()),
    };
    for waiter in waiters {
        // A waiter whose request already failed (deadline, transport) has
        // dropped its receiver; the send just fails.
        let _ = waiter.tx.send((waiter.index, outcome.clone()));
    }
}

/// The `STATS` surface: daemon counters ∪ pool counters ∪ trace-store
/// counters ∪ persistent-store counters.
fn snapshot(shared: &Shared) -> StatsSnapshot {
    let pool = shared.pool.stats();
    let traces = shared.pool.store();
    StatsSnapshot {
        protocol_version: PROTOCOL_VERSION,
        requests: shared.requests.load(Ordering::Relaxed),
        cells_requested: shared.cells_requested.load(Ordering::Relaxed),
        warm_cells: shared.warm_cells.load(Ordering::Relaxed),
        computed_cells: shared.computed_cells.load(Ordering::Relaxed),
        coalesced_cells: shared.coalesced_cells.load(Ordering::Relaxed),
        recordings: shared.recordings.load(Ordering::Relaxed),
        request_errors: shared.request_errors.load(Ordering::Relaxed),
        version_rejects: shared.version_rejects.load(Ordering::Relaxed),
        queue_depth: pool.queued as u64,
        in_flight: pool.in_flight,
        workers: pool.workers as u64,
        queue_capacity: pool.capacity as u64,
        pool_submitted: pool.submitted,
        pool_completed: pool.completed,
        pool_errored: pool.errored,
        pool_expired: pool.expired,
        pool_compute_micros: pool.compute_micros,
        trace_hits: traces.hits(),
        trace_disk_hits: traces.disk_hits(),
        trace_misses: traces.misses(),
        decoded_programs: shared.decoded_programs.load(Ordering::Relaxed),
        decode_micros: shared.decode_micros.load(Ordering::Relaxed),
        snapshot_restores: shared.snapshot_restores.load(Ordering::Relaxed),
        suffix_steps_saved: shared.suffix_steps_saved.load(Ordering::Relaxed),
        recent_cell_micros: shared
            .recent
            .lock()
            .expect("recent poisoned")
            .iter()
            .copied()
            .collect(),
        store: shared.grid.as_ref().map(|grid| grid.stats()),
    }
}

/// The `METRICS` surface: every counter family of the daemon — its own
/// request/cell counters, the pool, the trace store, the persistent store
/// (when attached) and per-model compute-latency histograms — rendered as
/// a Prometheus-style text exposition. Derived observability data only;
/// nothing here feeds reports, fingerprints or persistence.
fn render_metrics(shared: &Shared) -> String {
    let mut registry = Registry::new();
    registry.counter(
        "secbranch_gridd_requests_total",
        shared.requests.load(Ordering::Relaxed),
    );
    registry.counter(
        "secbranch_gridd_cells_requested_total",
        shared.cells_requested.load(Ordering::Relaxed),
    );
    registry.counter(
        "secbranch_gridd_warm_cells_total",
        shared.warm_cells.load(Ordering::Relaxed),
    );
    registry.counter(
        "secbranch_gridd_computed_cells_total",
        shared.computed_cells.load(Ordering::Relaxed),
    );
    registry.counter(
        "secbranch_gridd_coalesced_cells_total",
        shared.coalesced_cells.load(Ordering::Relaxed),
    );
    registry.counter(
        "secbranch_gridd_recordings_total",
        shared.recordings.load(Ordering::Relaxed),
    );
    registry.counter(
        "secbranch_gridd_request_errors_total",
        shared.request_errors.load(Ordering::Relaxed),
    );
    registry.counter(
        "secbranch_gridd_version_rejects_total",
        shared.version_rejects.load(Ordering::Relaxed),
    );
    registry.counter(
        "secbranch_gridd_snapshot_restores_total",
        shared.snapshot_restores.load(Ordering::Relaxed),
    );
    registry.counter(
        "secbranch_gridd_suffix_steps_saved_total",
        shared.suffix_steps_saved.load(Ordering::Relaxed),
    );
    registry.counter(
        "secbranch_gridd_decoded_programs_total",
        shared.decoded_programs.load(Ordering::Relaxed),
    );
    registry.counter(
        "secbranch_gridd_decode_micros_total",
        shared.decode_micros.load(Ordering::Relaxed),
    );
    shared.pool.stats().register_into(&mut registry);
    shared.pool.store().register_into(&mut registry);
    if let Some(grid) = &shared.grid {
        grid.stats().register_into(&mut registry);
    }
    for (model, histogram) in shared
        .model_micros
        .lock()
        .expect("model_micros poisoned")
        .iter()
    {
        registry.histogram_with(
            "secbranch_cell_compute_micros",
            &[("model", model)],
            &histogram.snapshot(),
        );
    }
    registry.render_prometheus()
}
