//! Byte-stream transports behind one address syntax: `unix:<path>` binds or
//! connects a Unix-domain socket, anything else is a TCP address
//! (`127.0.0.1:0` binds an ephemeral port).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;

/// The `unix:` address prefix selecting Unix-domain sockets.
pub(crate) const UNIX_PREFIX: &str = "unix:";

/// One accepted or dialled connection.
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound server socket. The Unix variant remembers its path and removes
/// the socket file on drop.
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds `addr` and returns the listener plus the resolved address in
    /// the same syntax `connect` accepts (TCP ephemeral ports resolved).
    pub(crate) fn bind(addr: &str) -> io::Result<(Listener, String)> {
        if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            {
                // A stale socket file from a dead daemon would fail the
                // bind; a *live* daemon would have the file open, but two
                // daemons on one path is an operator error either way.
                let path = PathBuf::from(path);
                if path.exists() {
                    std::fs::remove_file(&path)?;
                }
                let listener = UnixListener::bind(&path)?;
                let resolved = format!("{UNIX_PREFIX}{}", path.display());
                return Ok((Listener::Unix(listener, path), resolved));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix-domain sockets are not available on this platform",
                ));
            }
        }
        let listener = TcpListener::bind(addr)?;
        let resolved = listener.local_addr()?.to_string();
        Ok((Listener::Tcp(listener), resolved))
    }

    /// Blocks for the next connection.
    pub(crate) fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Dials `addr` (same syntax as [`Listener::bind`]).
pub(crate) fn connect(addr: &str) -> io::Result<Stream> {
    if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
        #[cfg(unix)]
        return UnixStream::connect(path).map(Stream::Unix);
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this platform",
            ));
        }
    }
    TcpStream::connect(addr).map(Stream::Tcp)
}
