//! The [`ExecutorPool`]: a long-lived, bounded, priority-ordered job queue
//! in front of the matrix executor.
//!
//! [`crate::MatrixExecutor::run`] is a one-shot call: it borrows its jobs,
//! runs the whole batch, and returns. A service that accepts grids from many
//! clients needs the opposite shape — jobs that *own* their inputs
//! ([`CellRequest`]), arrive one at a time with a priority, wait in a
//! bounded queue, and complete through a callback whenever a worker gets to
//! them. The pool provides exactly that decoupling while reusing the
//! executor per cell, so every guarantee of the one-shot path carries over
//! unchanged: the backend cell-cache probe (a warm cell does zero
//! simulation), trace memoisation through the shared [`TraceStore`],
//! canonical-order report assembly, and write-back of freshly computed
//! cells.
//!
//! Scheduling is by descending priority, ties broken by submission order
//! (FIFO within a priority class). [`ExecutorPool::submit`] blocks while the
//! queue is at capacity — backpressure instead of unbounded growth. A job
//! may carry a [`CellRequest::deadline`], enforced both while queued (a
//! worker that claims it late expires it instead of running it) and
//! *during execution* (the executor stops claiming shards once the instant
//! passes and discards partial work) — the completion receives
//! [`PoolError::DeadlineExpired`] (never a silent drop) and the pool counts
//! it in [`PoolStats::expired`]. Dropping
//! the pool shuts it down: workers finish their in-flight cell, queued jobs
//! are discarded with their callbacks uninvoked (a waiter holding the other
//! end of a channel observes the disconnect).

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use secbranch_armv7m::SimError;

use crate::executor::{MatrixCellResult, MatrixError, MatrixExecutor, MatrixJob};
use crate::model::FaultModel;
use crate::runner::SimulatorSource;
use crate::trace_store::{TraceKey, TraceStore};

/// One matrix cell as an owned value: what [`MatrixJob`] borrows, this
/// carries, so it can cross a queue and outlive its submitter's stack frame.
pub struct CellRequest {
    /// The simulator source of the artifact under attack.
    pub source: Arc<dyn SimulatorSource + Send + Sync>,
    /// The trace-store identity of the reference execution.
    pub key: TraceKey,
    /// The entry function.
    pub entry: String,
    /// The call arguments.
    pub args: Vec<u32>,
    /// Dynamic instruction budget per execution.
    pub max_steps: u64,
    /// The fault model attacking this cell.
    pub model: Arc<dyn FaultModel + Send + Sync>,
    /// If set, the instant after which this job is expired instead of run
    /// to completion. A worker that claims it past this point completes it
    /// with [`PoolError::DeadlineExpired`] without running any simulation;
    /// a job claimed in time is still abandoned mid-run if the deadline
    /// passes during execution — the executor checks the clock between
    /// shards ([`crate::MatrixExecutor::run_with_deadline`]) and discards
    /// partial work. Either way the completion observes the error, and the
    /// pool counts the job in [`PoolStats::expired`].
    pub deadline: Option<Instant>,
    /// When set, the worker's executor ignores (without deleting) the
    /// persistent cell cache for this job
    /// ([`MatrixExecutor::with_cell_cache_ignored`]): the cell executes its
    /// fault space from scratch and is written back as usual. Used by
    /// cold-path benchmarks against a pre-populated store.
    pub cold: bool,
}

impl std::fmt::Debug for CellRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellRequest")
            .field("key", &self.key)
            .field("entry", &self.entry)
            .field("args", &self.args)
            .field("max_steps", &self.max_steps)
            .field("model", &self.model.name())
            .field("deadline", &self.deadline)
            .field("cold", &self.cold)
            .finish_non_exhaustive()
    }
}

/// Why a pooled cell completed with an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The fault-free reference run of the cell failed.
    Sim(SimError),
    /// The [`CellRequest::deadline`] passed — either while the job was
    /// still queued (dropped without executing anything) or mid-run (the
    /// executor stopped between shards and discarded partial work).
    DeadlineExpired,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Sim(e) => write!(f, "reference run failed: {e}"),
            PoolError::DeadlineExpired => {
                write!(f, "deadline passed before the job could finish")
            }
        }
    }
}

impl std::error::Error for PoolError {}

impl From<SimError> for PoolError {
    fn from(e: SimError) -> Self {
        PoolError::Sim(e)
    }
}

/// Invoked exactly once with the cell's outcome — from a worker thread, so
/// it must be `Send`. Never invoked for jobs still queued at shutdown.
pub type Completion = Box<dyn FnOnce(Result<MatrixCellResult, PoolError>) + Send + 'static>;

/// Scheduling key of a queued job: descending priority, then FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct JobRank {
    priority: u8,
    seq: u64,
}

impl Ord for JobRank {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap pops the maximum: higher priority wins, and within a
        // priority class the *lower* sequence number (earlier submission)
        // must rank higher.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for JobRank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct QueuedJob {
    rank: JobRank,
    request: CellRequest,
    on_done: Completion,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank
    }
}
impl Eq for QueuedJob {}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank.cmp(&other.rank)
    }
}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct QueueState {
    heap: BinaryHeap<QueuedJob>,
    next_seq: u64,
    shutdown: bool,
}

struct PoolShared {
    store: Arc<TraceStore>,
    queue: Mutex<QueueState>,
    /// Signalled when the queue gains a job (or shuts down).
    ready: Condvar,
    /// Signalled when the queue loses a job (or shuts down).
    space: Condvar,
    capacity: usize,
    submitted: AtomicU64,
    in_flight: AtomicU64,
    completed: AtomicU64,
    errored: AtomicU64,
    expired: AtomicU64,
    compute_micros: AtomicU64,
}

/// A point-in-time snapshot of the pool's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Maximum queued (not yet claimed) jobs before `submit` blocks.
    pub capacity: usize,
    /// Jobs currently waiting in the queue.
    pub queued: usize,
    /// Jobs claimed by a worker and not yet completed.
    pub in_flight: u64,
    /// Jobs accepted by `submit` over the pool's lifetime.
    pub submitted: u64,
    /// Jobs whose callback received an `Ok` result.
    pub completed: u64,
    /// Jobs whose callback received an `Err` (failing reference run).
    pub errored: u64,
    /// Jobs dropped unexecuted because their deadline passed while they
    /// were still queued (their callbacks received
    /// [`PoolError::DeadlineExpired`]).
    pub expired: u64,
    /// Injection compute time summed over all completed cells, in µs.
    pub compute_micros: u64,
}

impl PoolStats {
    /// Registers this snapshot's counters and gauges under the
    /// `secbranch_pool_*` prefix. Derived observability data only — never
    /// part of reports, fingerprints, or persistence.
    pub fn register_into(&self, registry: &mut secbranch_obs::Registry) {
        registry.gauge("secbranch_pool_workers", self.workers as u64);
        registry.gauge("secbranch_pool_capacity", self.capacity as u64);
        registry.gauge("secbranch_pool_queued", self.queued as u64);
        registry.gauge("secbranch_pool_in_flight", self.in_flight);
        registry.counter("secbranch_pool_submitted_total", self.submitted);
        registry.counter("secbranch_pool_completed_total", self.completed);
        registry.counter("secbranch_pool_errored_total", self.errored);
        registry.counter("secbranch_pool_expired_total", self.expired);
        registry.counter("secbranch_pool_compute_micros_total", self.compute_micros);
    }
}

/// A shared worker pool executing [`CellRequest`]s one cell at a time, each
/// through a single-threaded [`MatrixExecutor`] over one shared
/// [`TraceStore`] — see the module docs for the scheduling and shutdown
/// contract.
pub struct ExecutorPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ExecutorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorPool")
            .field("workers", &self.workers.len())
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl ExecutorPool {
    /// A pool of `workers` threads (minimum 1) over `store`, admitting at
    /// most `capacity` queued jobs (minimum 1) before `submit` blocks.
    ///
    /// The store is shared deliberately: attach a persistence backend to it
    /// first and every cell the pool executes probes the cell cache and
    /// memoises reference traces across jobs, exactly like a one-shot
    /// [`MatrixExecutor::run`] batch.
    #[must_use]
    pub fn new(store: Arc<TraceStore>, workers: usize, capacity: usize) -> ExecutorPool {
        let shared = Arc::new(PoolShared {
            store,
            queue: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                next_seq: 0,
                shutdown: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
            submitted: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            errored: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            compute_micros: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ExecutorPool { shared, workers }
    }

    /// The shared trace store the pool executes against.
    #[must_use]
    pub fn store(&self) -> &Arc<TraceStore> {
        &self.shared.store
    }

    /// Enqueues `request` at `priority` (higher runs earlier; ties are
    /// FIFO), blocking while the queue is at capacity. `on_done` is invoked
    /// from a worker thread with the cell's result.
    ///
    /// Returns `false` — with `on_done` dropped unused — if the pool has
    /// already shut down.
    pub fn submit(&self, priority: u8, request: CellRequest, on_done: Completion) -> bool {
        let mut state = self.shared.queue.lock().expect("pool queue poisoned");
        while state.heap.len() >= self.shared.capacity && !state.shutdown {
            state = self.shared.space.wait(state).expect("pool queue poisoned");
        }
        if state.shutdown {
            return false;
        }
        let rank = JobRank {
            priority,
            seq: state.next_seq,
        };
        state.next_seq += 1;
        state.heap.push(QueuedJob {
            rank,
            request,
            on_done,
        });
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.shared.ready.notify_one();
        true
    }

    /// A snapshot of the pool's counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let queued = self
            .shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .heap
            .len();
        PoolStats {
            workers: self.workers.len(),
            capacity: self.shared.capacity,
            queued,
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            errored: self.shared.errored.load(Ordering::Relaxed),
            expired: self.shared.expired.load(Ordering::Relaxed),
            compute_micros: self.shared.compute_micros.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.queue.lock().expect("pool queue poisoned");
            state.shutdown = true;
            // Queued-but-unclaimed jobs are discarded: their completions are
            // dropped, never called.
            state.heap.clear();
        }
        self.shared.ready.notify_all();
        self.shared.space.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(job) = state.heap.pop() {
                    break job;
                }
                state = shared.ready.wait(state).expect("pool queue poisoned");
            }
        };
        shared.space.notify_one();

        let QueuedJob {
            request, on_done, ..
        } = job;
        // First deadline stage: a job claimed after its deadline is expired
        // here without running anything — completion invoked with an error,
        // never silently dropped, so waiters coalesced onto the cell observe
        // the outcome instead of hanging on a registration nobody will ever
        // serve. (The second stage is inside the executor, which stops
        // claiming shards once the deadline passes mid-run.)
        if request
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            shared.expired.fetch_add(1, Ordering::Relaxed);
            on_done(Err(PoolError::DeadlineExpired));
            continue;
        }
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        // One single-threaded executor run per cell: the pool's parallelism
        // is across cells, and every executor invariant (cell-cache probe,
        // trace memo, canonical assembly, write-back) is inherited verbatim.
        let source: &dyn SimulatorSource = &*request.source;
        let model: &dyn FaultModel = &*request.model;
        let matrix_job = MatrixJob {
            source,
            key: request.key.clone(),
            entry: request.entry.clone(),
            args: request.args.clone(),
            max_steps: request.max_steps,
            model,
        };
        let result = MatrixExecutor::new()
            .with_threads(1)
            .with_cell_cache_ignored(request.cold)
            .run_with_deadline(
                std::slice::from_ref(&matrix_job),
                &shared.store,
                request.deadline,
            )
            .map(|mut results| results.pop().expect("one job in, one result out"))
            .map_err(|e| match e {
                MatrixError::Sim(e) => PoolError::Sim(e),
                MatrixError::DeadlineExpired => PoolError::DeadlineExpired,
            });
        match &result {
            Ok(cell) => {
                shared
                    .compute_micros
                    .fetch_add(cell.compute_micros, Ordering::Relaxed);
                shared.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(PoolError::DeadlineExpired) => {
                shared.expired.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                shared.errored.fetch_add(1, Ordering::Relaxed);
            }
        }
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        on_done(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BranchInversion, InstructionSkip};
    use crate::runner::CampaignRunner;
    use secbranch_armv7m::{Cond, Instr, Operand2, ProgramBuilder, Reg, Simulator, Target};
    use std::sync::mpsc;

    fn max_simulator() -> Simulator {
        let mut p = ProgramBuilder::new();
        p.label("max");
        p.push(Instr::Cmp {
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1),
        });
        p.push(Instr::BCond {
            cond: Cond::Hs,
            target: Target::label("done"),
        });
        p.push(Instr::Mov {
            rd: Reg::R0,
            rm: Reg::R1,
        });
        p.label("done");
        p.push(Instr::Bx { rm: Reg::Lr });
        Simulator::new(p.assemble().expect("assembles"), 4096)
    }

    fn request_for(model: Arc<dyn FaultModel + Send + Sync>) -> CellRequest {
        CellRequest {
            source: Arc::new(max_simulator()),
            key: TraceKey::new("max-artifact", "max", &[7, 3]),
            entry: "max".to_string(),
            args: vec![7, 3],
            max_steps: 100,
            model,
            deadline: None,
            cold: false,
        }
    }

    #[test]
    fn pooled_cells_match_the_sequential_runner() {
        let store = Arc::new(TraceStore::new());
        let pool = ExecutorPool::new(Arc::clone(&store), 2, 8);
        let models: Vec<Arc<dyn FaultModel + Send + Sync>> =
            vec![Arc::new(InstructionSkip), Arc::new(BranchInversion)];
        let (tx, rx) = mpsc::channel();
        for (index, model) in models.iter().enumerate() {
            let tx = tx.clone();
            assert!(pool.submit(
                0,
                request_for(Arc::clone(model)),
                Box::new(move |result| tx.send((index, result)).expect("receiver alive")),
            ));
        }
        drop(tx);
        let mut results: Vec<Option<MatrixCellResult>> = vec![None, None];
        for (index, result) in rx {
            results[index] = Some(result.expect("cell runs"));
        }

        let runner = CampaignRunner::new().with_threads(1);
        let sim = max_simulator();
        for (result, model) in results.iter().zip(&models) {
            let sequential = runner
                .run(&sim, "max", &[7, 3], 100, &**model)
                .expect("sequential runs");
            let pooled = result.as_ref().expect("completed");
            assert_eq!(pooled.report, sequential);
            assert_eq!(pooled.report.to_json(), sequential.to_json());
        }
        // Both cells share one TraceKey: the reference was recorded once.
        assert_eq!(store.misses(), 1);
        let stats = pool.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.errored, 0);
    }

    #[test]
    fn failing_references_surface_through_the_callback() {
        let pool = ExecutorPool::new(Arc::new(TraceStore::new()), 1, 4);
        let mut bad = request_for(Arc::new(BranchInversion));
        bad.entry = "nope".to_string();
        bad.key = TraceKey::new("max-artifact", "nope", &[7, 3]);
        let (tx, rx) = mpsc::channel();
        pool.submit(
            0,
            bad,
            Box::new(move |r| tx.send(r).expect("receiver alive")),
        );
        let result = rx.recv().expect("callback fired");
        assert!(matches!(
            result,
            Err(PoolError::Sim(SimError::UnknownEntryPoint { .. }))
        ));
        assert_eq!(pool.stats().errored, 1);
    }

    #[test]
    fn expired_queued_jobs_complete_with_an_error_instead_of_running() {
        let pool = ExecutorPool::new(Arc::new(TraceStore::new()), 1, 4);
        let mut stale = request_for(Arc::new(InstructionSkip));
        // By the time any worker claims the job, this instant has passed.
        stale.deadline = Some(Instant::now());
        let (tx, rx) = mpsc::channel();
        assert!(pool.submit(
            0,
            stale,
            Box::new(move |r| tx.send(r).expect("receiver alive")),
        ));
        let result = rx.recv().expect("expired jobs still fire their callback");
        assert!(matches!(result, Err(PoolError::DeadlineExpired)));
        let stats = pool.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.errored, 0);

        // Expiry poisons nothing: a live job afterwards runs normally.
        let (tx, rx) = mpsc::channel();
        assert!(pool.submit(
            0,
            request_for(Arc::new(InstructionSkip)),
            Box::new(move |r| tx.send(r).expect("receiver alive")),
        ));
        assert!(rx.recv().expect("callback fired").is_ok());
        assert_eq!(pool.stats().completed, 1);
    }

    #[test]
    fn deadlines_expire_mid_run_between_shards() {
        // A counting loop with a five-figure fault space: far more work
        // than a 10 ms deadline allows. The worker claims the job in time,
        // the executor abandons the batch between shards once the instant
        // passes, and the pool reports the job as expired — not errored,
        // and never with a truncated report.
        let mut p = ProgramBuilder::new();
        p.label("spin");
        p.push(Instr::MovImm {
            rd: Reg::R2,
            imm: 0,
        });
        p.label("loop");
        p.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Cmp {
            rn: Reg::R2,
            op2: Operand2::Reg(Reg::R0),
        });
        p.push(Instr::BCond {
            cond: Cond::Lo,
            target: Target::label("loop"),
        });
        p.push(Instr::Mov {
            rd: Reg::R0,
            rm: Reg::R2,
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        let sim = Simulator::new(p.assemble().expect("assembles"), 4096);

        let pool = ExecutorPool::new(Arc::new(TraceStore::new()), 1, 4);
        let slow = CellRequest {
            source: Arc::new(sim),
            key: TraceKey::new("spin-artifact", "spin", &[10_000]),
            entry: "spin".to_string(),
            args: vec![10_000],
            max_steps: 50_000,
            model: Arc::new(InstructionSkip),
            deadline: Some(Instant::now() + std::time::Duration::from_millis(10)),
            cold: false,
        };
        let (tx, rx) = mpsc::channel();
        assert!(pool.submit(
            0,
            slow,
            Box::new(move |r| tx.send(r).expect("receiver alive")),
        ));
        let result = rx.recv().expect("expired jobs still fire their callback");
        assert!(matches!(result, Err(PoolError::DeadlineExpired)));
        let stats = pool.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.errored, 0);
    }

    #[test]
    fn ranking_is_priority_then_fifo() {
        let mut heap = BinaryHeap::new();
        for (priority, seq) in [(0u8, 0u64), (2, 1), (1, 2), (2, 3), (0, 4)] {
            heap.push(JobRank { priority, seq });
        }
        let order: Vec<(u8, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|r| (r.priority, r.seq))
            .collect();
        assert_eq!(order, vec![(2, 1), (2, 3), (1, 2), (0, 0), (0, 4)]);
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let store = Arc::new(TraceStore::new());
        let pool = ExecutorPool::new(Arc::clone(&store), 1, 1);
        drop(pool);
        // A fresh pool over the same store still works — shutdown is
        // per-pool, not per-store.
        let pool = ExecutorPool::new(store, 1, 1);
        let (tx, rx) = mpsc::channel();
        assert!(pool.submit(
            0,
            request_for(Arc::new(BranchInversion)),
            Box::new(move |r| tx.send(r).expect("receiver alive")),
        ));
        assert!(rx.recv().expect("callback fired").is_ok());
    }
}
