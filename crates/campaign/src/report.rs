//! Outcome classification, counters and the [`CampaignReport`] with its
//! per-location attribution, text heatmap and JSON serialisation.

use std::fmt::Write as _;

use secbranch_armv7m::ExecResult;

/// Classification of a faulted run against the fault-free reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Same return value as the reference, no CFI violation — the fault was
    /// masked.
    Masked,
    /// The CFI unit flagged a violation (regardless of the produced result):
    /// the fault is detected.
    Detected,
    /// The run crashed (memory fault, runaway program, step limit), which a
    /// deployed system also treats as detection.
    Crashed,
    /// The run produced a *different* result than the reference without any
    /// violation — a successful attack.
    WrongResultUndetected,
}

/// `part / total` as a float, `0.0` for an empty campaign. The single home
/// of the rate arithmetic shared by every outcome-counter type (the
/// instruction-level [`OutcomeCounts`] here and the arithmetic-level
/// condition counters in `secbranch-fault`).
#[must_use]
pub fn rate(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 / total as f64
    }
}

/// Outcome counters of a fault campaign (or one location of it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Masked faults.
    pub masked: u64,
    /// Faults detected by the CFI/AN-code machinery.
    pub detected: u64,
    /// Faults that crashed the run.
    pub crashed: u64,
    /// Undetected wrong results (successful attacks).
    pub wrong_result_undetected: u64,
}

impl OutcomeCounts {
    /// Total number of injections.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.masked + self.detected + self.crashed + self.wrong_result_undetected
    }

    /// Fraction of injections that succeeded as attacks.
    #[must_use]
    pub fn attack_success_rate(&self) -> f64 {
        rate(self.wrong_result_undetected, self.total())
    }

    /// Adds one classified outcome.
    pub fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Masked => self.masked += 1,
            Outcome::Detected => self.detected += 1,
            Outcome::Crashed => self.crashed += 1,
            Outcome::WrongResultUndetected => self.wrong_result_undetected += 1,
        }
    }
}

/// Classifies one faulted run against the fault-free reference.
#[must_use]
pub fn classify(
    reference: &ExecResult,
    result: &Result<ExecResult, secbranch_armv7m::SimError>,
) -> Outcome {
    match result {
        Err(_) => Outcome::Crashed,
        Ok(r) => {
            if r.cfi_violations > 0 {
                Outcome::Detected
            } else if r.return_value == reference.return_value {
                Outcome::Masked
            } else {
                Outcome::WrongResultUndetected
            }
        }
    }
}

/// Aggregated outcomes of every injection anchored at one static program
/// location (instruction index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocationReport {
    /// The instruction index the injections were anchored at.
    pub pc: usize,
    /// The nearest label at or before `pc`, as `label` or `label+offset`.
    pub location: String,
    /// The rendered instruction at `pc`.
    pub instruction: String,
    /// Outcome counters of the injections anchored here.
    pub counts: OutcomeCounts,
}

/// One escaped fault: an injection that produced a wrong result without any
/// detection, with enough context to find the weak spot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeRecord {
    /// The fault point, rendered (e.g. `skip@step 12`).
    pub fault: String,
    /// The dynamic step the fault was anchored at.
    pub step: u64,
    /// The instruction index executing at that step.
    pub pc: usize,
    /// The rendered instruction at `pc`.
    pub instruction: String,
    /// The wrong return value the faulted run produced.
    pub return_value: u32,
}

/// The result of one campaign: one fault model swept over one entry point.
///
/// Beyond the aggregate counters, the report attributes every injection to
/// the static instruction it was anchored at ([`LocationReport`]) and lists
/// each escaped fault individually ([`EscapeRecord`]) — the data one needs
/// to *tighten* a countermeasure rather than just score it.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The fault model's name.
    pub model: String,
    /// The entry point that was attacked.
    pub entry: String,
    /// The call arguments.
    pub args: Vec<u32>,
    /// The fault-free reference result.
    pub reference: ExecResult,
    /// Aggregate outcome counters over all injections.
    pub counts: OutcomeCounts,
    /// Per-location aggregation, sorted by instruction index.
    pub locations: Vec<LocationReport>,
    /// Every escaped fault, in deterministic fault-space order.
    pub escapes: Vec<EscapeRecord>,
}

impl CampaignReport {
    /// Fraction of injections that escaped (attack success rate).
    #[must_use]
    pub fn escape_rate(&self) -> f64 {
        self.counts.attack_success_rate()
    }

    /// Renders a text heatmap: one row per attacked location, with outcome
    /// counters and a bar proportional to the number of escapes there.
    #[must_use]
    pub fn render_heatmap(&self) -> String {
        let mut out = format!(
            "model {} on {}({:?}): {} injections, {} escaped ({:.4}%)\n",
            self.model,
            self.entry,
            self.args,
            self.counts.total(),
            self.counts.wrong_result_undetected,
            self.escape_rate() * 100.0,
        );
        let max_escapes = self
            .locations
            .iter()
            .map(|l| l.counts.wrong_result_undetected)
            .max()
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "{:>6} {:<26} {:<24} {:>6} {:>6} {:>6} {:>7}",
            "pc", "location", "instruction", "mask", "det", "crash", "escape"
        );
        for loc in &self.locations {
            let bar_len = if max_escapes == 0 {
                0
            } else {
                // 1..=20 '#' characters for any nonzero escape count.
                (loc.counts.wrong_result_undetected * 20).div_ceil(max_escapes) as usize
            };
            let _ = writeln!(
                out,
                "{:>6} {:<26} {:<24} {:>6} {:>6} {:>6} {:>7} {}",
                loc.pc,
                truncated(&loc.location, 26),
                truncated(&loc.instruction, 24),
                loc.counts.masked,
                loc.counts.detected,
                loc.counts.crashed,
                loc.counts.wrong_result_undetected,
                "#".repeat(bar_len),
            );
        }
        out
    }

    /// Serialises the report as a self-contained JSON document (hand-rolled:
    /// the offline build has no serde). The output is fully deterministic —
    /// the engine guarantees byte-identical reports independent of the
    /// worker-thread count.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"model\":{},\"entry\":{},\"args\":[{}],",
            json_string(&self.model),
            json_string(&self.entry),
            self.args
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(","),
        );
        let _ = write!(
            out,
            "\"reference\":{{\"return_value\":{},\"cycles\":{},\"instructions\":{}}},",
            self.reference.return_value, self.reference.cycles, self.reference.instructions,
        );
        let _ = write!(
            out,
            "\"counts\":{},\"escape_rate\":{:.9},",
            json_counts(&self.counts),
            self.escape_rate(),
        );
        out.push_str("\"locations\":[");
        for (i, loc) in self.locations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pc\":{},\"location\":{},\"instruction\":{},\"counts\":{}}}",
                loc.pc,
                json_string(&loc.location),
                json_string(&loc.instruction),
                json_counts(&loc.counts),
            );
        }
        out.push_str("],\"escapes\":[");
        for (i, esc) in self.escapes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"fault\":{},\"step\":{},\"pc\":{},\"instruction\":{},\"return_value\":{}}}",
                json_string(&esc.fault),
                esc.step,
                esc.pc,
                json_string(&esc.instruction),
                esc.return_value,
            );
        }
        out.push_str("]}");
        out
    }
}

fn truncated(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

fn json_counts(c: &OutcomeCounts) -> String {
    format!(
        "{{\"masked\":{},\"detected\":{},\"crashed\":{},\"wrong_result_undetected\":{}}}",
        c.masked, c.detected, c.crashed, c.wrong_result_undetected
    )
}

/// Escapes `s` as a JSON string literal (quotes included). Shared by every
/// hand-rolled JSON serialiser of the workspace — the offline build has no
/// serde.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_counts_arithmetic() {
        let mut counts = OutcomeCounts::default();
        counts.record(Outcome::Masked);
        counts.record(Outcome::Detected);
        counts.record(Outcome::Crashed);
        counts.record(Outcome::WrongResultUndetected);
        assert_eq!(counts.total(), 4);
        assert!((counts.attack_success_rate() - 0.25).abs() < 1e-12);
        assert_eq!(OutcomeCounts::default().attack_success_rate(), 0.0);
    }

    #[test]
    fn rate_handles_zero_total() {
        assert_eq!(rate(0, 0), 0.0);
        assert!((rate(1, 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn classify_matches_the_reference_contract() {
        let reference = ExecResult {
            return_value: 7,
            cycles: 10,
            instructions: 5,
            cfi_checks: 1,
            cfi_violations: 0,
        };
        let same = Ok(reference);
        assert_eq!(classify(&reference, &same), Outcome::Masked);
        let wrong = Ok(ExecResult {
            return_value: 8,
            ..reference
        });
        assert_eq!(classify(&reference, &wrong), Outcome::WrongResultUndetected);
        let flagged = Ok(ExecResult {
            return_value: 8,
            cfi_violations: 1,
            ..reference
        });
        assert_eq!(classify(&reference, &flagged), Outcome::Detected);
        let crashed = Err(secbranch_armv7m::SimError::StepLimitExceeded { limit: 5 });
        assert_eq!(classify(&reference, &crashed), Outcome::Crashed);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }
}
