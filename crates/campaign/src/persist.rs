//! The persistence interface of the campaign engine: what a disk-backed
//! grid store must provide, expressed entirely in campaign-layer types.
//!
//! The engine deliberately does not know *how* records hit the disk (that
//! lives in `secbranch-store`, which implements [`GridBackend`] for its
//! `GridStore`); it only knows the two record shapes worth persisting:
//!
//! * **Reference traces** ([`PersistedTrace`]): the recorded fault-free
//!   execution plus its resume checkpoints, keyed by
//!   [`TraceKey`]. The program itself is *not* part of the
//!   payload — the trace key's artifact fingerprint already identifies the
//!   exact compilation (bit-deterministic since PR 4), so the loader
//!   reattaches the program from the requesting simulator source instead of
//!   shipping instruction encodings through the store.
//! * **Completed cells** ([`CellKey`] → [`CampaignReport`]): one fault
//!   model's finished campaign over one artifact. A warm cell means a grid
//!   re-run does *zero* simulation for it.
//!
//! # Round-trip contract
//!
//! Implementations must return records **byte-identical** to what was
//! stored: the matrix executor serves loaded cells in place of computed
//! ones and the facade's `SecurityReport` equality (and JSON) must not be
//! able to tell the difference. An implementation that cannot guarantee
//! integrity for a record (corruption, truncation, version drift) must
//! return `None` — dropping a record only costs a re-computation, serving a
//! damaged one silently corrupts every downstream report.

use crate::model::ReferenceTrace;
use crate::report::CampaignReport;
use crate::trace_store::{RecordedReference, TraceCheckpoint, TraceKey};

/// Identity of one completed campaign cell: which artifact was attacked,
/// by which fault-model configuration, through which entry and arguments.
///
/// `model` is the [`FaultModel::fingerprint`](crate::FaultModel::fingerprint)
/// — the *configuration* identity, not the display name — so two samplings
/// with different seeds or budgets never share a persisted cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// The artifact fingerprint (same discrimination contract as
    /// [`TraceKey::artifact`]).
    pub artifact: String,
    /// The fault model's configuration fingerprint.
    pub model: String,
    /// The entry function.
    pub entry: String,
    /// The call arguments.
    pub args: Vec<u32>,
}

impl CellKey {
    /// Creates a key.
    #[must_use]
    pub fn new(
        artifact: impl Into<String>,
        model: impl Into<String>,
        entry: impl Into<String>,
        args: &[u32],
    ) -> Self {
        CellKey {
            artifact: artifact.into(),
            model: model.into(),
            entry: entry.into(),
            args: args.to_vec(),
        }
    }
}

/// The persistable payload of one reference execution: a
/// [`RecordedReference`] minus the program (see the [module docs](self) for
/// why the program travels out of band).
#[derive(Debug, Clone)]
pub struct PersistedTrace {
    /// The step-by-step trace of the fault-free run.
    pub trace: ReferenceTrace,
    /// Guest RAM size of the recording simulator in bytes.
    pub memory_size: u32,
    /// Machine checkpoints along the trace, ascending `steps_done`.
    pub checkpoints: Vec<TraceCheckpoint>,
}

impl PersistedTrace {
    /// Reattaches a program and becomes a full [`RecordedReference`].
    ///
    /// By the [`TraceKey`] contract the program must be the one the trace
    /// was recorded on — the caller derives it from the same simulator
    /// source whose artifact fingerprint keyed the load.
    #[must_use]
    pub fn into_recorded(
        self,
        program: std::sync::Arc<secbranch_armv7m::Program>,
    ) -> RecordedReference {
        RecordedReference {
            trace: self.trace,
            program,
            memory_size: self.memory_size,
            checkpoints: self.checkpoints,
        }
    }

    /// Borrows the persistable parts of a recording (the inverse of
    /// [`PersistedTrace::into_recorded`], minus the clone).
    #[must_use]
    pub fn from_recorded(recorded: &RecordedReference) -> PersistedTrace {
        PersistedTrace {
            trace: recorded.trace.clone(),
            memory_size: recorded.memory_size,
            checkpoints: recorded.checkpoints.clone(),
        }
    }
}

/// A disk-backed store of reference traces and completed campaign cells.
///
/// [`TraceStore`](crate::TraceStore) consults an attached backend on every
/// in-memory miss and writes every fresh recording through to it; the
/// [`MatrixExecutor`](crate::MatrixExecutor) additionally probes it per
/// cell and skips the whole fault space on a hit. All methods are
/// best-effort: load failures surface as `None` (the engine recomputes) and
/// store failures are swallowed by the implementation (persisting is an
/// optimisation, never a correctness requirement) — implementations should
/// count them in their own statistics.
pub trait GridBackend: Send + Sync {
    // (Object-safe by construction: the engine always holds backends as
    // `Arc<dyn GridBackend>`.)

    /// Loads the persisted trace for `key`, or `None` when absent or not
    /// intact.
    fn load_trace(&self, key: &TraceKey) -> Option<PersistedTrace>;

    /// Persists a freshly recorded reference under `key` (best effort).
    fn store_trace(&self, key: &TraceKey, recorded: &RecordedReference);

    /// Loads the persisted campaign report for `key`, or `None` when absent
    /// or not intact.
    fn load_cell(&self, key: &CellKey) -> Option<CampaignReport>;

    /// Persists a completed campaign cell under `key` (best effort).
    fn store_cell(&self, key: &CellKey, report: &CampaignReport);
}

impl std::fmt::Debug for dyn GridBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GridBackend")
    }
}
