//! [`FaultPoint`]: one concrete injection of a fault space, and the
//! [`FaultHook`] that applies it during a run.

use std::fmt;

use secbranch_armv7m::{FaultAction, FaultHook, Flags, Instr, Machine, Reg};

/// One concrete fault injection: what to do, and at which dynamic step.
///
/// Fault points are *data* — a [`crate::FaultModel`] enumerates or samples
/// them, the [`crate::CampaignRunner`] turns each into a [`FaultHook`] via
/// [`FaultPoint::hook`] and executes it on a fresh simulator. Steps are
/// 1-based dynamic instruction numbers of the reference execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Skip the instruction at dynamic step `step` (single instruction-skip
    /// fault, Section II).
    Skip {
        /// The dynamic step to skip.
        step: u64,
    },
    /// Skip the instructions at two distinct dynamic steps (the two-fault
    /// attacker that defeats plain duplication).
    DoubleSkip {
        /// The first skipped step.
        first: u64,
        /// The second skipped step (> `first`).
        second: u64,
    },
    /// Flip one bit of one register just before `step` executes.
    RegisterFlip {
        /// The dynamic step before which the flip lands.
        step: u64,
        /// The register to corrupt.
        reg: Reg,
        /// The bit index (0–31).
        bit: u32,
    },
    /// Flip one bit of one memory byte just before `step` executes.
    MemoryFlip {
        /// The dynamic step before which the flip lands.
        step: u64,
        /// The byte address to corrupt.
        addr: u32,
        /// The bit index (0–7).
        bit: u32,
    },
    /// Force the conditional branch executing at `step` to take the opposite
    /// direction — the paper's core attacker: a precisely aimed fault on the
    /// branch decision itself.
    BranchInvert {
        /// The dynamic step of the targeted `BCond` (from the reference
        /// trace).
        step: u64,
    },
}

impl FaultPoint {
    /// The dynamic step this fault is anchored at, used for per-location
    /// attribution (for [`FaultPoint::DoubleSkip`], the first fault).
    #[must_use]
    pub fn anchor_step(&self) -> u64 {
        match *self {
            FaultPoint::Skip { step }
            | FaultPoint::RegisterFlip { step, .. }
            | FaultPoint::MemoryFlip { step, .. }
            | FaultPoint::BranchInvert { step } => step,
            FaultPoint::DoubleSkip { first, .. } => first,
        }
    }

    /// The last dynamic step at which this fault can still act. After this
    /// step the hook is inert, so once a faulted run's state matches the
    /// reference at or beyond `last_fault_step`, the remainder of the run is
    /// provably the reference suffix — the reconvergence test the
    /// differential executor is built on.
    #[must_use]
    pub fn last_fault_step(&self) -> u64 {
        match *self {
            FaultPoint::Skip { step }
            | FaultPoint::RegisterFlip { step, .. }
            | FaultPoint::MemoryFlip { step, .. }
            | FaultPoint::BranchInvert { step } => step,
            FaultPoint::DoubleSkip { second, .. } => second,
        }
    }

    /// Builds the [`FaultHook`] executing this injection.
    #[must_use]
    pub fn hook(&self) -> PointHook {
        PointHook { point: *self }
    }
}

/// Runs `$body` with `$hook` bound to the *kind-specialised* hook of
/// `$point` — one monomorphised interpreter loop per fault kind, instead of
/// one loop matching on the [`FaultPoint`] enum every dynamic step.
///
/// The specialisation is worth a macro: the skip-family hooks never touch
/// the [`Machine`], and proving that to the optimiser (no writes reachable
/// from the hook call) is what lets the interpreter keep machine state in
/// registers across steps — measurably ~2× on skip campaigns over the
/// enum-matching [`PointHook`].
macro_rules! with_point_hook {
    ($point:expr, $hook:ident => $body:expr) => {
        match *$point {
            $crate::point::FaultPoint::Skip { step } => {
                let mut $hook = $crate::point::SkipHook { step };
                $body
            }
            $crate::point::FaultPoint::DoubleSkip { first, second } => {
                let mut $hook = $crate::point::DoubleSkipHook { first, second };
                $body
            }
            $crate::point::FaultPoint::RegisterFlip { step, reg, bit } => {
                let mut $hook = $crate::point::RegisterFlipHook { step, reg, bit };
                $body
            }
            $crate::point::FaultPoint::MemoryFlip { step, addr, bit } => {
                let mut $hook = $crate::point::MemoryFlipHook { step, addr, bit };
                $body
            }
            $crate::point::FaultPoint::BranchInvert { step } => {
                let mut $hook = $crate::point::BranchInvertHook { step };
                $body
            }
        }
    };
}
pub(crate) use with_point_hook;

/// Kind-specialised hook for [`FaultPoint::Skip`]. Behaviourally identical
/// to `FaultPoint::Skip { step }.hook()`; exists so the interpreter loop
/// monomorphises over a hook that provably never mutates the machine.
pub(crate) struct SkipHook {
    pub step: u64,
}

impl FaultHook for SkipHook {
    fn before_execute(&mut self, step: u64, _: usize, _: &Instr, _: &mut Machine) -> FaultAction {
        if step == self.step {
            FaultAction::Skip
        } else {
            FaultAction::Continue
        }
    }
}

/// Kind-specialised hook for [`FaultPoint::DoubleSkip`] (see [`SkipHook`]).
pub(crate) struct DoubleSkipHook {
    pub first: u64,
    pub second: u64,
}

impl FaultHook for DoubleSkipHook {
    fn before_execute(&mut self, step: u64, _: usize, _: &Instr, _: &mut Machine) -> FaultAction {
        if step == self.first || step == self.second {
            FaultAction::Skip
        } else {
            FaultAction::Continue
        }
    }
}

/// Kind-specialised hook for [`FaultPoint::RegisterFlip`].
pub(crate) struct RegisterFlipHook {
    pub step: u64,
    pub reg: Reg,
    pub bit: u32,
}

impl FaultHook for RegisterFlipHook {
    fn before_execute(
        &mut self,
        step: u64,
        _: usize,
        _: &Instr,
        machine: &mut Machine,
    ) -> FaultAction {
        if step == self.step {
            machine.flip_register_bit(self.reg, self.bit);
        }
        FaultAction::Continue
    }
}

/// Kind-specialised hook for [`FaultPoint::MemoryFlip`].
pub(crate) struct MemoryFlipHook {
    pub step: u64,
    pub addr: u32,
    pub bit: u32,
}

impl FaultHook for MemoryFlipHook {
    fn before_execute(
        &mut self,
        step: u64,
        _: usize,
        _: &Instr,
        machine: &mut Machine,
    ) -> FaultAction {
        if step == self.step {
            // As in [`PointHook`]: off-range hand-built points are ignored.
            let _ = machine.flip_memory_bit(self.addr, self.bit);
        }
        FaultAction::Continue
    }
}

/// Kind-specialised hook for [`FaultPoint::BranchInvert`].
pub(crate) struct BranchInvertHook {
    pub step: u64,
}

impl FaultHook for BranchInvertHook {
    fn before_execute(
        &mut self,
        step: u64,
        _: usize,
        instr: &Instr,
        machine: &mut Machine,
    ) -> FaultAction {
        if step == self.step {
            if let Instr::BCond { cond, .. } = instr {
                let inverted = !machine.flags.condition_holds(*cond);
                force_condition(&mut machine.flags, *cond, inverted);
            }
        }
        FaultAction::Continue
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultPoint::Skip { step } => write!(f, "skip@{step}"),
            FaultPoint::DoubleSkip { first, second } => {
                write!(f, "double-skip@{first}+{second}")
            }
            FaultPoint::RegisterFlip { step, reg, bit } => {
                write!(f, "flip {reg}[{bit}]@{step}")
            }
            FaultPoint::MemoryFlip { step, addr, bit } => {
                write!(f, "flip mem[0x{addr:x}][{bit}]@{step}")
            }
            FaultPoint::BranchInvert { step } => write!(f, "invert-branch@{step}"),
        }
    }
}

/// The [`FaultHook`] of one [`FaultPoint`]. Stateless beyond the point
/// itself: execution is deterministic up to the first injection, so the
/// reference trace's step numbers identify the same instructions until
/// then. Steps *after* the first fault count in the faulted run's own
/// timeline — for [`FaultPoint::DoubleSkip`] the second skip lands at
/// dynamic step `second` of the diverged execution (which may be a
/// different instruction than the reference's, or never be reached if the
/// first skip shortens the run); attribution anchors on the first fault for
/// exactly this reason.
#[derive(Debug, Clone, Copy)]
pub struct PointHook {
    point: FaultPoint,
}

impl FaultHook for PointHook {
    fn before_execute(
        &mut self,
        step: u64,
        _pc: usize,
        instr: &Instr,
        machine: &mut Machine,
    ) -> FaultAction {
        match self.point {
            FaultPoint::Skip { step: s } => {
                if step == s {
                    return FaultAction::Skip;
                }
            }
            FaultPoint::DoubleSkip { first, second } => {
                if step == first || step == second {
                    return FaultAction::Skip;
                }
            }
            FaultPoint::RegisterFlip { step: s, reg, bit } => {
                if step == s {
                    machine.flip_register_bit(reg, bit);
                }
            }
            FaultPoint::MemoryFlip { step: s, addr, bit } => {
                if step == s {
                    // Out-of-range addresses cannot happen for points built
                    // from the runner's context; ignore rather than crash the
                    // campaign if a hand-built point is off.
                    let _ = machine.flip_memory_bit(addr, bit);
                }
            }
            FaultPoint::BranchInvert { step: s } => {
                if step == s {
                    if let Instr::BCond { cond, .. } = instr {
                        let inverted = !machine.flags.condition_holds(*cond);
                        force_condition(&mut machine.flags, *cond, inverted);
                    }
                }
            }
        }
        FaultAction::Continue
    }
}

/// Mutates `flags` minimally so that `cond` evaluates to `value`. The
/// corruption persists after the branch (as a real flag fault would), which
/// later flag-reading instructions may observe.
fn force_condition(flags: &mut Flags, cond: secbranch_armv7m::Cond, value: bool) {
    use secbranch_armv7m::Cond;
    match cond {
        Cond::Eq => flags.z = value,
        Cond::Ne => flags.z = !value,
        Cond::Hs => flags.c = value,
        Cond::Lo => flags.c = !value,
        Cond::Hi => {
            // c && !z
            if value {
                flags.c = true;
                flags.z = false;
            } else {
                flags.c = false;
            }
        }
        Cond::Ls => {
            // !c || z
            if value {
                flags.c = false;
            } else {
                flags.c = true;
                flags.z = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_armv7m::Cond;

    #[test]
    fn force_condition_covers_every_code_and_value() {
        for cond in Cond::ALL {
            for value in [false, true] {
                // Start from every flag combination that matters (z, c).
                for bits in 0..4u32 {
                    let mut flags = Flags {
                        z: bits & 1 == 1,
                        c: bits & 2 == 2,
                        ..Flags::default()
                    };
                    force_condition(&mut flags, cond, value);
                    assert_eq!(
                        flags.condition_holds(cond),
                        value,
                        "{cond:?} -> {value} from z={} c={}",
                        bits & 1 == 1,
                        bits & 2 == 2
                    );
                }
            }
        }
    }

    #[test]
    fn fault_points_render_and_anchor() {
        let p = FaultPoint::DoubleSkip {
            first: 3,
            second: 9,
        };
        assert_eq!(p.anchor_step(), 3);
        assert_eq!(p.last_fault_step(), 9);
        assert_eq!(FaultPoint::Skip { step: 12 }.last_fault_step(), 12);
        assert_eq!(p.to_string(), "double-skip@3+9");
        assert_eq!(FaultPoint::Skip { step: 12 }.to_string(), "skip@12");
        assert_eq!(
            FaultPoint::RegisterFlip {
                step: 2,
                reg: Reg::R3,
                bit: 31
            }
            .to_string(),
            "flip r3[31]@2"
        );
        assert_eq!(
            FaultPoint::MemoryFlip {
                step: 5,
                addr: 0x1000,
                bit: 7
            }
            .to_string(),
            "flip mem[0x1000][7]@5"
        );
        assert_eq!(
            FaultPoint::BranchInvert { step: 4 }.to_string(),
            "invert-branch@4"
        );
    }
}
