//! Verified loop acceleration: proves a faulted run can never halt.
//!
//! Runaway faulted runs — a skipped bound check leaving a loop spinning —
//! burn the entire step budget to produce an outcome that is already
//! determined: `Err(StepLimitExceeded)`. Exact-state cycle detection
//! (`Machine::state_repeats`) misses most of them, because the loop
//! carries a marching value: a counter in a stack slot, a pointer walking
//! memory. The state never repeats bit-for-bit, but it evolves *affinely*
//! from period to period.
//!
//! [`prove_divergence`] exploits that. Called at a program counter the
//! run has visited before, it walks ONE loop period symbolically, with
//! every register and memory word modelled as an affine sequence
//! `base + k·slope` in the period index `k` — exact mathematical
//! integers, no wrapping; anything that could wrap (or that the model
//! cannot express, like a value multiplied by itself) is demoted to an
//! unknown-but-bounded interval ([`Val::Top`]). The walk then checks, for
//! every period up to the step budget's horizon:
//!
//! * every conditional branch decides the same way — linear inequalities
//!   over affine values, pinned by their endpoint values;
//! * every memory access stays in bounds, and every *marching* load reads
//!   bytes that are equal across the whole horizon (probed concretely);
//! * the memory-mapped CFI unit returns to its period-entry state;
//! * the period's end state is exactly the entry state advanced by one
//!   slope step — the induction that makes per-period reasoning sound —
//!   established by a fixed-point refinement over candidate slopes;
//! * no `Top` value reaches a branch decision, an address, a branch
//!   target or the CFI unit (unknown values may circulate freely through
//!   dead arithmetic, e.g. a CRC accumulator, as long as control flow
//!   never observes them).
//!
//! When all of that holds, every remaining step up to `max_steps` is
//! provably spent inside the loop, so the run is guaranteed to end in
//! `Err(StepLimitExceeded { limit: max_steps })` — the byte-identical
//! error the fault hook's [`FaultAction::DivergenceProven`] answer
//! produces, hundreds of thousands of concrete steps earlier. An unsound
//! proof would break the executor's byte-identity invariant, so every
//! check in this module bails toward "no proof" on anything not exactly
//! modelled.
//!
//! [`FaultAction::DivergenceProven`]: secbranch_armv7m::FaultAction
//! [`Val::Top`]: Val::Top

use std::collections::BTreeMap;

use secbranch_armv7m::machine::{
    CFI_BASE, CFI_CHECK_ADDR, CFI_REPLACE_ADDR, CFI_STATE_ADDR, CFI_UPDATE_ADDR,
    CFI_VIOLATIONS_ADDR, RETURN_MAGIC,
};
use secbranch_armv7m::{
    CfiMonitor, Cond, FaultAction, FaultHook, Instr, Machine, Operand2, Program, Reg, RunCursor,
    SimError, Simulator,
};

/// Instruction budget for a first (shallow) discovery walk — enough to
/// expose a flat loop's period several times over. Kept short: most
/// attempts are false alarms on terminating runs, and the walk is pure
/// overhead for those.
const SHALLOW_WALK: usize = 1_536;

/// Instruction budget for an escalated discovery walk, and the longest
/// candidate period a proof walk will attempt to close. A nested loop's
/// outer period (inner trip count × inner body) can run to tens of
/// thousands of instructions; the deep walk must see it two or three
/// times before `candidates` can vouch for it.
const DEEP_WALK: usize = 40_000;

/// Arrivals back at the start pc the discovery walk collects before it
/// stops; a deep walk anchored inside the inner loop of a nest arrives
/// once per inner iteration, so confirming the outer period twice takes
/// hundreds of arrivals.
const MAX_ARRIVALS: usize = 2_048;

/// Candidate periods tried per proof attempt, cheapest first.
const MAX_CANDIDATES: usize = 3;

/// Fixed-point refinement passes before giving up on a consistent model.
const MAX_PASSES: usize = 8;

/// Don't attempt a proof with fewer remaining steps than this — running
/// them concretely is cheaper than the analysis.
const MIN_REMAINING: u64 = 2_048;

/// Byte-probe budget per pass for marching loads.
const MAX_PROBES: i128 = 1 << 20;

/// A value as a function of the period index `k` over the proof horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    /// `base + slope·k` as an exact integer, guaranteed by construction
    /// to stay within `u32` for every period in the horizon.
    Affine { base: u32, slope: i64 },
    /// `(base + slope·k) / modulus` — the exact quotient of an affine
    /// value, produced by `UDIV` with a constant divisor.
    Quot { base: u32, slope: i64, modulus: u32 },
    /// `(base + slope·k) % modulus` — the exact remainder of an affine
    /// value, produced by the `UDIV`+`MLS` remainder idiom. Equality
    /// against a constant is decidable by modular congruence even though
    /// the sequence itself is not affine.
    Mod { base: u32, slope: i64, modulus: u32 },
    /// Unknown, but within `[lo, hi]` for every period.
    Top { lo: u32, hi: u32 },
}

/// A fully unknown word.
const TOP: Val = Val::Top {
    lo: 0,
    hi: u32::MAX,
};

impl Val {
    fn con(base: u32) -> Val {
        Val::Affine { base, slope: 0 }
    }

    fn as_const(self) -> Option<u32> {
        match self {
            Val::Affine { base, slope: 0 } => Some(base),
            _ => None,
        }
    }

    /// Inclusive range of the value over periods `0..=k_max`.
    fn range(self, k_max: i128) -> (i128, i128) {
        match self {
            Val::Affine { base, slope } => {
                let a = i128::from(base);
                let b = a + i128::from(slope) * k_max;
                (a.min(b), a.max(b))
            }
            Val::Quot {
                base,
                slope,
                modulus,
            } => {
                let a = i128::from(base);
                let b = a + i128::from(slope) * k_max;
                (
                    a.min(b) / i128::from(modulus),
                    a.max(b) / i128::from(modulus),
                )
            }
            Val::Mod { modulus, .. } => (0, i128::from(modulus) - 1),
            Val::Top { lo, hi } => (i128::from(lo), i128::from(hi)),
        }
    }
}

/// Builds an affine value for a mod-2^32 machine result. The machine
/// value is `(base + slope·k) mod 2^32`; as long as the whole horizon
/// lies inside ONE wrap window, shifting by that window's multiple of
/// 2^32 recovers an exact affine sequence (this is how a wrapping
/// subtraction below zero stays precise). A sequence that crosses a
/// wrap boundary inside the horizon demotes to `Top`.
fn mk(base: i128, slope: i128, k_max: i128) -> Val {
    const WRAP: i128 = 1 << 32;
    let last = base + slope * k_max;
    let w = -(base.min(last).div_euclid(WRAP));
    let base = base + w * WRAP;
    let last = last + w * WRAP;
    if base.min(last) >= 0 && base.max(last) <= i128::from(u32::MAX) {
        if let Ok(slope) = i64::try_from(slope) {
            return Val::Affine {
                base: base as u32,
                slope,
            };
        }
    }
    TOP
}

/// `Top` over `[lo, hi]`, widening to the full word when the bounds leave
/// `u32` (wrapping makes the true range unknown).
fn top_range(lo: i128, hi: i128) -> Val {
    if lo == hi && lo >= 0 && lo <= i128::from(u32::MAX) {
        return Val::con(lo as u32);
    }
    if lo >= 0 && hi <= i128::from(u32::MAX) {
        Val::Top {
            lo: lo as u32,
            hi: hi as u32,
        }
    } else {
        TOP
    }
}

/// Smallest all-ones mask covering `hi` (for OR/XOR result bounds).
fn bit_bound(hi: i128) -> i128 {
    let mut b: i128 = 1;
    while b - 1 < hi {
        b <<= 1;
    }
    b - 1
}

fn add(a: Val, b: Val, k: i128) -> Val {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return Val::con(x.wrapping_add(y));
    }
    if let (
        Val::Affine {
            base: ab,
            slope: asl,
        },
        Val::Affine {
            base: bb,
            slope: bsl,
        },
    ) = (a, b)
    {
        return mk(
            i128::from(ab) + i128::from(bb),
            i128::from(asl) + i128::from(bsl),
            k,
        );
    }
    let (alo, ahi) = a.range(k);
    let (blo, bhi) = b.range(k);
    top_range(alo + blo, ahi + bhi)
}

fn sub(a: Val, b: Val, k: i128) -> Val {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return Val::con(x.wrapping_sub(y));
    }
    if let (
        Val::Affine {
            base: ab,
            slope: asl,
        },
        Val::Affine {
            base: bb,
            slope: bsl,
        },
    ) = (a, b)
    {
        return mk(
            i128::from(ab) - i128::from(bb),
            i128::from(asl) - i128::from(bsl),
            k,
        );
    }
    let (alo, ahi) = a.range(k);
    let (blo, bhi) = b.range(k);
    top_range(alo - bhi, ahi - blo)
}

fn mul(a: Val, b: Val, k: i128) -> Val {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return Val::con(x.wrapping_mul(y));
    }
    match (a, b) {
        (Val::Affine { base: c, slope: 0 }, Val::Affine { base, slope })
        | (Val::Affine { base, slope }, Val::Affine { base: c, slope: 0 }) => mk(
            i128::from(base) * i128::from(c),
            i128::from(slope) * i128::from(c),
            k,
        ),
        _ => {
            let (alo, ahi) = a.range(k);
            let (blo, bhi) = b.range(k);
            top_range(alo * blo, ahi * bhi)
        }
    }
}

fn udiv(n: Val, d: Val, k: i128) -> Val {
    match d.as_const() {
        // Division by zero yields zero, as in the simulator.
        Some(0) => Val::con(0),
        Some(dc) => match n {
            Val::Affine { base, slope: 0 } => Val::con(base / dc),
            // A numerator marching by whole multiples of the divisor has
            // an exactly affine quotient: `(base + s·m·k) / m = base/m +
            // s·k` (the numerator is in-range and non-negative for the
            // whole horizon by the `Affine` invariant). AN-coded values
            // move this way — keeping them affine lets the `UDIV`+`MLS`
            // remainder fold to a period-invariant constant downstream.
            Val::Affine { base, slope } if slope % i64::from(dc) == 0 => {
                mk(i128::from(base / dc), i128::from(slope / i64::from(dc)), k)
            }
            Val::Affine { base, slope } => Val::Quot {
                base,
                slope,
                modulus: dc,
            },
            _ => {
                let (lo, hi) = n.range(k);
                top_range(lo / i128::from(dc), hi / i128::from(dc))
            }
        },
        None => TOP,
    }
}

fn and(a: Val, b: Val, k: i128) -> Val {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return Val::con(x & y);
    }
    let (_, ahi) = a.range(k);
    let (_, bhi) = b.range(k);
    top_range(0, ahi.min(bhi))
}

fn orr(a: Val, b: Val, k: i128) -> Val {
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => Val::con(x | y),
        (Some(0), _) => b,
        (_, Some(0)) => a,
        _ => {
            let (alo, ahi) = a.range(k);
            let (blo, bhi) = b.range(k);
            top_range(alo.max(blo), bit_bound(ahi.max(bhi)))
        }
    }
}

fn eor(a: Val, b: Val, k: i128) -> Val {
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => Val::con(x ^ y),
        (Some(0), _) => b,
        (_, Some(0)) => a,
        _ => {
            let (_, ahi) = a.range(k);
            let (_, bhi) = b.range(k);
            top_range(0, bit_bound(ahi.max(bhi)))
        }
    }
}

fn lsl(a: Val, sh: u32, k: i128) -> Val {
    if let Some(c) = a.as_const() {
        return Val::con(c.wrapping_shl(sh));
    }
    let m = 1i128 << sh;
    match a {
        Val::Affine { base, slope } => mk(i128::from(base) * m, i128::from(slope) * m, k),
        _ => {
            let (lo, hi) = a.range(k);
            top_range(lo * m, hi * m)
        }
    }
}

fn lsr(a: Val, sh: u32, k: i128) -> Val {
    if let Some(c) = a.as_const() {
        return Val::con(c.wrapping_shr(sh));
    }
    let m = 1i128 << sh;
    if let Val::Affine { base, slope } = a {
        // Exact only when no bits are shifted out anywhere in the
        // sequence; divisible base and slope guarantee that.
        if i128::from(base) % m == 0 && i128::from(slope) % m == 0 {
            return mk(i128::from(base) / m, i128::from(slope) / m, k);
        }
    }
    let (lo, hi) = a.range(k);
    top_range(lo >> sh, hi >> sh)
}

fn asr(a: Val, sh: u32, k: i128) -> Val {
    fn asr_u(x: u32, sh: u32) -> u32 {
        ((x as i32) >> sh) as u32
    }
    if let Some(c) = a.as_const() {
        return Val::con(asr_u(c, sh));
    }
    let (lo, hi) = a.range(k);
    if hi < 1 << 31 {
        // Sign bit clear everywhere: arithmetic == logical shift.
        return lsr(a, sh, k);
    }
    if lo >= 1 << 31 {
        // Sign bit set everywhere: still monotone in the unsigned value.
        return Val::Top {
            lo: asr_u(lo as u32, sh),
            hi: asr_u(hi as u32, sh),
        };
    }
    TOP
}

/// Whether `cond` over `CMP lhs, rhs` decides the same way for every
/// period `0..=k_max`: `Some(taken)` if so, `None` when the decision
/// flips inside the horizon or an operand is not affine.
fn invariant_decision(cond: Cond, lhs: Val, rhs: Val, k_max: i128) -> Option<bool> {
    let decide = |d: i128| match cond {
        Cond::Eq => d == 0,
        Cond::Ne => d != 0,
        Cond::Lo => d < 0,
        Cond::Hs => d >= 0,
        Cond::Hi => d > 0,
        Cond::Ls => d <= 0,
    };
    // Exact affine path: d = lhs - rhs is linear in k.
    if let (
        Val::Affine {
            base: lb,
            slope: ls,
        },
        Val::Affine {
            base: rb,
            slope: rs,
        },
    ) = (lhs, rhs)
    {
        // CMP sets Z = (lhs == rhs) and C = (lhs >= rhs unsigned); every
        // condition code is a predicate on d = lhs - rhs as an exact
        // integer.
        let d0 = i128::from(lb) - i128::from(rb);
        let ds = i128::from(ls) - i128::from(rs);
        let dk = d0 + ds * k_max;
        if decide(d0) != decide(dk) {
            return None;
        }
        // d is linear in k, so matching sign predicates at the endpoints
        // pin every period in between — except (in)equality, where an
        // interior integer root flips exactly one period.
        if matches!(cond, Cond::Eq | Cond::Ne) && ds != 0 {
            let hits_zero = (-d0) % ds == 0 && (0..=k_max).contains(&(-d0 / ds));
            if hits_zero {
                return None;
            }
        }
        return Some(decide(d0));
    }
    // Remainder vs constant: (in)equality is a modular congruence.
    if matches!(cond, Cond::Eq | Cond::Ne) {
        let pair = match (lhs, rhs) {
            (
                Val::Mod {
                    base,
                    slope,
                    modulus,
                },
                other,
            )
            | (
                other,
                Val::Mod {
                    base,
                    slope,
                    modulus,
                },
            ) => other.as_const().map(|c| (base, slope, modulus, c)),
            _ => None,
        };
        if let Some((base, slope, modulus, c)) = pair {
            let eq = mod_eq_decision(base, slope, modulus, c, k_max)?;
            return Some(if matches!(cond, Cond::Eq) { eq } else { !eq });
        }
    }
    // Interval fallback: disjoint or ordered ranges pin the decision for
    // every period even when the operands themselves are unknown.
    let (llo, lhi) = lhs.range(k_max);
    let (rlo, rhi) = rhs.range(k_max);
    if lhi < rlo {
        // lhs < rhs for every period.
        return Some(decide(-1));
    }
    if llo > rhi {
        // lhs > rhs for every period.
        return Some(decide(1));
    }
    if llo >= rhi && matches!(cond, Cond::Lo | Cond::Hs) {
        // lhs >= rhs for every period (d in {0, positive}).
        return Some(matches!(cond, Cond::Hs));
    }
    if lhi <= rlo && matches!(cond, Cond::Hi | Cond::Ls) {
        // lhs <= rhs for every period.
        return Some(matches!(cond, Cond::Ls));
    }
    None
}

/// Whether `(base + slope·k) % modulus == c` holds for every period in
/// `0..=k_max` (`Some(true)`), for none (`Some(false)`), or varies
/// (`None`).
fn mod_eq_decision(base: u32, slope: i64, modulus: u32, c: u32, k_max: i128) -> Option<bool> {
    let m = i128::from(modulus);
    if m == 0 {
        return None;
    }
    if i128::from(c) >= m {
        return Some(false); // a remainder is always below the modulus
    }
    let s = i128::from(slope).rem_euclid(m);
    let t = (i128::from(c) - i128::from(base)).rem_euclid(m);
    if s == 0 {
        return Some(t == 0);
    }
    let g = gcd(s, m);
    if t % g != 0 {
        return Some(false); // the congruence has no solution at all
    }
    // Solutions are k ≡ k0 (mod m/g); the smallest is decisive.
    let mg = m / g;
    let k0 = (t / g * mod_inv(s / g, mg)).rem_euclid(mg);
    if k0 > k_max {
        Some(false) // first solution lies beyond the horizon
    } else {
        None // the decision flips at period k0
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Modular inverse of `a` modulo `m` (requires `gcd(a, m) == 1`).
fn mod_inv(a: i128, m: i128) -> i128 {
    let (mut t, mut new_t, mut r, mut new_r) = (0i128, 1i128, m, a.rem_euclid(m));
    while new_r != 0 {
        let q = r / new_r;
        (t, new_t) = (new_t, t - q * new_t);
        (r, new_r) = (new_r, r - q * new_r);
    }
    t.rem_euclid(m)
}

/// Per-value model carried across refinement passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Model {
    /// Entry value advances by this amount every period.
    Slope(i64),
    /// Entry value is unknown (but must never reach a control-flow sink).
    Top,
}

/// `true` if `[a, a+aw)` and `[b, b+bw)` overlap.
fn overlaps(a: (u32, u8), b: (u32, u8)) -> bool {
    let (aa, aw) = (u64::from(a.0), u64::from(a.1));
    let (ba, bw) = (u64::from(b.0), u64::from(b.1));
    aa < ba + bw && ba < aa + aw
}

/// `true` if the marching access `[mb + ms·k, .. + mw)` hits `[a, a+aw)`
/// at any period `k` in `0..=k_max`.
fn march_hits(mb: i128, ms: i128, mw: u8, a: u32, aw: u8, k_max: i128) -> bool {
    let (mb, ms) = if ms < 0 {
        (mb + ms * k_max, -ms)
    } else {
        (mb, ms)
    };
    // Marching starts in [lo, hi] overlap the target interval.
    let lo = i128::from(a) - i128::from(mw) + 1;
    let hi = i128::from(a) + i128::from(aw) - 1;
    if ms == 0 {
        return (lo..=hi).contains(&mb);
    }
    let k_lo = (lo - mb + ms - 1).div_euclid(ms).max(0);
    let k_hi = (hi - mb).div_euclid(ms).min(k_max);
    k_lo <= k_hi
}

/// What one symbolic period walk produces.
struct PassEnd {
    /// Register values at walk end.
    regs: [Val; 16],
    /// Memory written during the walk, keyed `(address, width)`.
    overlay: BTreeMap<(u32, u8), Val>,
    /// Keys whose *entry* value was read (before any write to them).
    reads: Vec<(u32, u8)>,
}

/// One symbolic walk of the loop period under the current models.
struct Pass<'a> {
    program: &'a Program,
    machine: &'a Machine,
    msize: u32,
    /// Horizon: the proof must hold for periods `0..=k`.
    k: i128,
    mem_models: &'a BTreeMap<(u32, u8), Model>,
    regs: [Val; 16],
    overlay: BTreeMap<(u32, u8), Val>,
    reads: Vec<(u32, u8)>,
    /// Marching loads `(base, slope, width)` for end-of-pass aliasing checks.
    marches: Vec<(i128, i128, u8)>,
    /// Interval-addressed loads `(lo, hi, width)` for the same checks.
    top_loads: Vec<(u32, u32, u8)>,
    cmp: Option<(Val, Val)>,
    cfi: CfiMonitor,
    cfi_mismatch: bool,
    loaded_violations: bool,
    probes: i128,
}

impl<'a> Pass<'a> {
    fn new(
        program: &'a Program,
        machine: &'a Machine,
        k: i128,
        reg_models: &'a [Model; 16],
        mem_models: &'a BTreeMap<(u32, u8), Model>,
    ) -> Self {
        let mut regs = [TOP; 16];
        for (i, reg) in Reg::ALL.iter().enumerate() {
            regs[i] = match reg_models[i] {
                Model::Slope(s) => mk(i128::from(machine.reg(*reg)), i128::from(s), k),
                Model::Top => TOP,
            };
        }
        Pass {
            program,
            machine,
            msize: machine.memory_size(),
            k,
            mem_models,
            regs,
            overlay: BTreeMap::new(),
            reads: Vec::new(),
            marches: Vec::new(),
            top_loads: Vec::new(),
            cmp: None,
            cfi: machine.cfi.clone(),
            cfi_mismatch: false,
            loaded_violations: false,
            probes: 0,
        }
    }

    fn op2(&self, op2: Operand2) -> Val {
        match op2 {
            Operand2::Reg(r) => self.regs[r.index()],
            Operand2::Imm(i) => Val::con(i),
        }
    }

    /// Current concrete memory at `(addr, width)`; `None` out of bounds.
    fn concrete(&self, addr: u32, width: u8) -> Option<u32> {
        if u64::from(addr) + u64::from(width) > u64::from(self.msize) {
            return None;
        }
        let bytes = self.machine.read_bytes(addr, u32::from(width));
        Some(match width {
            1 => u32::from(bytes[0]),
            _ => u32::from_le_bytes(bytes.try_into().expect("word read")),
        })
    }

    /// Reads the period-entry value at a fixed address (overlay first).
    fn read_entry(&mut self, addr: u32, width: u8) -> Option<Val> {
        if let Some(v) = self.overlay.get(&(addr, width)) {
            return Some(*v);
        }
        if self.overlay.keys().any(|key| overlaps(*key, (addr, width))) {
            return None; // mixed-width aliasing: not modelled
        }
        let base = self.concrete(addr, width)?;
        let v = match self
            .mem_models
            .get(&(addr, width))
            .copied()
            .unwrap_or(Model::Slope(0))
        {
            Model::Slope(s) => mk(i128::from(base), i128::from(s), self.k),
            Model::Top if width == 1 => Val::Top { lo: 0, hi: 255 },
            Model::Top => TOP,
        };
        if !self.reads.contains(&(addr, width)) {
            self.reads.push((addr, width));
        }
        Some(v)
    }

    fn load(&mut self, addr: Val, width: u8) -> Option<Val> {
        match addr {
            Val::Affine { base, slope: 0 } => {
                if base >= CFI_BASE {
                    if width == 1 {
                        return Some(Val::con(0));
                    }
                    return Some(match base {
                        CFI_STATE_ADDR => Val::con(self.cfi.state()),
                        CFI_VIOLATIONS_ADDR => {
                            self.loaded_violations = true;
                            Val::con(self.cfi.violations())
                        }
                        _ => Val::con(0),
                    });
                }
                self.read_entry(base, width)
            }
            Val::Affine { .. } => {
                // A marching load: the address advances every period. The
                // proof needs the loaded value for *every* period, so probe
                // the whole stride concretely — sound because end-of-pass
                // checks reject any store aliasing the stride.
                let (lo, hi) = addr.range(self.k);
                if lo < 0 || hi + i128::from(width) > i128::from(self.msize) {
                    return None; // would fault inside the horizon
                }
                if self.probes + self.k + 1 > MAX_PROBES {
                    return None;
                }
                self.probes += self.k + 1;
                let Val::Affine { base, slope } = addr else {
                    unreachable!()
                };
                let first = self.concrete(base, width)?;
                let mut uniform = true;
                for kk in 1..=self.k {
                    let a = (i128::from(base) + i128::from(slope) * kk) as u32;
                    if self.concrete(a, width)? != first {
                        uniform = false;
                        break;
                    }
                }
                self.marches
                    .push((i128::from(base), i128::from(slope), width));
                Some(if uniform {
                    Val::con(first)
                } else if width == 1 {
                    Val::Top { lo: 0, hi: 255 }
                } else {
                    TOP
                })
            }
            Val::Quot { .. } | Val::Mod { .. } | Val::Top { .. } => {
                let (lo, hi) = addr.range(self.k);
                let (Ok(lo), Ok(hi)) = (u32::try_from(lo), u32::try_from(hi)) else {
                    return None;
                };
                if u64::from(hi) + u64::from(width) > u64::from(self.msize) {
                    return None;
                }
                self.top_loads.push((lo, hi, width));
                Some(if width == 1 {
                    Val::Top { lo: 0, hi: 255 }
                } else {
                    TOP
                })
            }
        }
    }

    fn store(&mut self, addr: Val, width: u8, value: Val) -> Option<()> {
        let a = addr.as_const()?; // marching/unknown store: not modelled
        if a >= CFI_BASE {
            if width == 1 {
                return Some(()); // byte stores to the CFI window are ignored
            }
            // The CFI unit is modelled concretely, so it only admits
            // period-invariant values.
            let v = value.as_const()?;
            let before = self.cfi.violations();
            match a {
                CFI_UPDATE_ADDR => self.cfi.update(v),
                CFI_CHECK_ADDR => self.cfi.check(v),
                CFI_REPLACE_ADDR => self.cfi.replace(v),
                _ => {}
            }
            if self.cfi.violations() != before {
                self.cfi_mismatch = true;
            }
            return Some(());
        }
        if u64::from(a) + u64::from(width) > u64::from(self.msize) {
            return None;
        }
        let stored = if width == 1 {
            // Byte stores truncate to the low byte.
            let (lo, hi) = value.range(self.k);
            if (0..=255).contains(&lo) && (0..=255).contains(&hi) {
                value
            } else if let Some(c) = value.as_const() {
                Val::con(c & 0xFF)
            } else {
                Val::Top { lo: 0, hi: 255 }
            }
        } else {
            value
        };
        if self
            .overlay
            .keys()
            .any(|key| *key != (a, width) && overlaps(*key, (a, width)))
        {
            return None;
        }
        self.overlay.insert((a, width), stored);
        Some(())
    }

    /// Walks exactly `lambda` instructions from `start_pc` — one
    /// candidate period — which must end back at `start_pc` with the
    /// soundness checks holding. `None` on anything unprovable.
    fn run(mut self, start_pc: usize, lambda: usize) -> Option<PassEnd> {
        let instructions = self.program.instructions();
        let limit = lambda.min(DEEP_WALK);
        let mut pc = start_pc;
        let mut steps = 0usize;
        loop {
            if pc >= instructions.len() {
                return None; // the walk would leave the program anyway
            }
            steps += 1;
            let mut next_pc = pc + 1;
            let k = self.k;
            match &instructions[pc] {
                Instr::MovImm { rd, imm } => self.regs[rd.index()] = Val::con(*imm),
                Instr::Mov { rd, rm } => self.regs[rd.index()] = self.regs[rm.index()],
                Instr::Add { rd, rn, op2 } => {
                    self.regs[rd.index()] = add(self.regs[rn.index()], self.op2(*op2), k);
                }
                Instr::Sub { rd, rn, op2 } => {
                    self.regs[rd.index()] = sub(self.regs[rn.index()], self.op2(*op2), k);
                }
                Instr::Mul { rd, rn, rm } => {
                    self.regs[rd.index()] = mul(self.regs[rn.index()], self.regs[rm.index()], k);
                }
                Instr::Mls { rd, rn, rm, ra } => {
                    // `UDIV q, v, m` + `MLS r, q, m, v` is the remainder
                    // idiom: when the quotient's value and divisor match
                    // exactly, the result is the exact modular sequence
                    // `(base + slope·k) % m`.
                    let q = self.regs[rn.index()];
                    let m = self.regs[rm.index()];
                    let v = self.regs[ra.index()];
                    self.regs[rd.index()] = match (q, m, v) {
                        (
                            Val::Quot {
                                base: qb,
                                slope: qs,
                                modulus,
                            },
                            Val::Affine { base: mb, slope: 0 },
                            Val::Affine {
                                base: vb,
                                slope: vs,
                            },
                        ) if qb == vb && qs == vs && modulus == mb => Val::Mod {
                            base: vb,
                            slope: vs,
                            modulus,
                        },
                        _ => sub(v, mul(q, m, k), k),
                    };
                }
                Instr::Udiv { rd, rn, rm } => {
                    self.regs[rd.index()] = udiv(self.regs[rn.index()], self.regs[rm.index()], k);
                }
                Instr::And { rd, rn, op2 } => {
                    self.regs[rd.index()] = and(self.regs[rn.index()], self.op2(*op2), k);
                }
                Instr::Orr { rd, rn, op2 } => {
                    self.regs[rd.index()] = orr(self.regs[rn.index()], self.op2(*op2), k);
                }
                Instr::Eor { rd, rn, op2 } => {
                    self.regs[rd.index()] = eor(self.regs[rn.index()], self.op2(*op2), k);
                }
                Instr::Lsl { rd, rn, op2 } => {
                    self.regs[rd.index()] = match self.op2(*op2).as_const() {
                        Some(sh) => lsl(self.regs[rn.index()], sh & 31, k),
                        None => TOP,
                    };
                }
                Instr::Lsr { rd, rn, op2 } => {
                    self.regs[rd.index()] = match self.op2(*op2).as_const() {
                        Some(sh) => lsr(self.regs[rn.index()], sh & 31, k),
                        None => TOP,
                    };
                }
                Instr::Asr { rd, rn, op2 } => {
                    self.regs[rd.index()] = match self.op2(*op2).as_const() {
                        Some(sh) => asr(self.regs[rn.index()], sh & 31, k),
                        None => TOP,
                    };
                }
                Instr::Cmp { rn, op2 } => {
                    self.cmp = Some((self.regs[rn.index()], self.op2(*op2)));
                }
                Instr::B { target } => next_pc = target.index()?,
                Instr::BCond { cond, target } => {
                    let (lhs, rhs) = self.cmp?;
                    if invariant_decision(*cond, lhs, rhs, k)? {
                        next_pc = target.index()?;
                    }
                }
                Instr::Bl { target } => {
                    self.regs[Reg::Lr.index()] = Val::con((pc + 1) as u32);
                    next_pc = target.index()?;
                }
                Instr::Bx { rm } => {
                    let dest = self.regs[rm.index()].as_const()?;
                    if dest == RETURN_MAGIC {
                        return None; // the run would halt cleanly
                    }
                    next_pc = dest as usize;
                }
                Instr::Ldr { rt, rn, offset } | Instr::Ldrb { rt, rn, offset } => {
                    let width = if matches!(instructions[pc], Instr::Ldr { .. }) {
                        4
                    } else {
                        1
                    };
                    let addr = offset_add(self.regs[rn.index()], *offset, k);
                    self.regs[rt.index()] = self.load(addr, width)?;
                }
                Instr::Str { rt, rn, offset } | Instr::Strb { rt, rn, offset } => {
                    let width = if matches!(instructions[pc], Instr::Str { .. }) {
                        4
                    } else {
                        1
                    };
                    let addr = offset_add(self.regs[rn.index()], *offset, k);
                    self.store(addr, width, self.regs[rt.index()])?;
                }
                Instr::Push { regs } => {
                    let sp0 = self.regs[Reg::Sp.index()].as_const()?;
                    let sp = sp0.wrapping_sub(4 * regs.len() as u32);
                    self.regs[Reg::Sp.index()] = Val::con(sp);
                    let mut sorted = regs.clone();
                    sorted.sort_by_key(|r| r.index());
                    for (i, r) in sorted.iter().enumerate() {
                        let v = self.regs[r.index()];
                        self.store(Val::con(sp.wrapping_add(4 * i as u32)), 4, v)?;
                    }
                }
                Instr::Pop { regs } => {
                    let sp0 = self.regs[Reg::Sp.index()].as_const()?;
                    let mut sorted = regs.clone();
                    sorted.sort_by_key(|r| r.index());
                    for (i, r) in sorted.iter().enumerate() {
                        let v = self.load(Val::con(sp0.wrapping_add(4 * i as u32)), 4)?;
                        if *r == Reg::Pc {
                            let dest = v.as_const()?;
                            if dest == RETURN_MAGIC {
                                return None; // the run would return cleanly
                            }
                            next_pc = dest as usize;
                        } else {
                            self.regs[r.index()] = v;
                        }
                    }
                    self.regs[Reg::Sp.index()] = Val::con(sp0.wrapping_add(4 * regs.len() as u32));
                }
                Instr::Nop => {}
            }
            pc = next_pc;
            if steps >= limit {
                if pc != start_pc {
                    return None; // the candidate period does not close
                }
                break;
            }
        }

        // The CFI unit must return to its entry state, or the next period
        // would diverge from the one just modelled; a latched violation is
        // fine unless the program observes the violation counter.
        if self.cfi.state() != self.machine.cfi.state() {
            return None;
        }
        if self.loaded_violations && self.cfi_mismatch {
            return None;
        }
        // Entry reads must not alias writes of a different shape, and no
        // store may alias a marching or interval load's stride.
        for read in &self.reads {
            if self
                .overlay
                .keys()
                .any(|key| *key != *read && overlaps(*key, *read))
            {
                return None;
            }
        }
        for &(a, width) in self.overlay.keys() {
            if self
                .marches
                .iter()
                .any(|&(mb, ms, mw)| march_hits(mb, ms, mw, a, width, self.k))
            {
                return None;
            }
            // An interval load may touch any address in [lo, hi + lw).
            if self.top_loads.iter().any(|&(lo, hi, lw)| {
                u64::from(a) < u64::from(hi) + u64::from(lw)
                    && u64::from(lo) < u64::from(a) + u64::from(width)
            }) {
                return None;
            }
        }
        Some(PassEnd {
            regs: self.regs,
            overlay: self.overlay,
            reads: self.reads,
        })
    }
}

/// `base + offset` address arithmetic. The machine wraps mod 2^32; exact
/// signed arithmetic agrees whenever the result is a representable
/// address, and anything that would wrap demotes to `Top` and fails the
/// bounds checks downstream.
fn offset_add(a: Val, offset: i32, k: i128) -> Val {
    let off = i128::from(offset);
    match a {
        Val::Affine { base, slope } => mk(i128::from(base) + off, i128::from(slope), k),
        _ => {
            let (lo, hi) = a.range(k);
            top_range(lo + off, hi + off)
        }
    }
}

/// Refines `model` toward consistency with the observed period-end value:
/// entry `base + slope` must reproduce `end` for the induction to close.
/// Returns the refined model and whether it changed.
fn refine(model: Model, base_now: u32, end: Val) -> (Model, bool) {
    let Model::Slope(s) = model else {
        return (Model::Top, false);
    };
    match end {
        Val::Affine { base, slope } if slope == s => {
            let delta = i128::from(base) - i128::from(base_now);
            match i64::try_from(delta) {
                Ok(delta) if delta == s => (model, false),
                Ok(delta) => (Model::Slope(delta), true),
                Err(_) => (Model::Top, true),
            }
        }
        // The value's slope changed inside one period (e.g. doubling):
        // not affine across periods.
        _ => (Model::Top, true),
    }
}

/// Records `(steps since walk start, registers)` at every return to the
/// start pc of a scratch-simulator discovery walk, aborting the walk once
/// the log is full (the abort surfaces as the walk's step-limit error).
struct ArrivalLog {
    start_pc: usize,
    base: u64,
    arrivals: Vec<(u64, [u32; 16])>,
}

impl FaultHook for ArrivalLog {
    fn before_execute(
        &mut self,
        step: u64,
        pc: usize,
        _instr: &Instr,
        machine: &mut Machine,
    ) -> FaultAction {
        if pc == self.start_pc {
            let regs = std::array::from_fn(|i| machine.reg(Reg::ALL[i]));
            self.arrivals.push((step - self.base, regs));
            if self.arrivals.len() > MAX_ARRIVALS {
                return FaultAction::DivergenceProven;
            }
        }
        FaultAction::Continue
    }
}

/// Candidate period lengths (in instructions) proposed by a discovery
/// walk's arrival log: the smallest arrival-index strides whose step gaps
/// and register deltas repeat consistently across the whole walk. A bad
/// guess is harmless — the per-candidate proof simply fails — so this is
/// a heuristic, not a proof obligation.
fn candidates(arrivals: &[(u64, [u32; 16])]) -> Vec<usize> {
    let n = arrivals.len();
    // Strict candidates repeat both their step gaps and their register
    // deltas; loose ones repeat only the step gaps (a chaotic register —
    // destined for `Top` in the fixed point — would otherwise veto every
    // stride).
    let mut strict = Vec::new();
    let mut loose = Vec::new();
    for p in 1..n {
        if n < 3 * p + 1 {
            break; // a stride must recur at least three times to be credible
        }
        let lambda = arrivals[p].0 - arrivals[0].0;
        if (1..n - p).any(|j| arrivals[j + p].0 - arrivals[j].0 != lambda) {
            continue;
        }
        let Ok(lambda) = usize::try_from(lambda) else {
            continue;
        };
        let delta: [u32; 16] =
            std::array::from_fn(|r| arrivals[p].1[r].wrapping_sub(arrivals[0].1[r]));
        let regs_ok = (1..n - p).all(|j| {
            (0..16).all(|r| arrivals[j + p].1[r].wrapping_sub(arrivals[j].1[r]) == delta[r])
        });
        if regs_ok {
            strict.push(lambda);
            if strict.len() >= MAX_CANDIDATES {
                break;
            }
        } else if loose.len() < 2 {
            loose.push(lambda);
        }
    }
    strict.extend(loose);
    strict.truncate(MAX_CANDIDATES);
    strict
}

/// What a [`prove_divergence`] attempt learned, beyond its verdict: the
/// caller uses this to decide whether a deeper walk could still help.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProveOutcome {
    /// The run provably exhausts its step budget.
    Proved,
    /// The discovery walk saw an irregular arrival pattern (or ran out
    /// of arrival slots): a longer walk may expose an outer period.
    Irregular,
    /// The walk was regular and every candidate failed — a longer walk
    /// would rediscover the same periods, so further attempts are moot.
    Flat,
}

/// Tries to prove that the run now at `pc` (about to execute its
/// `step`-th instruction, hook numbering) can never halt before
/// exhausting `max_steps`. [`ProveOutcome::Proved`] means the caller may
/// answer `FaultAction::DivergenceProven` — see the module docs for the
/// proof obligations.
pub(crate) fn prove_divergence(
    program: &Program,
    machine: &Machine,
    scratch: &mut Simulator,
    pc: usize,
    step: u64,
    max_steps: u64,
    deep: bool,
) -> ProveOutcome {
    if pc >= program.len() {
        return ProveOutcome::Flat;
    }
    // Steps the run may still execute, counting the current one: the run
    // errors when the counter reaches `max_steps` at the top of the loop.
    let remaining = max_steps.saturating_sub(step.saturating_sub(1));
    if remaining < MIN_REMAINING {
        return ProveOutcome::Flat;
    }
    let walk = if deep { DEEP_WALK } else { SHALLOW_WALK };

    // Phase 1: replay the run's own future on a scratch simulator — exact
    // by construction (deterministic machine, every fault already
    // injected) — and propose candidate periods from the pattern of
    // returns to `pc`. A walk that halts or faults inside the budget
    // settles the question for free: the run is no runaway.
    let mut hook = ArrivalLog {
        start_pc: pc,
        base: step,
        arrivals: Vec::new(),
    };
    scratch.machine_mut().restore(&machine.snapshot());
    let budget = (step - 1).saturating_add(walk as u64).min(max_steps - 1);
    let walked = scratch.run_segment(RunCursor::resumed(pc, step - 1), None, budget, &mut hook);
    if !matches!(walked, Err(SimError::StepLimitExceeded { .. })) {
        return ProveOutcome::Flat;
    }
    let arrivals = hook.arrivals;
    // Distinct arrival gaps — or an arrival log truncated at its cap —
    // hint at an outer period a longer walk could still expose.
    let gaps_vary = arrivals.len() > MAX_ARRIVALS
        || arrivals
            .windows(3)
            .any(|w| w[1].0 - w[0].0 != w[2].0 - w[1].0);

    // Phase 2, per candidate: fixed-point refinement over the full
    // horizon. The walk's path never changes between passes (period-0
    // values are concrete), only the slope models do; a pass with nothing
    // left to refine is the inductive proof.
    'candidate: for lambda in candidates(&arrivals) {
        let Ok(lambda_steps) = u64::try_from(lambda) else {
            continue;
        };
        if lambda_steps == 0 {
            continue;
        }
        let k_need = remaining.div_ceil(lambda_steps);
        if k_need < 2 {
            continue;
        }
        let k_max = i128::from(k_need - 1);
        let mut reg_models = [Model::Slope(0); 16];
        let mut mem_models: BTreeMap<(u32, u8), Model> = BTreeMap::new();
        for _ in 0..MAX_PASSES {
            let Some(end) =
                Pass::new(program, machine, k_max, &reg_models, &mem_models).run(pc, lambda)
            else {
                continue 'candidate;
            };
            let mut changed = false;
            for (i, reg) in Reg::ALL.iter().enumerate() {
                let (next, delta) = refine(reg_models[i], machine.reg(*reg), end.regs[i]);
                reg_models[i] = next;
                changed |= delta;
            }
            for key in &end.reads {
                let model = mem_models.get(key).copied().unwrap_or(Model::Slope(0));
                let (next, delta) = match end.overlay.get(key) {
                    Some(written) => {
                        let Some(base_now) = concrete_mem(machine, key.0, key.1) else {
                            continue 'candidate;
                        };
                        refine(model, base_now, *written)
                    }
                    // Read but never written: the entry value cannot move.
                    None => match model {
                        Model::Slope(0) | Model::Top => (model, false),
                        Model::Slope(_) => (Model::Slope(0), true),
                    },
                };
                if next != model {
                    mem_models.insert(*key, next);
                }
                changed |= delta;
            }
            if !changed {
                return ProveOutcome::Proved;
            }
        }
    }
    if gaps_vary {
        ProveOutcome::Irregular
    } else {
        ProveOutcome::Flat
    }
}

/// Current concrete memory at `(addr, width)`; `None` out of bounds.
fn concrete_mem(machine: &Machine, addr: u32, width: u8) -> Option<u32> {
    if u64::from(addr) + u64::from(width) > u64::from(machine.memory_size()) {
        return None;
    }
    let bytes = machine.read_bytes(addr, u32::from(width));
    Some(match width {
        1 => u32::from(bytes[0]),
        _ => u32::from_le_bytes(bytes.try_into().expect("word read")),
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use secbranch_armv7m::program::ProgramBuilder;
    use secbranch_armv7m::{
        Cond, FaultAction, FaultHook, Instr, Machine, Operand2, Program, Reg, SimError, Simulator,
        Target,
    };

    use super::{prove_divergence, ProveOutcome, CFI_UPDATE_ADDR};

    /// Calls `prove_divergence` once, at hook step 64, with whatever
    /// pc/machine the run has reached there — exactly how the executor's
    /// cycle guard invokes it.
    struct ProveProbe {
        program: Arc<Program>,
        max_steps: u64,
        verdict: Option<bool>,
    }

    impl FaultHook for ProveProbe {
        fn before_execute(
            &mut self,
            step: u64,
            pc: usize,
            _instr: &Instr,
            machine: &mut Machine,
        ) -> FaultAction {
            if step == 64 {
                let mut scratch =
                    Simulator::from_shared(Arc::clone(&self.program), machine.memory_size());
                self.verdict = Some(
                    prove_divergence(
                        &self.program,
                        machine,
                        &mut scratch,
                        pc,
                        step,
                        self.max_steps,
                        true,
                    ) == ProveOutcome::Proved,
                );
            }
            FaultAction::Continue
        }
    }

    /// Runs `entry` to completion, returning the prover's verdict from
    /// mid-run and the run's actual outcome for cross-checking.
    fn probe(sim: &mut Simulator, entry: &str, max_steps: u64) -> (bool, Result<u32, SimError>) {
        let mut hook = ProveProbe {
            program: Arc::clone(sim.shared_program()),
            max_steps,
            verdict: None,
        };
        let result = sim
            .call_with_faults(entry, &[], max_steps, &mut hook)
            .map(|r| r.return_value);
        (hook.verdict.expect("run reached the probe step"), result)
    }

    /// A counter in a memory slot, incremented until it equals `limit`
    /// (zero = never, since the counter starts above it).
    fn counter_loop(limit: u32) -> Program {
        let mut p = ProgramBuilder::new();
        p.label("spin");
        p.push(Instr::MovImm {
            rd: Reg::R1,
            imm: 0x100,
        });
        p.label("loop");
        p.push(Instr::Ldr {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Str {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Cmp {
            rn: Reg::R2,
            op2: Operand2::Imm(limit),
        });
        p.push(Instr::BCond {
            cond: Cond::Ne,
            target: Target::label("loop"),
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        p.assemble().expect("assembles")
    }

    #[test]
    fn infinite_memory_counter_is_proven_divergent() {
        let mut sim = Simulator::new(counter_loop(0), 64 * 1024);
        let (proved, result) = probe(&mut sim, "spin", 200_000);
        assert!(proved, "affine memory counter should be provable");
        assert!(
            matches!(result, Err(SimError::StepLimitExceeded { limit: 200_000 })),
            "ground truth must match the proven outcome: {result:?}"
        );
    }

    #[test]
    fn loop_that_exits_within_the_horizon_is_not_proven() {
        // The counter reaches 20 000 around step 100 000, well inside the
        // budget: the `cmp` has an interior root and the proof must bail.
        let mut sim = Simulator::new(counter_loop(20_000), 64 * 1024);
        let (proved, result) = probe(&mut sim, "spin", 400_000);
        assert!(!proved, "a halting loop must never be proven divergent");
        assert!(result.is_ok(), "the run really does halt: {result:?}");
    }

    /// A byte pointer marching up through memory until it reads a 1.
    fn march_loop() -> Program {
        let mut p = ProgramBuilder::new();
        p.label("march");
        p.push(Instr::MovImm {
            rd: Reg::R1,
            imm: 0x200,
        });
        p.label("loop");
        p.push(Instr::Ldrb {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Add {
            rd: Reg::R1,
            rn: Reg::R1,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Cmp {
            rn: Reg::R2,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::BCond {
            cond: Cond::Ne,
            target: Target::label("loop"),
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        p.assemble().expect("assembles")
    }

    #[test]
    fn marching_load_over_uniform_memory_is_proven() {
        // 64 KiB keeps the pointer in bounds for the whole horizon, and
        // every probed byte is zero, so the loads are uniformly 0.
        let mut sim = Simulator::new(march_loop(), 64 * 1024);
        let (proved, result) = probe(&mut sim, "march", 100_000);
        assert!(
            proved,
            "marching load over zeroed memory should be provable"
        );
        assert!(matches!(result, Err(SimError::StepLimitExceeded { .. })));
    }

    #[test]
    fn marching_load_that_exits_memory_is_not_proven() {
        // 4 KiB: the pointer leaves memory near step 14 000, inside the
        // budget — the run ends in a memory fault, not the step limit, and
        // the bounds check must block the proof.
        let mut sim = Simulator::new(march_loop(), 4 * 1024);
        let (proved, result) = probe(&mut sim, "march", 100_000);
        assert!(!proved, "an out-of-bounds march must never be proven");
        assert!(
            matches!(result, Err(SimError::MemoryFault { .. })),
            "ground truth: the march faults, it does not time out: {result:?}"
        );
    }

    #[test]
    fn chaotic_register_outside_the_sinks_is_proven() {
        // r5/r6 square each period — wrapping, unmodellable — but never
        // reach a branch, an address or the CFI unit, so they settle to
        // `Top` in the fixed point without blocking the proof.
        let mut p = ProgramBuilder::new();
        p.label("spin");
        p.push(Instr::MovImm {
            rd: Reg::R1,
            imm: 0x100,
        });
        p.push(Instr::MovImm {
            rd: Reg::R6,
            imm: 3,
        });
        p.label("loop");
        p.push(Instr::Mul {
            rd: Reg::R5,
            rn: Reg::R6,
            rm: Reg::R6,
        });
        p.push(Instr::Mov {
            rd: Reg::R6,
            rm: Reg::R5,
        });
        p.push(Instr::Ldr {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Str {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Cmp {
            rn: Reg::R2,
            op2: Operand2::Imm(0),
        });
        p.push(Instr::BCond {
            cond: Cond::Ne,
            target: Target::label("loop"),
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        let mut sim = Simulator::new(p.assemble().expect("assembles"), 64 * 1024);
        let (proved, result) = probe(&mut sim, "spin", 200_000);
        assert!(proved, "dead chaotic values must not block the proof");
        assert!(matches!(result, Err(SimError::StepLimitExceeded { .. })));
    }

    /// The counter loop with `updates` constant CFI UPDATE stores per
    /// period. An even count XORs the monitor state back to its entry
    /// value; an odd count leaves it drifting period to period.
    fn cfi_loop(updates: usize) -> Program {
        let mut p = ProgramBuilder::new();
        p.label("spin");
        p.push(Instr::MovImm {
            rd: Reg::R1,
            imm: 0x100,
        });
        p.push(Instr::MovImm {
            rd: Reg::R3,
            imm: CFI_UPDATE_ADDR,
        });
        p.push(Instr::MovImm {
            rd: Reg::R4,
            imm: 5,
        });
        p.label("loop");
        for _ in 0..updates {
            p.push(Instr::Str {
                rt: Reg::R4,
                rn: Reg::R3,
                offset: 0,
            });
        }
        p.push(Instr::Ldr {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Str {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Cmp {
            rn: Reg::R2,
            op2: Operand2::Imm(0),
        });
        p.push(Instr::BCond {
            cond: Cond::Ne,
            target: Target::label("loop"),
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        p.assemble().expect("assembles")
    }

    #[test]
    fn value_wrapped_below_zero_stays_affine() {
        // Each period derives `r3 = counter - 50 000` while the counter is
        // still far below 50 000, so r3 lives entirely in the wrap window
        // below zero (0xFFFF3C4F, 0xFFFF3C50, ...) for the whole horizon.
        // The window shift must recover the exact affine form; demoting to
        // `Top` would leave the `cmp r3, #0` branch undecidable.
        let mut p = ProgramBuilder::new();
        p.label("spin");
        p.push(Instr::MovImm {
            rd: Reg::R1,
            imm: 0x100,
        });
        p.push(Instr::MovImm {
            rd: Reg::R4,
            imm: 50_000,
        });
        p.label("loop");
        p.push(Instr::Ldr {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Str {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Sub {
            rd: Reg::R3,
            rn: Reg::R2,
            op2: Operand2::Reg(Reg::R4),
        });
        p.push(Instr::Cmp {
            rn: Reg::R3,
            op2: Operand2::Imm(0),
        });
        p.push(Instr::BCond {
            cond: Cond::Ne,
            target: Target::label("loop"),
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        let mut sim = Simulator::new(p.assemble().expect("assembles"), 64 * 1024);
        let (proved, result) = probe(&mut sim, "spin", 200_000);
        assert!(proved, "a below-zero wrap window should stay affine");
        assert!(matches!(result, Err(SimError::StepLimitExceeded { .. })));
    }

    #[test]
    fn cfi_state_returning_each_period_is_proven() {
        let mut sim = Simulator::new(cfi_loop(2), 64 * 1024);
        let (proved, result) = probe(&mut sim, "spin", 200_000);
        assert!(proved, "a period-invariant CFI state should be provable");
        assert!(matches!(result, Err(SimError::StepLimitExceeded { .. })));
    }

    #[test]
    fn cfi_state_alternation_is_proven_at_the_doubled_period() {
        // One XOR per iteration alternates the monitor state 5, 0, 5, … —
        // period-1 fails the CFI return check, but the candidate search
        // also proposes the doubled stride, where the state does return.
        let mut sim = Simulator::new(cfi_loop(1), 64 * 1024);
        let (proved, result) = probe(&mut sim, "spin", 200_000);
        assert!(proved, "the doubled period restores the CFI state");
        assert!(matches!(result, Err(SimError::StepLimitExceeded { .. })));
    }

    #[test]
    fn period_varying_cfi_update_blocks_the_proof() {
        // The CFI unit is modelled concretely, so an update whose value
        // changes every period (the loop counter) is unprovable — the
        // loop still diverges, but the prover must conservatively decline.
        let mut p = ProgramBuilder::new();
        p.label("spin");
        p.push(Instr::MovImm {
            rd: Reg::R1,
            imm: 0x100,
        });
        p.push(Instr::MovImm {
            rd: Reg::R3,
            imm: CFI_UPDATE_ADDR,
        });
        p.label("loop");
        p.push(Instr::Ldr {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Str {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Str {
            rt: Reg::R2,
            rn: Reg::R3,
            offset: 0,
        });
        p.push(Instr::Str {
            rt: Reg::R2,
            rn: Reg::R3,
            offset: 0,
        });
        p.push(Instr::Cmp {
            rn: Reg::R2,
            op2: Operand2::Imm(0),
        });
        p.push(Instr::BCond {
            cond: Cond::Ne,
            target: Target::label("loop"),
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        let mut sim = Simulator::new(p.assemble().expect("assembles"), 64 * 1024);
        let (proved, result) = probe(&mut sim, "spin", 200_000);
        assert!(!proved, "a period-varying CFI update must block the proof");
        assert!(matches!(result, Err(SimError::StepLimitExceeded { .. })));
    }
}
