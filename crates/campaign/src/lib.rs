//! `secbranch-campaign` — a parallel, multi-model fault-campaign engine
//! with per-location attribution.
//!
//! The paper's security argument (Section V) sweeps a fault space over a
//! protected binary and counts the wrong results that escape detection.
//! This crate generalises the repro's original two hard-coded sweeps into
//! three orthogonal pieces:
//!
//! * **[`FaultModel`]** — an attacker model as data: it enumerates or
//!   deterministically samples a fault space of [`FaultPoint`]s over a
//!   recorded reference execution. Five models ship: single
//!   [`InstructionSkip`], two-fault [`DoubleInstructionSkip`], Monte-Carlo
//!   [`RegisterBitFlip`] and [`MemoryBitFlip`], and the paper's core
//!   attacker, [`BranchInversion`] (every dynamic conditional branch forced
//!   the wrong way).
//! * **[`CampaignRunner`]** — executes the fault space on fresh simulators
//!   from a [`SimulatorSource`], sharded across `std::thread` workers
//!   (default: available parallelism), and merges outcomes in canonical
//!   fault-space order, so reports are byte-identical regardless of the
//!   thread count. Fresh simulators are cheap because the program is
//!   `Arc`-shared ([`SharedModule`]); a million injections allocate a
//!   million machines, not a million programs.
//! * **[`CampaignReport`]** — aggregate [`OutcomeCounts`] plus per-location
//!   attribution: which instruction each escaped fault was anchored at
//!   ([`LocationReport`], [`EscapeRecord`]), a text heatmap and a
//!   deterministic JSON serialisation.
//! * **[`MatrixExecutor`] + [`TraceStore`]** — the matrix-scale layer: an
//!   entire security matrix (many cells = artifact × fault-model pairs,
//!   described as [`MatrixJob`]s) flattens into fixed-size shards scheduled
//!   across *one* shared worker pool, with reference traces memoised per
//!   `(artifact, entry, args)` ([`TraceKey`]) so N models attacking one
//!   artifact record its trace once. Reports stay byte-identical to the
//!   per-cell sequential path at any thread count.
//! * **[`persist`]** — the persistence interface: a [`GridBackend`]
//!   (implemented by `secbranch-store`'s disk-backed `GridStore`) attaches
//!   behind a [`TraceStore`], which then warm-starts reference traces from
//!   disk and writes fresh recordings back; the executor additionally
//!   serves whole cells ([`CellKey`] → [`CampaignReport`]) from it, so an
//!   unchanged grid re-run does zero simulation.
//!
//! # Example
//!
//! ```
//! use secbranch_armv7m::{Cond, Instr, Operand2, ProgramBuilder, Reg, Simulator, Target};
//! use secbranch_campaign::{BranchInversion, CampaignRunner};
//!
//! # fn main() -> Result<(), secbranch_armv7m::SimError> {
//! // max(a, b) — a single unprotected conditional branch.
//! let mut p = ProgramBuilder::new();
//! p.label("max");
//! p.push(Instr::Cmp { rn: Reg::R0, op2: Operand2::Reg(Reg::R1) });
//! p.push(Instr::BCond { cond: Cond::Hs, target: Target::label("done") });
//! p.push(Instr::Mov { rd: Reg::R0, rm: Reg::R1 });
//! p.label("done");
//! p.push(Instr::Bx { rm: Reg::Lr });
//! let simulator = Simulator::new(p.assemble()?, 4096);
//!
//! let report = CampaignRunner::new()
//!     .with_threads(2)
//!     .run(&simulator, "max", &[7, 3], 1_000, &BranchInversion)?;
//! assert_eq!(report.counts.wrong_result_undetected, 1);
//! println!("{}", report.render_heatmap());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
mod executor;
mod liveness;
mod model;
pub mod persist;
mod point;
mod report;
mod runner;
mod service;
pub mod trace_store;

pub use executor::{MatrixCellResult, MatrixError, MatrixExecutor, MatrixJob};
pub use liveness::{LivenessVerdict, SuffixIndex};
pub use model::{
    BranchInversion, CampaignContext, DoubleInstructionSkip, FaultGroup, FaultModel,
    InstructionSkip, MemoryBitFlip, ReferenceTrace, RegisterBitFlip, FLIP_REGISTERS,
};
pub use persist::{CellKey, GridBackend, PersistedTrace};
pub use point::{FaultPoint, PointHook};
pub use report::{
    classify, json_string, rate, CampaignReport, EscapeRecord, LocationReport, Outcome,
    OutcomeCounts,
};
pub use runner::{CampaignRunner, OwnedModule, SharedModule, SimulatorSource};
pub use service::{CellRequest, Completion, ExecutorPool, PoolError, PoolStats};
pub use trace_store::{
    record_reference, record_reference_without_checkpoints, RecordedReference, SpineSnapshot,
    TraceCheckpoint, TraceFetch, TraceKey, TraceStore, CHECKPOINT_BUDGET, DEFAULT_SNAPSHOT_BUDGET,
};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CampaignReport>();
        assert_send_sync::<CampaignRunner>();
        assert_send_sync::<FaultPoint>();
        assert_send_sync::<OutcomeCounts>();
        assert_send_sync::<InstructionSkip>();
        assert_send_sync::<BranchInversion>();
    }
}
