//! The [`TraceStore`]: memoised fault-free reference executions, keyed by
//! `(artifact fingerprint, entry, args)`.
//!
//! Every campaign needs the reference execution of its target recorded step
//! by step before a single fault can be placed: the [`ReferenceTrace`] is
//! what fault models enumerate their spaces over and what outcomes are
//! classified against. Recording costs a full (instrumented) execution, so
//! a security matrix that attacks one artifact with N fault models would
//! naively record the same trace N times. The store collapses those to one
//! recording per distinct [`TraceKey`] and counts hits and misses, which the
//! matrix reports surface.
//!
//! # Determinism contract
//!
//! A memoised trace stands in for a fresh recording, and shards of the
//! matrix executor classify faulted runs against it, so two properties must
//! hold:
//!
//! 1. **Executions are deterministic.** A [`SimulatorSource`] hands out
//!    pristine simulators whose fault-free run of `entry(args)` is identical
//!    every time (the simulator is a deterministic interpreter and sources
//!    always start from the same initial state, so this holds by
//!    construction).
//! 2. **Keys identify behaviour.** The caller must choose
//!    [`TraceKey::artifact`] so that it covers everything that influences
//!    the execution: the compiled code, the globals image and the simulator
//!    configuration (memory size and step budget). The facade derives it
//!    from the pipeline fingerprint plus a module content hash; hand-rolled
//!    keys must be equally discriminating, otherwise the store can serve a
//!    trace recorded on a *different* program and every downstream
//!    classification silently becomes garbage.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use secbranch_armv7m::{FaultAction, FaultHook, Instr, Machine, MachineState, Program, SimError};

use crate::model::ReferenceTrace;
use crate::persist::GridBackend;
use crate::runner::SimulatorSource;

/// Upper bound on the number of machine checkpoints recorded along one
/// reference trace. The recorder thins its checkpoint set online (doubling
/// the interval whenever the budget is hit), so memory per trace stays
/// bounded no matter how long the run is.
pub const CHECKPOINT_BUDGET: usize = 48;

/// Default byte budget for cached spine snapshots (see
/// [`TraceStore::cache_spine_snapshot`]): enough for the snapshots of a
/// typical matrix run while bounding worst-case retention.
pub const DEFAULT_SNAPSHOT_BUDGET: usize = 4 << 20;

/// Identity of one reference execution: which artifact ran, from which entry
/// point, with which arguments.
///
/// See the [module docs](self) for the discrimination requirement on
/// [`TraceKey::artifact`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// A fingerprint of the executed artifact, covering code, data image and
    /// simulator configuration.
    pub artifact: String,
    /// The entry function.
    pub entry: String,
    /// The call arguments.
    pub args: Vec<u32>,
}

impl TraceKey {
    /// Creates a key.
    #[must_use]
    pub fn new(artifact: impl Into<String>, entry: impl Into<String>, args: &[u32]) -> Self {
        TraceKey {
            artifact: artifact.into(),
            entry: entry.into(),
            args: args.to_vec(),
        }
    }
}

/// A machine checkpoint along a recorded reference execution: the full
/// architectural state immediately *before* dynamic step `steps_done + 1`
/// executed at instruction index `pc`.
///
/// Because a faulted run is identical to the reference up to its first
/// injection (fault hooks are inert before their anchor step), an injection
/// anchored at step `s` may start from any checkpoint with
/// `steps_done < s` instead of re-executing the prefix — the fast-forward
/// path of the matrix executor.
#[derive(Debug, Clone)]
pub struct TraceCheckpoint {
    /// Dynamic steps executed before this checkpoint.
    pub steps_done: u64,
    /// The instruction index about to execute.
    pub pc: u32,
    /// The captured machine state.
    pub state: MachineState,
}

/// One recorded reference execution plus the static context fault models
/// need to build their spaces over it.
#[derive(Debug)]
pub struct RecordedReference {
    /// The step-by-step trace of the fault-free run.
    pub trace: ReferenceTrace,
    /// The program that ran (shared with the recording simulator).
    pub program: Arc<Program>,
    /// Guest RAM size of the recording simulator in bytes.
    pub memory_size: u32,
    /// Machine checkpoints along the trace, in ascending `steps_done`
    /// order, starting with the pre-step-1 state.
    pub checkpoints: Vec<TraceCheckpoint>,
}

impl RecordedReference {
    /// The latest checkpoint usable for an injection anchored at dynamic
    /// step `anchor` — the one with the largest `steps_done < anchor`, so
    /// the anchor step itself still executes (and the fault hook still
    /// fires) after the fast-forward.
    #[must_use]
    pub fn checkpoint_before(&self, anchor: u64) -> Option<&TraceCheckpoint> {
        let index = self
            .checkpoints
            .partition_point(|cp| cp.steps_done < anchor);
        index.checked_sub(1).map(|i| &self.checkpoints[i])
    }
}

/// Records the reference execution: the pc of every dynamic step, the steps
/// at which conditional branches executed, and periodic machine checkpoints
/// (every `interval` steps, thinned by doubling the interval whenever the
/// [`CHECKPOINT_BUDGET`] is hit).
#[derive(Debug)]
struct TraceRecorder {
    pcs: Vec<u32>,
    conditional_steps: Vec<u64>,
    checkpoints: Vec<TraceCheckpoint>,
    checkpoints_enabled: bool,
    interval: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder {
            pcs: Vec::new(),
            conditional_steps: Vec::new(),
            checkpoints: Vec::new(),
            checkpoints_enabled: true,
            interval: 64,
        }
    }
}

impl FaultHook for TraceRecorder {
    fn before_execute(
        &mut self,
        step: u64,
        pc: usize,
        instr: &Instr,
        machine: &mut Machine,
    ) -> FaultAction {
        self.pcs.push(pc as u32);
        if matches!(instr, Instr::BCond { .. }) {
            self.conditional_steps.push(step);
        }
        if self.checkpoints_enabled && (step - 1).is_multiple_of(self.interval) {
            if self.checkpoints.len() == CHECKPOINT_BUDGET {
                // Budget hit: keep every other checkpoint, double the
                // interval. All retained `steps_done` stay multiples of the
                // new interval, so the cadence remains uniform.
                let mut index: usize = 0;
                self.checkpoints.retain(|_| {
                    index += 1;
                    (index - 1).is_multiple_of(2)
                });
                self.interval *= 2;
                if !(step - 1).is_multiple_of(self.interval) {
                    return FaultAction::Continue;
                }
            }
            self.checkpoints.push(TraceCheckpoint {
                steps_done: step - 1,
                pc: pc as u32,
                state: machine.snapshot(),
            });
        }
        FaultAction::Continue
    }
}

/// Records the fault-free reference execution of `entry(args)` on a fresh
/// simulator from `source`, including resume checkpoints (no memoisation —
/// [`TraceStore::reference`] is the caching front end).
///
/// # Errors
///
/// Returns the [`SimError`] of the reference run if it fails.
pub fn record_reference(
    source: &dyn SimulatorSource,
    entry: &str,
    args: &[u32],
    max_steps: u64,
) -> Result<RecordedReference, SimError> {
    record_reference_impl(source, entry, args, max_steps, true)
}

/// Like [`record_reference`] but without machine checkpoints — for callers
/// that never fast-forward (the sequential [`crate::CampaignRunner`]
/// reference path), so they do not pay for snapshots nobody reads.
///
/// # Errors
///
/// Returns the [`SimError`] of the reference run if it fails.
pub fn record_reference_without_checkpoints(
    source: &dyn SimulatorSource,
    entry: &str,
    args: &[u32],
    max_steps: u64,
) -> Result<RecordedReference, SimError> {
    record_reference_impl(source, entry, args, max_steps, false)
}

fn record_reference_impl(
    source: &dyn SimulatorSource,
    entry: &str,
    args: &[u32],
    max_steps: u64,
    with_checkpoints: bool,
) -> Result<RecordedReference, SimError> {
    let mut sim = source.fresh_simulator();
    let mut recorder = TraceRecorder {
        checkpoints_enabled: with_checkpoints,
        ..TraceRecorder::default()
    };
    let result = sim.call_with_faults(entry, args, max_steps, &mut recorder)?;
    Ok(RecordedReference {
        trace: ReferenceTrace {
            result,
            pcs: recorder.pcs,
            conditional_steps: recorder.conditional_steps,
        },
        program: Arc::clone(sim.shared_program()),
        memory_size: sim.machine().memory_size(),
        checkpoints: recorder.checkpoints,
    })
}

/// How one [`TraceStore`] request was satisfied — the per-request truth the
/// matrix executor attributes to its cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFetch {
    /// Served from the in-memory memo.
    Memory,
    /// Loaded from the attached persistence backend (disk warm start).
    Disk,
    /// Nothing cached anywhere: a fresh recording was made.
    Recorded,
}

impl TraceFetch {
    /// `true` when the request did *not* pay for a recording.
    #[must_use]
    pub fn is_hit(self) -> bool {
        !matches!(self, TraceFetch::Recorded)
    }
}

/// Approximate retained bytes of one checkpoint beyond its dirty RAM: the
/// register file plus flags/CFI/bookkeeping. Only used for budget
/// accounting, so "approximate" is fine — the dirty RAM dominates.
const CHECKPOINT_FIXED_COST: usize = 96;

fn checkpoint_cost(checkpoints: &[TraceCheckpoint]) -> usize {
    checkpoints
        .iter()
        .map(|cp| cp.state.dirty_len() + CHECKPOINT_FIXED_COST)
        .sum()
}

/// One memoised recording plus the bookkeeping the byte budget needs.
#[derive(Debug)]
struct StoreEntry {
    reference: Arc<RecordedReference>,
    /// Monotonic access tick of the last request (for LRU eviction).
    last_used: u64,
    /// Accounted checkpoint bytes of this entry (0 once evicted).
    checkpoint_bytes: usize,
}

/// A resumable machine state captured *after* applying the shared first
/// fault of a grouped multi-fault batch: the spine position the executor
/// fans second-fault candidates out from (cached under the
/// [`TraceStore`]'s snapshot budget, keyed by trace and first-fault step).
#[derive(Debug)]
pub struct SpineSnapshot {
    /// The instruction index about to execute.
    pub pc: u32,
    /// Dynamic steps completed (the shared first fault's step).
    pub steps_done: u64,
    /// The captured machine state, first fault applied.
    pub state: MachineState,
}

/// One cached spine snapshot plus LRU bookkeeping.
#[derive(Debug)]
struct SnapshotEntry {
    snapshot: Arc<SpineSnapshot>,
    last_used: u64,
    bytes: usize,
}

/// The lock-guarded interior of a [`TraceStore`].
#[derive(Debug)]
struct StoreInner {
    entries: HashMap<TraceKey, StoreEntry>,
    snapshots: HashMap<(TraceKey, u64), SnapshotEntry>,
    tick: u64,
    checkpoint_bytes: usize,
    checkpoint_budget: Option<usize>,
    snapshot_bytes: usize,
    snapshot_budget: Option<usize>,
    backend: Option<Arc<dyn GridBackend>>,
}

impl Default for StoreInner {
    fn default() -> Self {
        StoreInner {
            entries: HashMap::new(),
            snapshots: HashMap::new(),
            tick: 0,
            checkpoint_bytes: 0,
            checkpoint_budget: None,
            snapshot_bytes: 0,
            snapshot_budget: Some(DEFAULT_SNAPSHOT_BUDGET),
            backend: None,
        }
    }
}

impl StoreInner {
    fn touch(&mut self, key: &TraceKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(key) {
            entry.last_used = tick;
        }
    }

    /// Inserts (or confirms) `reference` under `key` and enforces the
    /// checkpoint byte budget by stripping checkpoints from the
    /// least-recently-used entries. The traces themselves always stay —
    /// only the resume snapshots are evictable, and consumers fall back to
    /// full prefix re-execution without them. Stripped checkpoints are
    /// *not* re-fetched on later hits (deliberately: re-loading them from
    /// a backend would immediately re-violate the budget that evicted
    /// them); they return only when the entry itself is dropped and
    /// re-recorded in a fresh store.
    fn insert(
        &mut self,
        key: &TraceKey,
        reference: Arc<RecordedReference>,
        evictions: &AtomicU64,
    ) -> Arc<RecordedReference> {
        self.tick += 1;
        let tick = self.tick;
        let stored = match self.entries.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                // A concurrent recording won the race; keep the stored one.
                occupied.get_mut().last_used = tick;
                Arc::clone(&occupied.get().reference)
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                let cost = checkpoint_cost(&reference.checkpoints);
                self.checkpoint_bytes += cost;
                vacant.insert(StoreEntry {
                    reference: Arc::clone(&reference),
                    last_used: tick,
                    checkpoint_bytes: cost,
                });
                reference
            }
        };
        self.enforce_budget(evictions);
        stored
    }

    fn cache_snapshot(
        &mut self,
        key: &TraceKey,
        first: u64,
        snapshot: Arc<SpineSnapshot>,
        evictions: &AtomicU64,
    ) {
        self.tick += 1;
        let tick = self.tick;
        let bytes = snapshot.state.dirty_len() + CHECKPOINT_FIXED_COST;
        if self.snapshot_budget.is_some_and(|budget| bytes > budget) {
            // Larger than the whole budget: caching it would immediately
            // evict it (and possibly everything else first).
            return;
        }
        match self.snapshots.entry((key.clone(), first)) {
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                // A concurrent worker computed the same snapshot; keep the
                // stored one (both are deterministic replays of one spine).
                occupied.get_mut().last_used = tick;
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                self.snapshot_bytes += bytes;
                vacant.insert(SnapshotEntry {
                    snapshot,
                    last_used: tick,
                    bytes,
                });
            }
        }
        self.enforce_snapshot_budget(evictions);
    }

    fn enforce_snapshot_budget(&mut self, evictions: &AtomicU64) {
        let Some(budget) = self.snapshot_budget else {
            return;
        };
        while self.snapshot_bytes > budget {
            let Some(victim) = self
                .snapshots
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let entry = self.snapshots.remove(&victim).expect("victim exists");
            self.snapshot_bytes -= entry.bytes;
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn enforce_budget(&mut self, evictions: &AtomicU64) {
        let Some(budget) = self.checkpoint_budget else {
            return;
        };
        while self.checkpoint_bytes > budget {
            // Strictly LRU over the entries that still hold checkpoints —
            // the freshly inserted entry included, if everything older has
            // already been stripped.
            let Some(victim) = self
                .entries
                .iter()
                .filter(|(_, e)| e.checkpoint_bytes > 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let entry = self.entries.get_mut(&victim).expect("victim exists");
            let old = &entry.reference;
            let stripped = Arc::new(RecordedReference {
                trace: old.trace.clone(),
                program: Arc::clone(&old.program),
                memory_size: old.memory_size,
                checkpoints: Vec::new(),
            });
            self.checkpoint_bytes -= entry.checkpoint_bytes;
            entry.checkpoint_bytes = 0;
            entry.reference = stripped;
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A thread-safe memo of reference executions with hit/miss counters.
///
/// One store typically lives as long as a measurement session: every
/// campaign and matrix run asks it for the reference of its
/// `(artifact, entry, args)` cell and only the first request per key pays
/// for a recording. Entries are handed out as [`Arc`]s, so N concurrent
/// campaigns share one trace allocation.
///
/// Entries normally carry resume checkpoints for the matrix executor's
/// fast-forward path; a store built with
/// [`TraceStore::without_checkpoints`] records plain traces instead —
/// the right choice for throwaway stores whose consumers never resume.
///
/// # Persistence (spill/attach)
///
/// [`TraceStore::attach_backend`] plugs a [`GridBackend`] (in practice the
/// `GridStore` of `secbranch-store`) behind the memo: the current contents
/// spill to the backend immediately, every later fresh recording is written
/// through, and an in-memory miss consults the backend before recording —
/// which is how a matrix run warm-starts from a store directory written by
/// an earlier process. Fetch provenance is reported per request as
/// [`TraceFetch`] and in the [`TraceStore::disk_hits`] counter.
///
/// # Bounding memory
///
/// [`TraceStore::set_checkpoint_budget`] caps the bytes retained by resume
/// checkpoints. When an insertion exceeds the budget, checkpoints are
/// stripped from the least-recently-used entries until it fits (counted by
/// [`TraceStore::checkpoint_evictions`]); the traces themselves always
/// stay, and consumers transparently fall back to full re-execution when a
/// checkpoint is gone — output never changes, only speed.
#[derive(Debug)]
pub struct TraceStore {
    inner: Mutex<StoreInner>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    snapshot_evictions: AtomicU64,
    checkpoints: bool,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore {
            inner: Mutex::new(StoreInner::default()),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            snapshot_evictions: AtomicU64::new(0),
            checkpoints: true,
        }
    }
}

impl TraceStore {
    /// Creates an empty store (recordings include resume checkpoints).
    #[must_use]
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Creates an empty store whose recordings skip machine checkpoints —
    /// cheaper when no consumer fast-forwards (e.g. the sequential
    /// [`crate::CampaignRunner`] path behind a throwaway store).
    #[must_use]
    pub fn without_checkpoints() -> Self {
        TraceStore {
            checkpoints: false,
            ..TraceStore::default()
        }
    }

    /// Attaches a persistence backend: spills the current in-memory entries
    /// to it, then keeps it consulted on every miss and written through on
    /// every fresh recording. Attaching the same backend again (by
    /// identity) is a no-op; attaching a different one replaces it and
    /// spills again.
    pub fn attach_backend(&self, backend: Arc<dyn GridBackend>) {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        if let Some(current) = &inner.backend {
            if Arc::ptr_eq(current, &backend) {
                return;
            }
        }
        for (key, entry) in &inner.entries {
            backend.store_trace(key, &entry.reference);
        }
        inner.backend = Some(backend);
    }

    /// The currently attached persistence backend, if any.
    #[must_use]
    pub fn backend(&self) -> Option<Arc<dyn GridBackend>> {
        self.inner
            .lock()
            .expect("trace store poisoned")
            .backend
            .clone()
    }

    /// Caps the bytes retained by resume checkpoints (`None` lifts the
    /// cap). Applies immediately: if the store is already over the new
    /// budget, LRU entries lose their checkpoints now.
    pub fn set_checkpoint_budget(&self, budget: Option<usize>) {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        inner.checkpoint_budget = budget;
        inner.enforce_budget(&self.evictions);
    }

    /// The configured checkpoint byte budget, if any.
    #[must_use]
    pub fn checkpoint_budget(&self) -> Option<usize> {
        self.inner
            .lock()
            .expect("trace store poisoned")
            .checkpoint_budget
    }

    /// Bytes currently retained by resume checkpoints.
    #[must_use]
    pub fn checkpoint_bytes(&self) -> usize {
        self.inner
            .lock()
            .expect("trace store poisoned")
            .checkpoint_bytes
    }

    /// How many entries have had their checkpoints evicted by the budget.
    #[must_use]
    pub fn checkpoint_evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Caches the spine snapshot of a grouped multi-fault batch — the
    /// machine state right after the shared first fault at step `first` of
    /// the trace `key` names — and enforces the snapshot byte budget by
    /// evicting least-recently-used snapshots.
    ///
    /// Purely an accelerator: a later
    /// [`TraceStore::spine_snapshot`] hit spares re-executing the
    /// checkpoint-to-first-fault prefix, an eviction merely re-pays it.
    /// Reports are byte-identical either way.
    pub fn cache_spine_snapshot(&self, key: &TraceKey, first: u64, snapshot: Arc<SpineSnapshot>) {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        inner.cache_snapshot(key, first, snapshot, &self.snapshot_evictions);
    }

    /// The cached spine snapshot for `(key, first)`, if it survived the
    /// budget.
    #[must_use]
    pub fn spine_snapshot(&self, key: &TraceKey, first: u64) -> Option<Arc<SpineSnapshot>> {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.snapshots.get_mut(&(key.clone(), first))?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.snapshot))
    }

    /// Caps the bytes retained by cached spine snapshots (`None` lifts the
    /// cap; the default is [`DEFAULT_SNAPSHOT_BUDGET`]). Applies
    /// immediately.
    pub fn set_snapshot_budget(&self, budget: Option<usize>) {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        inner.snapshot_budget = budget;
        inner.enforce_snapshot_budget(&self.snapshot_evictions);
    }

    /// Bytes currently retained by cached spine snapshots.
    #[must_use]
    pub fn snapshot_bytes(&self) -> usize {
        self.inner
            .lock()
            .expect("trace store poisoned")
            .snapshot_bytes
    }

    /// How many spine snapshots the budget has evicted.
    #[must_use]
    pub fn snapshot_evictions(&self) -> u64 {
        self.snapshot_evictions.load(Ordering::Relaxed)
    }

    /// The reference execution for `key`, recorded on first request and
    /// served from the memo (or the attached backend) afterwards.
    ///
    /// `entry`, `args` and `max_steps` describe how to record on a miss;
    /// by the key contract they must be the execution `key` names (the
    /// entry and args redundancy is deliberate — the store never parses
    /// keys). Failed recordings are not cached: a later request with the
    /// same key records again.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] of the reference run if a recording fails.
    pub fn reference(
        &self,
        key: &TraceKey,
        source: &dyn SimulatorSource,
        entry: &str,
        args: &[u32],
        max_steps: u64,
    ) -> Result<Arc<RecordedReference>, SimError> {
        Ok(self
            .reference_traced(key, source, entry, args, max_steps)?
            .0)
    }

    /// Like [`TraceStore::reference`], additionally reporting how *this
    /// request* was satisfied (memo, disk, or a fresh recording).
    ///
    /// This is the per-request truth the matrix executor attributes to its
    /// cells — unlike a before/after diff of the global [`TraceStore::hits`]
    /// counter, it cannot be skewed by concurrent users of a shared store.
    ///
    /// # Errors
    ///
    /// See [`TraceStore::reference`].
    pub fn reference_traced(
        &self,
        key: &TraceKey,
        source: &dyn SimulatorSource,
        entry: &str,
        args: &[u32],
        max_steps: u64,
    ) -> Result<(Arc<RecordedReference>, TraceFetch), SimError> {
        let backend = {
            let mut inner = self.inner.lock().expect("trace store poisoned");
            if let Some(entry) = inner.entries.get(key) {
                let found = Arc::clone(&entry.reference);
                inner.touch(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((found, TraceFetch::Memory));
            }
            inner.backend.clone()
        };
        // Disk, then recording, both outside the lock: loads and recordings
        // are slow and deterministic, so a concurrent duplicate wastes a
        // little work but never changes the stored value.
        if let Some(backend) = &backend {
            if let Some(persisted) = backend.load_trace(key) {
                // Reattach the program from the requesting source — by the
                // key contract it is the program the trace was recorded on.
                let program = Arc::clone(source.fresh_simulator().shared_program());
                let loaded = Arc::new(persisted.into_recorded(program));
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let mut inner = self.inner.lock().expect("trace store poisoned");
                let stored = inner.insert(key, loaded, &self.evictions);
                return Ok((stored, TraceFetch::Disk));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let recorded = {
            let _span =
                secbranch_obs::span_with("reference", || format!("{} {}", key.artifact, entry));
            Arc::new(record_reference_impl(
                source,
                entry,
                args,
                max_steps,
                self.checkpoints,
            )?)
        };
        if let Some(backend) = &backend {
            backend.store_trace(key, &recorded);
        }
        let mut inner = self.inner.lock().expect("trace store poisoned");
        let stored = inner.insert(key, recorded, &self.evictions);
        Ok((stored, TraceFetch::Recorded))
    }

    /// Registers the store's counters into an observability
    /// [`Registry`](secbranch_obs::Registry) (`secbranch_trace_store_*`
    /// series): the memo hit/miss/disk counters plus checkpoint and
    /// snapshot retention as gauges.
    pub fn register_into(&self, registry: &mut secbranch_obs::Registry) {
        registry.counter("secbranch_trace_store_hits_total", self.hits());
        registry.counter("secbranch_trace_store_disk_hits_total", self.disk_hits());
        registry.counter("secbranch_trace_store_misses_total", self.misses());
        registry.counter(
            "secbranch_trace_store_checkpoint_evictions_total",
            self.checkpoint_evictions(),
        );
        registry.counter(
            "secbranch_trace_store_snapshot_evictions_total",
            self.snapshot_evictions(),
        );
        registry.gauge("secbranch_trace_store_entries", self.len() as u64);
        registry.gauge(
            "secbranch_trace_store_checkpoint_bytes",
            self.checkpoint_bytes() as u64,
        );
        registry.gauge(
            "secbranch_trace_store_snapshot_bytes",
            self.snapshot_bytes() as u64,
        );
    }

    /// How many requests were served from the in-memory memo.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many requests were served from the attached backend.
    #[must_use]
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// How many requests had to record (including failed recordings).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct traces currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("trace store poisoned")
            .entries
            .len()
    }

    /// `true` if nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::PersistedTrace;
    use secbranch_armv7m::{Cond, Operand2, ProgramBuilder, Reg, Simulator, Target};

    fn max_simulator() -> Simulator {
        let mut p = ProgramBuilder::new();
        p.label("max");
        p.push(Instr::Cmp {
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1),
        });
        p.push(Instr::BCond {
            cond: Cond::Hs,
            target: Target::label("done"),
        });
        p.push(Instr::Mov {
            rd: Reg::R0,
            rm: Reg::R1,
        });
        p.label("done");
        p.push(Instr::Bx { rm: Reg::Lr });
        Simulator::new(p.assemble().expect("assembles"), 4096)
    }

    #[test]
    fn recording_captures_pcs_and_conditionals() {
        let recorded = record_reference(&max_simulator(), "max", &[7, 3], 100).expect("records");
        assert_eq!(recorded.trace.result.return_value, 7);
        assert_eq!(recorded.trace.pcs, vec![0, 1, 3], "taken branch path");
        assert_eq!(recorded.trace.conditional_steps, vec![2]);
        assert_eq!(recorded.memory_size, 4096);
    }

    #[test]
    fn store_memoises_by_key_and_counts() {
        let store = TraceStore::new();
        let sim = max_simulator();
        let key_a = TraceKey::new("art", "max", &[7, 3]);
        let key_b = TraceKey::new("art", "max", &[3, 9]);

        let first = store
            .reference(&key_a, &sim, "max", &[7, 3], 100)
            .expect("records");
        let again = store
            .reference(&key_a, &sim, "max", &[7, 3], 100)
            .expect("memoised");
        assert!(Arc::ptr_eq(&first, &again), "one allocation per key");
        let other = store
            .reference(&key_b, &sim, "max", &[3, 9], 100)
            .expect("records");
        assert_eq!(other.trace.result.return_value, 9);
        assert_eq!((store.hits(), store.misses()), (1, 2));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn recording_takes_checkpoints_and_finds_the_one_before_an_anchor() {
        let recorded = record_reference(&max_simulator(), "max", &[7, 3], 100).expect("records");
        // Short run: one checkpoint, the pre-step-1 state.
        assert_eq!(recorded.checkpoints.len(), 1);
        assert_eq!(recorded.checkpoints[0].steps_done, 0);
        assert_eq!(recorded.checkpoints[0].pc, 0, "entry instruction");
        assert!(recorded.checkpoint_before(1).is_some());
        assert!(
            recorded.checkpoint_before(0).is_none(),
            "no checkpoint strictly before step 0"
        );
    }

    #[test]
    fn checkpoint_thinning_respects_the_budget() {
        // A long loop: many checkpoint opportunities, bounded retention.
        let mut p = ProgramBuilder::new();
        p.label("spin");
        p.push(Instr::Add {
            rd: Reg::R1,
            rn: Reg::R1,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Cmp {
            rn: Reg::R1,
            op2: Operand2::Reg(Reg::R0),
        });
        p.push(Instr::BCond {
            cond: Cond::Lo,
            target: Target::label("spin"),
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        let sim = Simulator::new(p.assemble().expect("assembles"), 4096);
        let recorded = record_reference(&sim, "spin", &[20_000], 200_000).expect("records");
        assert!(recorded.trace.steps() > 50_000);
        assert!(recorded.checkpoints.len() <= CHECKPOINT_BUDGET);
        assert!(
            recorded.checkpoints.len() > CHECKPOINT_BUDGET / 4,
            "still dense"
        );
        // Ascending and starting at the pre-step-1 state.
        assert_eq!(recorded.checkpoints[0].steps_done, 0);
        for pair in recorded.checkpoints.windows(2) {
            assert!(pair[0].steps_done < pair[1].steps_done);
        }
        // The selected checkpoint is always strictly before the anchor.
        for anchor in [1, 65, 1000, recorded.trace.steps()] {
            let cp = recorded.checkpoint_before(anchor).expect("found");
            assert!(cp.steps_done < anchor);
        }
    }

    /// An in-memory [`GridBackend`] for exercising the spill/attach path
    /// without touching the filesystem.
    #[derive(Default)]
    struct MapBackend {
        traces: Mutex<HashMap<TraceKey, PersistedTrace>>,
        cells: Mutex<HashMap<crate::persist::CellKey, crate::report::CampaignReport>>,
    }

    impl GridBackend for MapBackend {
        fn load_trace(&self, key: &TraceKey) -> Option<PersistedTrace> {
            self.traces.lock().unwrap().get(key).cloned()
        }
        fn store_trace(&self, key: &TraceKey, recorded: &RecordedReference) {
            self.traces
                .lock()
                .unwrap()
                .insert(key.clone(), PersistedTrace::from_recorded(recorded));
        }
        fn load_cell(
            &self,
            key: &crate::persist::CellKey,
        ) -> Option<crate::report::CampaignReport> {
            self.cells.lock().unwrap().get(key).cloned()
        }
        fn store_cell(
            &self,
            key: &crate::persist::CellKey,
            report: &crate::report::CampaignReport,
        ) {
            self.cells
                .lock()
                .unwrap()
                .insert(key.clone(), report.clone());
        }
    }

    #[test]
    fn attached_backend_receives_recordings_and_serves_misses() {
        let sim = max_simulator();
        let key = TraceKey::new("art", "max", &[7, 3]);
        let backend = Arc::new(MapBackend::default());

        // Write-through: a fresh recording lands on the backend.
        let store = TraceStore::new();
        store.attach_backend(Arc::clone(&backend) as Arc<dyn GridBackend>);
        let (_, fetch) = store
            .reference_traced(&key, &sim, "max", &[7, 3], 100)
            .expect("records");
        assert_eq!(fetch, TraceFetch::Recorded);
        assert_eq!(backend.traces.lock().unwrap().len(), 1);

        // A second store over the same backend warm-starts from it.
        let warm = TraceStore::new();
        warm.attach_backend(Arc::clone(&backend) as Arc<dyn GridBackend>);
        let (reference, fetch) = warm
            .reference_traced(&key, &sim, "max", &[7, 3], 100)
            .expect("loads");
        assert_eq!(fetch, TraceFetch::Disk);
        assert_eq!(warm.misses(), 0, "nothing recorded");
        assert_eq!(warm.disk_hits(), 1);
        assert_eq!(reference.trace.result.return_value, 7);
        assert_eq!(reference.memory_size, 4096);
        // Loaded entries join the memo: the next request is a memory hit.
        let (_, fetch) = warm
            .reference_traced(&key, &sim, "max", &[7, 3], 100)
            .expect("memoised");
        assert_eq!(fetch, TraceFetch::Memory);
    }

    #[test]
    fn attach_spills_existing_entries_and_is_idempotent() {
        let sim = max_simulator();
        let key = TraceKey::new("art", "max", &[4, 9]);
        let store = TraceStore::new();
        store
            .reference(&key, &sim, "max", &[4, 9], 100)
            .expect("records");
        let backend = Arc::new(MapBackend::default());
        store.attach_backend(Arc::clone(&backend) as Arc<dyn GridBackend>);
        assert_eq!(
            backend.traces.lock().unwrap().len(),
            1,
            "pre-existing entry spilled on attach"
        );
        store.attach_backend(Arc::clone(&backend) as Arc<dyn GridBackend>);
        assert_eq!(backend.traces.lock().unwrap().len(), 1);
    }

    #[test]
    fn checkpoint_budget_strips_lru_entries_but_keeps_traces() {
        let store = TraceStore::new();
        let sim = max_simulator();
        let key_a = TraceKey::new("art", "max", &[7, 3]);
        let key_b = TraceKey::new("art", "max", &[3, 9]);
        let a = store
            .reference(&key_a, &sim, "max", &[7, 3], 100)
            .expect("records");
        assert!(!a.checkpoints.is_empty());
        let bytes_after_one = store.checkpoint_bytes();
        assert!(bytes_after_one > 0, "checkpoints are accounted");

        // Touch A, record B, then set a budget that fits only one entry:
        // B (less recently used than the just-touched... ) — LRU order is
        // by last *request*, so after touching A again, B is the victim.
        store
            .reference(&key_b, &sim, "max", &[3, 9], 100)
            .expect("records");
        store
            .reference(&key_a, &sim, "max", &[7, 3], 100)
            .expect("hits");
        store.set_checkpoint_budget(Some(bytes_after_one));
        assert!(store.checkpoint_bytes() <= bytes_after_one);
        assert_eq!(store.checkpoint_evictions(), 1);
        assert_eq!(store.len(), 2, "traces always stay");
        let a_now = store
            .reference(&key_a, &sim, "max", &[7, 3], 100)
            .expect("hits");
        assert!(!a_now.checkpoints.is_empty(), "recently used entry kept");
        let b_now = store
            .reference(&key_b, &sim, "max", &[3, 9], 100)
            .expect("hits");
        assert!(b_now.checkpoints.is_empty(), "LRU entry stripped");
        assert_eq!(
            b_now.trace.result.return_value, 9,
            "the trace itself survives eviction"
        );

        // A zero budget strips everything, including future recordings.
        store.set_checkpoint_budget(Some(0));
        assert_eq!(store.checkpoint_bytes(), 0);
    }

    #[test]
    fn spine_snapshots_are_cached_lru_under_their_own_budget() {
        let store = TraceStore::new();
        let key = TraceKey::new("art", "max", &[7, 3]);
        let other = TraceKey::new("art", "max", &[3, 9]);

        let snap = |sim: &mut Simulator| {
            Arc::new(SpineSnapshot {
                pc: 1,
                steps_done: 1,
                state: sim.machine().snapshot(),
            })
        };
        let mut sim = max_simulator();
        sim.machine_mut().write_bytes(64, &[1, 2, 3, 4]);

        assert!(store.spine_snapshot(&key, 1).is_none());
        store.cache_spine_snapshot(&key, 1, snap(&mut sim));
        store.cache_spine_snapshot(&key, 9, snap(&mut sim));
        store.cache_spine_snapshot(&other, 1, snap(&mut sim));
        let bytes = store.snapshot_bytes();
        assert!(bytes > 0, "snapshots are accounted");
        let got = store.spine_snapshot(&key, 1).expect("cached");
        assert_eq!(got.steps_done, 1);
        assert!(store.spine_snapshot(&key, 2).is_none(), "keyed by first");

        // A budget fitting two entries evicts the least recently used —
        // (key, 9), since (key, 1) was just re-read.
        let per_entry = bytes / 3;
        store.set_snapshot_budget(Some(2 * per_entry + 1));
        assert_eq!(store.snapshot_evictions(), 1);
        assert!(store.spine_snapshot(&key, 9).is_none(), "LRU evicted");
        assert!(store.spine_snapshot(&key, 1).is_some());
        assert!(store.spine_snapshot(&other, 1).is_some());

        // A snapshot larger than the whole budget is not cached at all.
        store.set_snapshot_budget(Some(1));
        assert_eq!(store.snapshot_bytes(), 0, "budget drop evicts the rest");
        store.cache_spine_snapshot(&key, 5, snap(&mut sim));
        assert!(store.spine_snapshot(&key, 5).is_none());
    }

    #[test]
    fn failed_recordings_are_not_cached() {
        let store = TraceStore::new();
        let sim = max_simulator();
        let key = TraceKey::new("art", "nope", &[]);
        assert!(store.reference(&key, &sim, "nope", &[], 100).is_err());
        assert_eq!(store.misses(), 1, "the failed attempt still recorded");
        assert!(store.is_empty(), "no entry for the failure");
        // The same key succeeds once the recording can.
        let key_ok = TraceKey::new("art", "max", &[1, 2]);
        assert!(store.reference(&key_ok, &sim, "max", &[1, 2], 100).is_ok());
        assert_eq!(store.len(), 1);
    }
}
