//! The [`TraceStore`]: memoised fault-free reference executions, keyed by
//! `(artifact fingerprint, entry, args)`.
//!
//! Every campaign needs the reference execution of its target recorded step
//! by step before a single fault can be placed: the [`ReferenceTrace`] is
//! what fault models enumerate their spaces over and what outcomes are
//! classified against. Recording costs a full (instrumented) execution, so
//! a security matrix that attacks one artifact with N fault models would
//! naively record the same trace N times. The store collapses those to one
//! recording per distinct [`TraceKey`] and counts hits and misses, which the
//! matrix reports surface.
//!
//! # Determinism contract
//!
//! A memoised trace stands in for a fresh recording, and shards of the
//! matrix executor classify faulted runs against it, so two properties must
//! hold:
//!
//! 1. **Executions are deterministic.** A [`SimulatorSource`] hands out
//!    pristine simulators whose fault-free run of `entry(args)` is identical
//!    every time (the simulator is a deterministic interpreter and sources
//!    always start from the same initial state, so this holds by
//!    construction).
//! 2. **Keys identify behaviour.** The caller must choose
//!    [`TraceKey::artifact`] so that it covers everything that influences
//!    the execution: the compiled code, the globals image and the simulator
//!    configuration (memory size and step budget). The facade derives it
//!    from the pipeline fingerprint plus a module content hash; hand-rolled
//!    keys must be equally discriminating, otherwise the store can serve a
//!    trace recorded on a *different* program and every downstream
//!    classification silently becomes garbage.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use secbranch_armv7m::{FaultAction, FaultHook, Instr, Machine, MachineState, Program, SimError};

use crate::model::ReferenceTrace;
use crate::runner::SimulatorSource;

/// Upper bound on the number of machine checkpoints recorded along one
/// reference trace. The recorder thins its checkpoint set online (doubling
/// the interval whenever the budget is hit), so memory per trace stays
/// bounded no matter how long the run is.
pub const CHECKPOINT_BUDGET: usize = 48;

/// Identity of one reference execution: which artifact ran, from which entry
/// point, with which arguments.
///
/// See the [module docs](self) for the discrimination requirement on
/// [`TraceKey::artifact`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// A fingerprint of the executed artifact, covering code, data image and
    /// simulator configuration.
    pub artifact: String,
    /// The entry function.
    pub entry: String,
    /// The call arguments.
    pub args: Vec<u32>,
}

impl TraceKey {
    /// Creates a key.
    #[must_use]
    pub fn new(artifact: impl Into<String>, entry: impl Into<String>, args: &[u32]) -> Self {
        TraceKey {
            artifact: artifact.into(),
            entry: entry.into(),
            args: args.to_vec(),
        }
    }
}

/// A machine checkpoint along a recorded reference execution: the full
/// architectural state immediately *before* dynamic step `steps_done + 1`
/// executed at instruction index `pc`.
///
/// Because a faulted run is identical to the reference up to its first
/// injection (fault hooks are inert before their anchor step), an injection
/// anchored at step `s` may start from any checkpoint with
/// `steps_done < s` instead of re-executing the prefix — the fast-forward
/// path of the matrix executor.
#[derive(Debug)]
pub struct TraceCheckpoint {
    /// Dynamic steps executed before this checkpoint.
    pub steps_done: u64,
    /// The instruction index about to execute.
    pub pc: u32,
    /// The captured machine state.
    pub state: MachineState,
}

/// One recorded reference execution plus the static context fault models
/// need to build their spaces over it.
#[derive(Debug)]
pub struct RecordedReference {
    /// The step-by-step trace of the fault-free run.
    pub trace: ReferenceTrace,
    /// The program that ran (shared with the recording simulator).
    pub program: Arc<Program>,
    /// Guest RAM size of the recording simulator in bytes.
    pub memory_size: u32,
    /// Machine checkpoints along the trace, in ascending `steps_done`
    /// order, starting with the pre-step-1 state.
    pub checkpoints: Vec<TraceCheckpoint>,
}

impl RecordedReference {
    /// The latest checkpoint usable for an injection anchored at dynamic
    /// step `anchor` — the one with the largest `steps_done < anchor`, so
    /// the anchor step itself still executes (and the fault hook still
    /// fires) after the fast-forward.
    #[must_use]
    pub fn checkpoint_before(&self, anchor: u64) -> Option<&TraceCheckpoint> {
        let index = self
            .checkpoints
            .partition_point(|cp| cp.steps_done < anchor);
        index.checked_sub(1).map(|i| &self.checkpoints[i])
    }
}

/// Records the reference execution: the pc of every dynamic step, the steps
/// at which conditional branches executed, and periodic machine checkpoints
/// (every `interval` steps, thinned by doubling the interval whenever the
/// [`CHECKPOINT_BUDGET`] is hit).
#[derive(Debug)]
struct TraceRecorder {
    pcs: Vec<u32>,
    conditional_steps: Vec<u64>,
    checkpoints: Vec<TraceCheckpoint>,
    checkpoints_enabled: bool,
    interval: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder {
            pcs: Vec::new(),
            conditional_steps: Vec::new(),
            checkpoints: Vec::new(),
            checkpoints_enabled: true,
            interval: 64,
        }
    }
}

impl FaultHook for TraceRecorder {
    fn before_execute(
        &mut self,
        step: u64,
        pc: usize,
        instr: &Instr,
        machine: &mut Machine,
    ) -> FaultAction {
        self.pcs.push(pc as u32);
        if matches!(instr, Instr::BCond { .. }) {
            self.conditional_steps.push(step);
        }
        if self.checkpoints_enabled && (step - 1).is_multiple_of(self.interval) {
            if self.checkpoints.len() == CHECKPOINT_BUDGET {
                // Budget hit: keep every other checkpoint, double the
                // interval. All retained `steps_done` stay multiples of the
                // new interval, so the cadence remains uniform.
                let mut index: usize = 0;
                self.checkpoints.retain(|_| {
                    index += 1;
                    (index - 1).is_multiple_of(2)
                });
                self.interval *= 2;
                if !(step - 1).is_multiple_of(self.interval) {
                    return FaultAction::Continue;
                }
            }
            self.checkpoints.push(TraceCheckpoint {
                steps_done: step - 1,
                pc: pc as u32,
                state: machine.snapshot(),
            });
        }
        FaultAction::Continue
    }
}

/// Records the fault-free reference execution of `entry(args)` on a fresh
/// simulator from `source`, including resume checkpoints (no memoisation —
/// [`TraceStore::reference`] is the caching front end).
///
/// # Errors
///
/// Returns the [`SimError`] of the reference run if it fails.
pub fn record_reference(
    source: &dyn SimulatorSource,
    entry: &str,
    args: &[u32],
    max_steps: u64,
) -> Result<RecordedReference, SimError> {
    record_reference_impl(source, entry, args, max_steps, true)
}

/// Like [`record_reference`] but without machine checkpoints — for callers
/// that never fast-forward (the sequential [`crate::CampaignRunner`]
/// reference path), so they do not pay for snapshots nobody reads.
///
/// # Errors
///
/// Returns the [`SimError`] of the reference run if it fails.
pub fn record_reference_without_checkpoints(
    source: &dyn SimulatorSource,
    entry: &str,
    args: &[u32],
    max_steps: u64,
) -> Result<RecordedReference, SimError> {
    record_reference_impl(source, entry, args, max_steps, false)
}

fn record_reference_impl(
    source: &dyn SimulatorSource,
    entry: &str,
    args: &[u32],
    max_steps: u64,
    with_checkpoints: bool,
) -> Result<RecordedReference, SimError> {
    let mut sim = source.fresh_simulator();
    let mut recorder = TraceRecorder {
        checkpoints_enabled: with_checkpoints,
        ..TraceRecorder::default()
    };
    let result = sim.call_with_faults(entry, args, max_steps, &mut recorder)?;
    Ok(RecordedReference {
        trace: ReferenceTrace {
            result,
            pcs: recorder.pcs,
            conditional_steps: recorder.conditional_steps,
        },
        program: Arc::clone(sim.shared_program()),
        memory_size: sim.machine().memory_size(),
        checkpoints: recorder.checkpoints,
    })
}

/// A thread-safe memo of reference executions with hit/miss counters.
///
/// One store typically lives as long as a measurement session: every
/// campaign and matrix run asks it for the reference of its
/// `(artifact, entry, args)` cell and only the first request per key pays
/// for a recording. Entries are handed out as [`Arc`]s, so N concurrent
/// campaigns share one trace allocation.
///
/// Entries normally carry resume checkpoints for the matrix executor's
/// fast-forward path; a store built with
/// [`TraceStore::without_checkpoints`] records plain traces instead —
/// the right choice for throwaway stores whose consumers never resume.
#[derive(Debug)]
pub struct TraceStore {
    entries: Mutex<HashMap<TraceKey, Arc<RecordedReference>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    checkpoints: bool,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            checkpoints: true,
        }
    }
}

impl TraceStore {
    /// Creates an empty store (recordings include resume checkpoints).
    #[must_use]
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Creates an empty store whose recordings skip machine checkpoints —
    /// cheaper when no consumer fast-forwards (e.g. the sequential
    /// [`crate::CampaignRunner`] path behind a throwaway store).
    #[must_use]
    pub fn without_checkpoints() -> Self {
        TraceStore {
            checkpoints: false,
            ..TraceStore::default()
        }
    }

    /// The reference execution for `key`, recorded on first request and
    /// served from the memo afterwards.
    ///
    /// `entry`, `args` and `max_steps` describe how to record on a miss;
    /// by the key contract they must be the execution `key` names (the
    /// entry and args redundancy is deliberate — the store never parses
    /// keys). Failed recordings are not cached: a later request with the
    /// same key records again.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] of the reference run if a recording fails.
    pub fn reference(
        &self,
        key: &TraceKey,
        source: &dyn SimulatorSource,
        entry: &str,
        args: &[u32],
        max_steps: u64,
    ) -> Result<Arc<RecordedReference>, SimError> {
        Ok(self
            .reference_traced(key, source, entry, args, max_steps)?
            .0)
    }

    /// Like [`TraceStore::reference`], additionally reporting whether *this
    /// request* was served from the memo (`true`) or recorded (`false`).
    ///
    /// This is the per-request truth the matrix executor attributes to its
    /// cells — unlike a before/after diff of the global [`TraceStore::hits`]
    /// counter, it cannot be skewed by concurrent users of a shared store.
    ///
    /// # Errors
    ///
    /// See [`TraceStore::reference`].
    pub fn reference_traced(
        &self,
        key: &TraceKey,
        source: &dyn SimulatorSource,
        entry: &str,
        args: &[u32],
        max_steps: u64,
    ) -> Result<(Arc<RecordedReference>, bool), SimError> {
        if let Some(found) = self.entries.lock().expect("trace store poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(found), true));
        }
        // Record outside the lock: recording is slow and deterministic, so a
        // concurrent double-record wastes a little work but never changes the
        // stored value. (Both recordings count as misses.)
        self.misses.fetch_add(1, Ordering::Relaxed);
        let recorded = Arc::new(record_reference_impl(
            source,
            entry,
            args,
            max_steps,
            self.checkpoints,
        )?);
        let mut entries = self.entries.lock().expect("trace store poisoned");
        let stored = entries
            .entry(key.clone())
            .or_insert_with(|| Arc::clone(&recorded));
        Ok((Arc::clone(stored), false))
    }

    /// How many requests were served from the memo.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many requests had to record (including failed recordings).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct traces currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("trace store poisoned").len()
    }

    /// `true` if nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_armv7m::{Cond, Operand2, ProgramBuilder, Reg, Simulator, Target};

    fn max_simulator() -> Simulator {
        let mut p = ProgramBuilder::new();
        p.label("max");
        p.push(Instr::Cmp {
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1),
        });
        p.push(Instr::BCond {
            cond: Cond::Hs,
            target: Target::label("done"),
        });
        p.push(Instr::Mov {
            rd: Reg::R0,
            rm: Reg::R1,
        });
        p.label("done");
        p.push(Instr::Bx { rm: Reg::Lr });
        Simulator::new(p.assemble().expect("assembles"), 4096)
    }

    #[test]
    fn recording_captures_pcs_and_conditionals() {
        let recorded = record_reference(&max_simulator(), "max", &[7, 3], 100).expect("records");
        assert_eq!(recorded.trace.result.return_value, 7);
        assert_eq!(recorded.trace.pcs, vec![0, 1, 3], "taken branch path");
        assert_eq!(recorded.trace.conditional_steps, vec![2]);
        assert_eq!(recorded.memory_size, 4096);
    }

    #[test]
    fn store_memoises_by_key_and_counts() {
        let store = TraceStore::new();
        let sim = max_simulator();
        let key_a = TraceKey::new("art", "max", &[7, 3]);
        let key_b = TraceKey::new("art", "max", &[3, 9]);

        let first = store
            .reference(&key_a, &sim, "max", &[7, 3], 100)
            .expect("records");
        let again = store
            .reference(&key_a, &sim, "max", &[7, 3], 100)
            .expect("memoised");
        assert!(Arc::ptr_eq(&first, &again), "one allocation per key");
        let other = store
            .reference(&key_b, &sim, "max", &[3, 9], 100)
            .expect("records");
        assert_eq!(other.trace.result.return_value, 9);
        assert_eq!((store.hits(), store.misses()), (1, 2));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn recording_takes_checkpoints_and_finds_the_one_before_an_anchor() {
        let recorded = record_reference(&max_simulator(), "max", &[7, 3], 100).expect("records");
        // Short run: one checkpoint, the pre-step-1 state.
        assert_eq!(recorded.checkpoints.len(), 1);
        assert_eq!(recorded.checkpoints[0].steps_done, 0);
        assert_eq!(recorded.checkpoints[0].pc, 0, "entry instruction");
        assert!(recorded.checkpoint_before(1).is_some());
        assert!(
            recorded.checkpoint_before(0).is_none(),
            "no checkpoint strictly before step 0"
        );
    }

    #[test]
    fn checkpoint_thinning_respects_the_budget() {
        // A long loop: many checkpoint opportunities, bounded retention.
        let mut p = ProgramBuilder::new();
        p.label("spin");
        p.push(Instr::Add {
            rd: Reg::R1,
            rn: Reg::R1,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Cmp {
            rn: Reg::R1,
            op2: Operand2::Reg(Reg::R0),
        });
        p.push(Instr::BCond {
            cond: Cond::Lo,
            target: Target::label("spin"),
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        let sim = Simulator::new(p.assemble().expect("assembles"), 4096);
        let recorded = record_reference(&sim, "spin", &[20_000], 200_000).expect("records");
        assert!(recorded.trace.steps() > 50_000);
        assert!(recorded.checkpoints.len() <= CHECKPOINT_BUDGET);
        assert!(
            recorded.checkpoints.len() > CHECKPOINT_BUDGET / 4,
            "still dense"
        );
        // Ascending and starting at the pre-step-1 state.
        assert_eq!(recorded.checkpoints[0].steps_done, 0);
        for pair in recorded.checkpoints.windows(2) {
            assert!(pair[0].steps_done < pair[1].steps_done);
        }
        // The selected checkpoint is always strictly before the anchor.
        for anchor in [1, 65, 1000, recorded.trace.steps()] {
            let cp = recorded.checkpoint_before(anchor).expect("found");
            assert!(cp.steps_done < anchor);
        }
    }

    #[test]
    fn failed_recordings_are_not_cached() {
        let store = TraceStore::new();
        let sim = max_simulator();
        let key = TraceKey::new("art", "nope", &[]);
        assert!(store.reference(&key, &sim, "nope", &[], 100).is_err());
        assert_eq!(store.misses(), 1, "the failed attempt still recorded");
        assert!(store.is_empty(), "no entry for the failure");
        // The same key succeeds once the recording can.
        let key_ok = TraceKey::new("art", "max", &[1, 2]);
        assert!(store.reference(&key_ok, &sim, "max", &[1, 2], 100).is_ok());
        assert_eq!(store.len(), 1);
    }
}
