//! The [`MatrixExecutor`]: one global fault-space scheduler for a whole
//! security matrix.
//!
//! The [`crate::CampaignRunner`] parallelises *one* campaign; a security
//! matrix (workloads × protection variants × fault models) built on it runs
//! its cells strictly one after another, re-records the same reference trace
//! for every model attacking the same artifact, and serialises whenever one
//! cell's fault space dwarfs the others. The executor instead compiles the
//! *entire* matrix down to one job graph:
//!
//! 1. every cell's reference trace is fetched through a [`TraceStore`]
//!    (recorded once per distinct `(artifact, entry, args)` key),
//! 2. every cell's fault space is flattened into fixed-size **shards**
//!    tagged with their cell,
//! 3. one shared worker pool self-schedules over the global shard list —
//!    workers steal the next unclaimed shard regardless of which cell it
//!    belongs to, so a single huge cell spreads across all workers instead
//!    of serialising the tail of the run,
//! 4. per-cell outcomes are stitched back together in canonical fault-space
//!    order and assembled into ordinary [`CampaignReport`]s.
//!
//! The hard invariant: the assembled reports are **byte-identical** to what
//! the sequential per-cell [`crate::CampaignRunner`] path produces, at any
//! thread count and shard size. Scheduling only decides *who* computes an
//! outcome, never where it lands; workers recycle simulators through
//! [`SimulatorSource::reset`], which restores the exact pristine state a
//! fresh simulator would have (see the [`crate::trace_store`] determinism
//! contract).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Instant;

use secbranch_armv7m::{SimError, Simulator};

use crate::model::{CampaignContext, FaultModel};
use crate::persist::CellKey;
use crate::point::FaultPoint;
use crate::report::{classify, CampaignReport, Outcome};
use crate::runner::{assemble_report, run_point, SimulatorSource};
use crate::trace_store::{RecordedReference, TraceFetch, TraceKey, TraceStore};

/// One cell of a security matrix, described as data: which target to attack
/// (`source` + `key`), how to call it, and with which fault model.
pub struct MatrixJob<'a> {
    /// The simulator source of the artifact under attack.
    pub source: &'a dyn SimulatorSource,
    /// The trace-store identity of this cell's reference execution. Jobs on
    /// the same artifact/entry/args share one recording when their keys are
    /// equal.
    pub key: TraceKey,
    /// The entry function.
    pub entry: String,
    /// The call arguments.
    pub args: Vec<u32>,
    /// Dynamic instruction budget per execution.
    pub max_steps: u64,
    /// The fault model attacking this cell.
    pub model: &'a dyn FaultModel,
}

/// The result of one matrix cell: the ordinary campaign report plus
/// execution metadata of the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCellResult {
    /// The campaign report, byte-identical to the sequential path's.
    pub report: CampaignReport,
    /// `true` if the whole cell was served from the trace store's
    /// persistence backend — no reference fetch, no injection, zero
    /// simulation.
    pub cell_hit: bool,
    /// How this cell's reference trace was obtained (`None` on a cell hit:
    /// a cached cell needs no reference at all).
    pub trace_fetch: Option<TraceFetch>,
    /// Injection compute time attributed to this cell, in microseconds
    /// (summed over its shards across all workers; under a shared pool the
    /// cells overlap in wall time, so these sum to roughly
    /// `threads × elapsed wall time`). Zero on a cell hit.
    pub compute_micros: u64,
}

impl MatrixCellResult {
    /// `true` if this cell's reference trace was served from a cache
    /// (memory or disk) instead of recorded — vacuously true on a cell hit.
    #[must_use]
    pub fn trace_hit(&self) -> bool {
        self.trace_fetch.map_or(self.cell_hit, TraceFetch::is_hit)
    }
}

/// One contiguous slice of one job's fault space, the scheduling unit of
/// the shared pool.
#[derive(Debug, Clone, Copy)]
struct Shard {
    job: usize,
    start: usize,
    end: usize,
}

/// What one shard produces: its outcomes in fault-space order plus the
/// microseconds its worker spent computing them.
type ShardOutput = (Vec<(Outcome, u32)>, u64);

/// Executes whole security matrices on one shared worker pool with a
/// memoised trace store (the scheduling scheme — trace memoisation,
/// shard flattening, self-scheduling, canonical-order stitching — is
/// described at the top of `executor.rs`).
///
/// # Example
///
/// Two fault models attacking one target become two [`MatrixJob`]s sharing
/// a [`TraceKey`]; the reference trace is recorded once and both cells'
/// fault spaces run on one pool:
///
/// ```
/// use secbranch_armv7m::{Cond, Instr, Operand2, ProgramBuilder, Reg, Simulator, Target};
/// use secbranch_campaign::{
///     BranchInversion, InstructionSkip, MatrixExecutor, MatrixJob, TraceKey, TraceStore,
/// };
///
/// # fn main() -> Result<(), secbranch_armv7m::SimError> {
/// // max(a, b) — one unprotected conditional branch.
/// let mut p = ProgramBuilder::new();
/// p.label("max");
/// p.push(Instr::Cmp { rn: Reg::R0, op2: Operand2::Reg(Reg::R1) });
/// p.push(Instr::BCond { cond: Cond::Hs, target: Target::label("done") });
/// p.push(Instr::Mov { rd: Reg::R0, rm: Reg::R1 });
/// p.label("done");
/// p.push(Instr::Bx { rm: Reg::Lr });
/// let simulator = Simulator::new(p.assemble()?, 4096);
///
/// let jobs: Vec<MatrixJob> = [&InstructionSkip as _, &BranchInversion as _]
///     .into_iter()
///     .map(|model| MatrixJob {
///         source: &simulator,
///         key: TraceKey::new("max-artifact", "max", &[7, 3]),
///         entry: "max".to_string(),
///         args: vec![7, 3],
///         max_steps: 100,
///         model,
///     })
///     .collect();
/// let store = TraceStore::new();
/// let results = MatrixExecutor::new().with_threads(2).run(&jobs, &store)?;
///
/// assert_eq!(results.len(), 2);
/// assert!(!results[0].trace_hit(), "first cell records the reference");
/// assert!(results[1].trace_hit(), "second cell reuses it");
/// assert_eq!(results[1].report.counts.wrong_result_undetected, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MatrixExecutor {
    threads: usize,
    shard_size: usize,
}

impl Default for MatrixExecutor {
    fn default() -> Self {
        MatrixExecutor::new()
    }
}

impl MatrixExecutor {
    /// Default shard size: large enough that scheduling overhead vanishes,
    /// small enough that a big cell splits across every worker.
    pub const DEFAULT_SHARD_SIZE: usize = 64;

    /// An executor using all available parallelism.
    #[must_use]
    pub fn new() -> Self {
        MatrixExecutor {
            threads: thread::available_parallelism().map_or(1, usize::from),
            shard_size: MatrixExecutor::DEFAULT_SHARD_SIZE,
        }
    }

    /// Overrides the worker-thread count (minimum 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the shard size (minimum 1). Output-invariant: shards decide
    /// scheduling granularity, never report contents.
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured shard size.
    #[must_use]
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Runs every job's fault space on the shared pool and returns one
    /// result per job, in job order.
    ///
    /// Reference traces are fetched through `store` (and stay there: a
    /// later matrix over the same artifacts hits the memo). Traces are
    /// resolved in job order before any worker starts, so a failing
    /// reference reports the *first* failing cell, exactly like the
    /// sequential path.
    ///
    /// When the store has a persistence backend attached
    /// ([`TraceStore::attach_backend`]), each job is first probed against
    /// the backend's **cell cache** keyed by
    /// `(artifact fingerprint, model fingerprint, entry, args)`: a hit
    /// serves the persisted [`CampaignReport`] verbatim — no reference
    /// fetch, no injections — and a computed cell is written back, so an
    /// unchanged grid re-run does zero simulation. Cached reports are
    /// byte-identical to recomputed ones (the backend's round-trip
    /// contract), so the executor's output invariant is unaffected.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] of the first failing reference run (cells
    /// served from the cache never run their reference, so a warm store can
    /// mask a failure a cold run would report).
    pub fn run(
        &self,
        jobs: &[MatrixJob<'_>],
        store: &TraceStore,
    ) -> Result<Vec<MatrixCellResult>, SimError> {
        // Phase 0: the persistent cell cache. `cached[i]` is Some when job
        // i needs no execution at all.
        let backend = store.backend();
        let cell_keys: Vec<Option<CellKey>> = jobs
            .iter()
            .map(|job| {
                backend.as_ref().map(|_| {
                    CellKey::new(
                        job.key.artifact.clone(),
                        job.model.fingerprint(),
                        job.entry.clone(),
                        &job.args,
                    )
                })
            })
            .collect();
        let mut cached: Vec<Option<CampaignReport>> = cell_keys
            .iter()
            .map(|key| match (&backend, key) {
                (Some(backend), Some(key)) => backend.load_cell(key),
                _ => None,
            })
            .collect();

        // Phase 1: reference traces for the live (non-cached) jobs,
        // memoised per key.
        let mut recorded: Vec<Option<Arc<RecordedReference>>> = vec![None; jobs.len()];
        let mut fetches: Vec<Option<TraceFetch>> = vec![None; jobs.len()];
        for (index, job) in jobs.iter().enumerate() {
            if cached[index].is_some() {
                continue;
            }
            let (reference, fetch) = store.reference_traced(
                &job.key,
                job.source,
                &job.entry,
                &job.args,
                job.max_steps,
            )?;
            recorded[index] = Some(reference);
            fetches[index] = Some(fetch);
        }

        // Phase 2: fault spaces, in canonical per-model order (empty for
        // cached jobs — they schedule nothing).
        let regions: Vec<Vec<(u32, u32)>> =
            jobs.iter().map(|j| j.source.global_regions()).collect();
        let spaces: Vec<Vec<FaultPoint>> = jobs
            .iter()
            .zip(&recorded)
            .zip(&regions)
            .map(|((job, reference), regions)| {
                let Some(reference) = reference else {
                    return Vec::new();
                };
                let ctx = CampaignContext {
                    trace: &reference.trace,
                    program: &reference.program,
                    global_regions: regions,
                    memory_size: reference.memory_size,
                };
                job.model.fault_points(&ctx)
            })
            .collect();

        // Phase 3: the global shard list and the pool. Shards stay grouped
        // by job in the list; self-scheduling interleaves them across
        // workers dynamically, which is what lets one huge cell occupy every
        // worker while small cells drain in between.
        let shards: Vec<Shard> = spaces
            .iter()
            .enumerate()
            .flat_map(|(job, points)| {
                (0..points.len())
                    .step_by(self.shard_size)
                    .map(move |start| Shard {
                        job,
                        start,
                        end: (start + self.shard_size).min(points.len()),
                    })
            })
            .collect();
        let slots: Vec<OnceLock<ShardOutput>> = shards.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);

        // Identity of each job's simulator source (data-pointer address), so
        // workers recycle one simulator across *every* model attacking one
        // artifact, not just across one cell's shards.
        let source_ids: Vec<usize> = jobs
            .iter()
            .map(|job| std::ptr::from_ref(job.source).cast::<()>() as usize)
            .collect();

        let run_shard = |shard: Shard, sim: &mut Option<(usize, Simulator)>| {
            let job = &jobs[shard.job];
            // Reuse the worker's simulator when the previous shard was on
            // the same artifact; rebuild otherwise. Reset/restore brings it
            // back to pristine state either way.
            match sim {
                Some((owner, _)) if *owner == source_ids[shard.job] => {}
                _ => *sim = Some((source_ids[shard.job], job.source.fresh_simulator())),
            }
            let (_, simulator) = sim.as_mut().expect("just installed");
            let reference = recorded[shard.job]
                .as_ref()
                .expect("only live jobs have shards");
            let started = Instant::now();
            let outcomes: Vec<(Outcome, u32)> = spaces[shard.job][shard.start..shard.end]
                .iter()
                .map(|point| {
                    // Fast-forward: the faulted run equals the reference up
                    // to its anchor (hooks are inert before it), so start
                    // from the last checkpoint before the anchor instead of
                    // re-executing the prefix.
                    if let Some(cp) = reference.checkpoint_before(point.anchor_step()) {
                        simulator.machine_mut().restore(&cp.state);
                        let mut hook = point.hook();
                        let result = simulator.resume_with_faults(
                            cp.pc as usize,
                            cp.steps_done,
                            job.max_steps,
                            &mut hook,
                        );
                        let outcome = classify(&reference.trace.result, &result);
                        (outcome, result.map_or(0, |r| r.return_value))
                    } else {
                        job.source.reset(simulator);
                        run_point(
                            simulator,
                            &job.entry,
                            &job.args,
                            job.max_steps,
                            &reference.trace.result,
                            point,
                        )
                    }
                })
                .collect();
            (outcomes, started.elapsed().as_micros() as u64)
        };
        let worker = || {
            let mut sim = None;
            loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&shard) = shards.get(index) else {
                    break;
                };
                let outcome = run_shard(shard, &mut sim);
                slots[index].set(outcome).expect("shard claimed twice");
            }
        };
        let workers = self.threads.min(shards.len()).max(1);
        if workers <= 1 {
            worker();
        } else {
            thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }

        // Phase 4: stitch outcomes back per job (shards of one job appear in
        // fault-space order in the global list), assemble the reports, and
        // write freshly computed cells back to the backend.
        let mut outcomes: Vec<Vec<(Outcome, u32)>> =
            spaces.iter().map(|s| Vec::with_capacity(s.len())).collect();
        let mut compute_micros = vec![0u64; jobs.len()];
        for (shard, slot) in shards.iter().zip(&slots) {
            let (shard_outcomes, micros) = slot.get().expect("all shards executed");
            outcomes[shard.job].extend_from_slice(shard_outcomes);
            compute_micros[shard.job] += micros;
        }
        Ok(jobs
            .iter()
            .enumerate()
            .map(|(index, job)| {
                if let Some(report) = cached[index].take() {
                    return MatrixCellResult {
                        report,
                        cell_hit: true,
                        trace_fetch: None,
                        compute_micros: 0,
                    };
                }
                let reference = recorded[index].as_ref().expect("live job");
                let report = assemble_report(
                    job.model.name(),
                    &job.entry,
                    &job.args,
                    &reference.trace,
                    &reference.program,
                    &spaces[index],
                    &outcomes[index],
                );
                if let (Some(backend), Some(key)) = (&backend, &cell_keys[index]) {
                    backend.store_cell(key, &report);
                }
                MatrixCellResult {
                    report,
                    cell_hit: false,
                    trace_fetch: fetches[index],
                    compute_micros: compute_micros[index],
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BranchInversion, InstructionSkip, RegisterBitFlip};
    use crate::runner::CampaignRunner;
    use secbranch_armv7m::{Cond, Instr, Operand2, ProgramBuilder, Reg, Simulator, Target};

    fn max_simulator() -> Simulator {
        let mut p = ProgramBuilder::new();
        p.label("max");
        p.push(Instr::Cmp {
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1),
        });
        p.push(Instr::BCond {
            cond: Cond::Hs,
            target: Target::label("done"),
        });
        p.push(Instr::Mov {
            rd: Reg::R0,
            rm: Reg::R1,
        });
        p.label("done");
        p.push(Instr::Bx { rm: Reg::Lr });
        Simulator::new(p.assemble().expect("assembles"), 4096)
    }

    fn jobs_over<'a>(sim: &'a Simulator, models: &'a [&'a dyn FaultModel]) -> Vec<MatrixJob<'a>> {
        models
            .iter()
            .map(|model| MatrixJob {
                source: sim,
                key: TraceKey::new("max-artifact", "max", &[7, 3]),
                entry: "max".to_string(),
                args: vec![7, 3],
                max_steps: 100,
                model: *model,
            })
            .collect()
    }

    #[test]
    fn executor_matches_the_sequential_runner_per_cell() {
        let sim = max_simulator();
        let flip = RegisterBitFlip {
            trials: 64,
            seed: 0xFEED,
        };
        let models: Vec<&dyn FaultModel> = vec![&InstructionSkip, &BranchInversion, &flip];
        let jobs = jobs_over(&sim, &models);
        let store = TraceStore::new();
        for (threads, shard_size) in [(1, 1), (2, 3), (8, 64)] {
            let results = MatrixExecutor::new()
                .with_threads(threads)
                .with_shard_size(shard_size)
                .run(&jobs, &store)
                .expect("runs");
            let runner = CampaignRunner::new().with_threads(1);
            for (result, model) in results.iter().zip(&models) {
                let sequential = runner
                    .run(&sim, "max", &[7, 3], 100, *model)
                    .expect("sequential runs");
                assert_eq!(
                    result.report,
                    sequential,
                    "threads={threads} shard={shard_size} model={}",
                    model.name()
                );
                assert_eq!(result.report.to_json(), sequential.to_json());
            }
        }
    }

    #[test]
    fn shared_keys_record_the_trace_once() {
        let sim = max_simulator();
        let models: Vec<&dyn FaultModel> = vec![&InstructionSkip, &BranchInversion];
        let jobs = jobs_over(&sim, &models);
        let store = TraceStore::new();
        let results = MatrixExecutor::new()
            .with_threads(2)
            .run(&jobs, &store)
            .expect("runs");
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert!(!results[0].trace_hit(), "first cell records");
        assert_eq!(results[0].trace_fetch, Some(TraceFetch::Recorded));
        assert!(results[1].trace_hit(), "second cell reuses");
        assert_eq!(results[1].trace_fetch, Some(TraceFetch::Memory));
        assert!(
            results.iter().all(|r| !r.cell_hit),
            "no backend attached: nothing is served as a cached cell"
        );
        // A second matrix over the same keys is all hits.
        let again = MatrixExecutor::new().run(&jobs, &store).expect("runs");
        assert_eq!((store.hits(), store.misses()), (3, 1));
        assert!(again.iter().all(|r| r.trace_hit()));
    }

    #[test]
    fn failing_reference_reports_the_first_failing_cell() {
        let sim = max_simulator();
        let models: Vec<&dyn FaultModel> = vec![&InstructionSkip];
        let mut jobs = jobs_over(&sim, &models);
        jobs[0].entry = "nope".to_string();
        jobs[0].key = TraceKey::new("max-artifact", "nope", &[7, 3]);
        let err = MatrixExecutor::new().run(&jobs, &TraceStore::new());
        assert!(matches!(err, Err(SimError::UnknownEntryPoint { .. })));
    }

    #[test]
    fn empty_fault_spaces_produce_empty_reports() {
        // A straight-line program has no conditional branches: the
        // branch-inversion space is empty, which must yield a zero-count
        // report rather than a hang or a panic.
        let mut p = ProgramBuilder::new();
        p.label("id");
        p.push(Instr::Bx { rm: Reg::Lr });
        let sim = Simulator::new(p.assemble().expect("assembles"), 1024);
        let jobs = vec![MatrixJob {
            source: &sim,
            key: TraceKey::new("id-artifact", "id", &[5]),
            entry: "id".to_string(),
            args: vec![5],
            max_steps: 10,
            model: &BranchInversion,
        }];
        let results = MatrixExecutor::new()
            .with_threads(4)
            .run(&jobs, &TraceStore::new())
            .expect("runs");
        assert_eq!(results[0].report.counts.total(), 0);
        assert!(results[0].report.escapes.is_empty());
    }
}
