//! The [`MatrixExecutor`]: one global fault-space scheduler for a whole
//! security matrix, with differential resume.
//!
//! The [`crate::CampaignRunner`] parallelises *one* campaign; a security
//! matrix (workloads × protection variants × fault models) built on it runs
//! its cells strictly one after another, re-records the same reference trace
//! for every model attacking the same artifact, and serialises whenever one
//! cell's fault space dwarfs the others. The executor instead compiles the
//! *entire* matrix down to one job graph:
//!
//! 1. every cell's reference trace is fetched through a [`TraceStore`]
//!    (recorded once per distinct `(artifact, entry, args)` key), and a
//!    [`SuffixIndex`] is built once per key for liveness pruning,
//! 2. every cell's fault space is partitioned by its model's
//!    [`FaultModel::plan`] into execution groups — multi-fault batches
//!    sharing a first fault stay atomic, everything else splits freely —
//!    and the groups are packed into fixed-size **shards** tagged with
//!    their cell,
//! 3. one shared worker pool self-schedules over the global shard list —
//!    workers steal the next unclaimed shard regardless of which cell it
//!    belongs to, so a single huge cell spreads across all workers instead
//!    of serialising the tail of the run,
//! 4. per-cell outcomes are stitched back together in canonical fault-space
//!    order and assembled into ordinary [`CampaignReport`]s.
//!
//! # Differential resume
//!
//! Three mechanisms replace the naive run-every-fault-from-scratch loop,
//! all provably output-invariant:
//!
//! * **Liveness pruning** — a fault whose corrupted locations are all
//!   overwritten before any read ([`SuffixIndex`]) is answered from the
//!   reference result with zero execution.
//! * **Checkpoint reconvergence** — a faulted run starts from the last
//!   reference checkpoint before its anchor and, once past its last fault
//!   step, pauses at each later reference checkpoint: if the machine state
//!   matches the reference's there, the remainder of the run *is* the
//!   reference suffix and the reference outcome is returned without
//!   executing it.
//! * **First-fault snapshot fan-out** — a group of double-skip points
//!   sharing `first` executes the prefix (through the first skip) once,
//!   snapshots the machine ([`SpineSnapshot`], cached in the store under an
//!   LRU byte budget), and fans the second-skip candidates out from that
//!   spine, restoring between candidates instead of re-running the shared
//!   prefix per point.
//!
//! The hard invariant: the assembled reports are **byte-identical** to what
//! the sequential per-cell [`crate::CampaignRunner`] path produces, at any
//! thread count, shard size and grouping. Scheduling and resume strategy
//! only decide *who* computes an outcome and *how much of it* is actually
//! executed, never where it lands or what it is; workers recycle simulators
//! through [`SimulatorSource::reset`], which restores the exact pristine
//! state a fresh simulator would have (see the [`crate::trace_store`]
//! determinism contract).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Instant;

use secbranch_armv7m::{
    FaultAction, FaultHook, Instr, Machine, MachineState, Program, RunCursor, SegmentEnd, SimError,
    Simulator,
};

use crate::accel;
use crate::liveness::{LivenessVerdict, SuffixIndex};
use crate::model::{CampaignContext, FaultGroup, FaultModel};
use crate::persist::CellKey;
use crate::point::{with_point_hook, FaultPoint, SkipHook};
use crate::report::{classify, CampaignReport, Outcome};
use crate::runner::{assemble_report, SimulatorSource};
use crate::trace_store::{RecordedReference, SpineSnapshot, TraceFetch, TraceKey, TraceStore};

/// One cell of a security matrix, described as data: which target to attack
/// (`source` + `key`), how to call it, and with which fault model.
pub struct MatrixJob<'a> {
    /// The simulator source of the artifact under attack.
    pub source: &'a dyn SimulatorSource,
    /// The trace-store identity of this cell's reference execution. Jobs on
    /// the same artifact/entry/args share one recording when their keys are
    /// equal.
    pub key: TraceKey,
    /// The entry function.
    pub entry: String,
    /// The call arguments.
    pub args: Vec<u32>,
    /// Dynamic instruction budget per execution.
    pub max_steps: u64,
    /// The fault model attacking this cell.
    pub model: &'a dyn FaultModel,
}

/// Why a matrix run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The fault-free reference run of a cell failed.
    Sim(SimError),
    /// The [`MatrixExecutor::run_with_deadline`] deadline passed mid-run;
    /// workers stopped claiming shards and the batch was abandoned.
    DeadlineExpired,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Sim(e) => write!(f, "reference run failed: {e}"),
            MatrixError::DeadlineExpired => write!(f, "deadline passed during execution"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<SimError> for MatrixError {
    fn from(e: SimError) -> Self {
        MatrixError::Sim(e)
    }
}

/// The result of one matrix cell: the ordinary campaign report plus
/// execution metadata of the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCellResult {
    /// The campaign report, byte-identical to the sequential path's.
    pub report: CampaignReport,
    /// `true` if the whole cell was served from the trace store's
    /// persistence backend — no reference fetch, no injection, zero
    /// simulation.
    pub cell_hit: bool,
    /// How this cell's reference trace was obtained (`None` on a cell hit:
    /// a cached cell needs no reference at all).
    pub trace_fetch: Option<TraceFetch>,
    /// Injection compute time attributed to this cell, in microseconds
    /// (summed over its shards across all workers; under a shared pool the
    /// cells overlap in wall time, so these sum to roughly
    /// `threads × elapsed wall time`). Zero on a cell hit.
    pub compute_micros: u64,
    /// How many times this cell's workers restored a first-fault spine
    /// snapshot instead of re-executing the shared prefix of a grouped
    /// multi-fault batch.
    pub snapshot_restores: u64,
    /// Reference-suffix steps this cell *avoided* executing: liveness-pruned
    /// injections answered without running, plus runs cut short at a
    /// checkpoint once their state provably reconverged with the reference.
    pub suffix_steps_saved: u64,
    /// Runaway runs ended early by a divergence proof (an exact-state cycle
    /// match or a verified affine loop acceleration) instead of burning the
    /// remaining step budget.
    pub loop_proofs: u64,
    /// Steps those divergence proofs avoided executing.
    pub loop_steps_saved: u64,
}

impl MatrixCellResult {
    /// `true` if this cell's reference trace was served from a cache
    /// (memory or disk) instead of recorded — vacuously true on a cell hit.
    #[must_use]
    pub fn trace_hit(&self) -> bool {
        self.trace_fetch.map_or(self.cell_hit, TraceFetch::is_hit)
    }
}

/// One atomic execution unit: a contiguous slice of one job's fault space
/// that must run on one worker. Grouped multi-fault batches (`shared_first`
/// set) share a spine and stay whole; ungrouped slices are just scheduling
/// chunks.
#[derive(Debug, Clone, Copy)]
struct Unit {
    job: usize,
    start: usize,
    end: usize,
    shared_first: Option<u64>,
}

/// One scheduling claim: a contiguous run of units of one job, packed to
/// roughly the configured shard size in points.
#[derive(Debug, Clone, Copy)]
struct Shard {
    job: usize,
    unit_start: usize,
    unit_end: usize,
    point_start: usize,
}

/// Per-shard execution counters, folded into the owning cell's result.
#[derive(Debug, Default, Clone, Copy)]
struct ShardStats {
    micros: u64,
    snapshot_restores: u64,
    suffix_steps_saved: u64,
    loop_proofs: u64,
    loop_steps_saved: u64,
}

/// What one shard produces: its outcomes in fault-space order plus its
/// execution counters.
type ShardOutput = (Vec<(Outcome, u32)>, ShardStats);

/// Most failed symbolic-prover attempts a single run will fund; a run
/// whose loop keeps resisting the analysis falls back to plain concrete
/// execution rather than paying for a doomed proof at every re-anchor.
/// Attempts use the prover's cheap shallow walk; a single deep walk is
/// spent only when a shallow attempt reports an irregular arrival
/// pattern that a longer look could still resolve into an outer period.
const MAX_PROVE_FAILURES: u32 = 3;

/// Failed attempts at one anchor pc (with no success anywhere in the
/// shard) before the whole shard stops trying that pc. Faulted trials of
/// one cell keep diverging into the same few loops; there is no point
/// re-analysing a shape the prover has already given up on trial after
/// trial. Skipping an attempt can only cost a missed proof, never change
/// an outcome, so reports stay byte-identical.
const MEMO_FAIL_CAP: u32 = 6;

/// Deep discovery walks one anchor pc may burn per shard — they are two
/// orders of magnitude pricier than shallow ones.
const MEMO_DEEP_CAP: u32 = 2;

/// Steps a run must overshoot its watch point by before the prover is
/// consulted at all: most overshoots are terminating runs a few thousand
/// steps from their exit, and even a failed proof attempt costs a
/// discovery walk. A true runaway pays this once against the ~200k steps
/// a proof saves; the memo caps keep mis-fired attempts bounded per
/// shard, so a short fuse costs little even on prover-resistant loops.
const PROVE_OVERSHOOT: u64 = 8_192;

/// Per-shard record of how the prover has fared at one anchor pc.
#[derive(Default, Clone, Copy)]
struct ProveMemo {
    fails: u32,
    proves: u32,
    deeps: u32,
}

/// Starting window (in steps) of [`CycleGuard`]'s periodicity probe; doubles
/// on every re-anchor, so a cycle of length `λ` entered after `μ` steps is
/// proven within `O(μ + λ)` steps of the watch point whatever `λ` is.
const CYCLE_GUARD_WINDOW: u64 = 64;

/// An endless-loop prover wrapped around a fault hook: once a faulted run
/// overshoots both its last fault step and the reference length, the guard
/// anchors a snapshot of the machine and watches for the anchor's program
/// counter to come back. Two provers fire on a revisit:
///
/// * exact periodicity — observably-equal state
///   ([`Machine::state_repeats`]) proves the run cycles bit-for-bit;
/// * affine divergence — [`accel::prove_divergence`] walks one loop
///   period symbolically and proves the loop spins to the step limit even
///   when a counter or pointer marches (so the state never exactly
///   repeats).
///
/// Either proof lets the guard answer [`FaultAction::DivergenceProven`],
/// ending the run with the exact step-limit error it was guaranteed to
/// produce — the inner hook is inert from the watch point on, so nothing
/// can ever break the loop. Anchors are re-taken Brent-style (at doubling
/// step windows), so the loop's entry point and length are eventually
/// bracketed whatever they are; the symbolic prover runs at most once per
/// anchor generation, which caps its total cost per run at
/// `O(log max_steps)` attempts.
///
/// Healthy runs halt before the watch point and never pay for a snapshot.
struct CycleGuard<'h, H: FaultHook + ?Sized> {
    /// Shared prover scoreboard for the shard, keyed by anchor pc.
    memo: &'h RefCell<HashMap<usize, ProveMemo>>,
    /// Shard-shared scratch simulator for the prover's discovery walks.
    scratch: &'h RefCell<Simulator>,
    inner: &'h mut H,
    /// First step eligible for anchoring: past the last injected fault (the
    /// inner hook returns only `Continue` from here on) and past the
    /// reference length.
    watch_from: u64,
    /// The program, for walking loop bodies symbolically.
    program: Arc<Program>,
    /// The run's step budget (the horizon divergence is proven against).
    max_steps: u64,
    /// A previously observed moment of the run: `(pc, step, state)`.
    anchor: Option<(usize, u64, MachineState)>,
    /// Steps the current anchor stays valid before it is re-taken.
    window: u64,
    /// Whether the symbolic prover already ran for the current anchor.
    tried_prove: bool,
    /// Whether this run has spent its single deep discovery walk.
    deep_done: bool,
    /// Failed prover attempts so far; the run stops paying for the
    /// analysis after [`MAX_PROVE_FAILURES`].
    failed_proves: u32,
    /// Divergence proofs fired (both kinds), for the cell's stats.
    proofs: u64,
    /// Steps the proofs avoided executing, for the cell's stats.
    steps_saved: u64,
}

impl<'h, H: FaultHook + ?Sized> CycleGuard<'h, H> {
    fn new(
        inner: &'h mut H,
        watch_from: u64,
        program: Arc<Program>,
        max_steps: u64,
        memo: &'h RefCell<HashMap<usize, ProveMemo>>,
        scratch: &'h RefCell<Simulator>,
    ) -> Self {
        CycleGuard {
            memo,
            scratch,
            inner,
            watch_from,
            program,
            max_steps,
            anchor: None,
            window: CYCLE_GUARD_WINDOW,
            tried_prove: false,
            deep_done: false,
            failed_proves: 0,
            proofs: 0,
            steps_saved: 0,
        }
    }

    fn proven(&mut self, step: u64) -> FaultAction {
        self.proofs += 1;
        self.steps_saved += self.max_steps.saturating_sub(step.saturating_sub(1));
        FaultAction::DivergenceProven
    }

    /// Whether `instr`'s pc may serve as an anchor: the symbolic prover
    /// replays candidate periods from the anchor, and a conditional branch
    /// consumes flags set *before* the period starts — a walk from such a
    /// pc can never be proven. Anchoring one step later loses nothing (the
    /// loop's arrivals are merely phase-shifted).
    fn anchorable(instr: &Instr) -> bool {
        !matches!(instr, Instr::BCond { .. })
    }
}

impl<H: FaultHook + ?Sized> FaultHook for CycleGuard<'_, H> {
    fn before_execute(
        &mut self,
        step: u64,
        pc: usize,
        instr: &Instr,
        machine: &mut Machine,
    ) -> FaultAction {
        match self.inner.before_execute(step, pc, instr, machine) {
            FaultAction::Continue => {}
            action => return action,
        }
        if step < self.watch_from {
            return FaultAction::Continue;
        }
        match &self.anchor {
            Some((anchor_pc, anchor_step, state)) => {
                if pc == *anchor_pc {
                    if machine.state_repeats(state) {
                        return self.proven(step);
                    }
                    let known_dud = {
                        let memo = self.memo.borrow();
                        memo.get(&pc)
                            .is_some_and(|m| m.fails >= MEMO_FAIL_CAP && m.proves == 0)
                    };
                    if !known_dud
                        && !self.tried_prove
                        && self.failed_proves < MAX_PROVE_FAILURES
                        && step >= self.watch_from.saturating_add(PROVE_OVERSHOOT)
                    {
                        self.tried_prove = true;
                        let _span =
                            secbranch_obs::span_with("prover", || format!("pc {pc} step {step}"));
                        let scratch = &mut *self.scratch.borrow_mut();
                        let mut outcome = accel::prove_divergence(
                            &self.program,
                            machine,
                            scratch,
                            pc,
                            step,
                            self.max_steps,
                            false,
                        );
                        if outcome == accel::ProveOutcome::Irregular && !self.deep_done {
                            let deep_left = self
                                .memo
                                .borrow()
                                .get(&pc)
                                .is_none_or(|m| m.deeps < MEMO_DEEP_CAP);
                            if deep_left {
                                self.deep_done = true;
                                self.memo.borrow_mut().entry(pc).or_default().deeps += 1;
                                outcome = accel::prove_divergence(
                                    &self.program,
                                    machine,
                                    scratch,
                                    pc,
                                    step,
                                    self.max_steps,
                                    true,
                                );
                            }
                        }
                        let mut memo = self.memo.borrow_mut();
                        let entry = memo.entry(pc).or_default();
                        if outcome == accel::ProveOutcome::Proved {
                            entry.proves += 1;
                            drop(memo);
                            return self.proven(step);
                        }
                        entry.fails += 1;
                        drop(memo);
                        self.failed_proves += 1;
                    }
                }
                if step - anchor_step >= self.window && Self::anchorable(instr) {
                    self.window *= 2;
                    self.anchor = Some((pc, step, machine.snapshot()));
                    self.tried_prove = false;
                }
            }
            None => {
                if Self::anchorable(instr) {
                    self.anchor = Some((pc, step, machine.snapshot()));
                }
            }
        }
        FaultAction::Continue
    }
}

/// This thread's cumulative CPU time in microseconds, from the scheduler's
/// nanosecond execution account (`/proc/thread-self/schedstat`). `None` on
/// platforms without that interface; callers fall back to wall-clock time.
#[cfg(target_os = "linux")]
fn thread_cpu_micros() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    let nanos: u64 = text.split_whitespace().next()?.parse().ok()?;
    Some(nanos / 1_000)
}

#[cfg(not(target_os = "linux"))]
fn thread_cpu_micros() -> Option<u64> {
    None
}

/// Everything the per-point execution paths of one cell need, bundled so
/// the resume helpers stay readable.
struct CellExec<'a> {
    job: &'a MatrixJob<'a>,
    reference: &'a RecordedReference,
    suffix: Option<&'a SuffixIndex>,
    store: &'a TraceStore,
    /// Prover scoreboard shared by every trial this shard runs, so loop
    /// shapes the prover keeps failing on stop being re-analysed.
    prove_memo: RefCell<HashMap<usize, ProveMemo>>,
    /// Scratch simulator the prover replays run futures on.
    scratch: RefCell<Simulator>,
    /// Whether a `fast_forward` span has been recorded for this shard;
    /// checkpoint restores happen per fault point, so tracing each one would
    /// dwarf the work being traced. One representative span per shard keeps
    /// the phase visible without measurable overhead.
    ff_traced: Cell<bool>,
    /// Same sampling discipline for `snapshot_restore` spans.
    restore_traced: Cell<bool>,
}

impl CellExec<'_> {
    /// The outcome a faulted run provably equal to the reference produces:
    /// the reference classified against itself, with the reference return
    /// value. (`classify` reads only CFI violations and the return value,
    /// so cycle- and instruction-count differences of the avoided run
    /// cannot matter.)
    fn reference_outcome(&self) -> (Outcome, u32) {
        let reference = &self.reference.trace.result;
        (classify(reference, &Ok(*reference)), reference.return_value)
    }

    /// Steps a prune of an injection anchored at `anchor` avoids executing:
    /// from the checkpoint the run would have resumed at to the end of the
    /// reference.
    fn prune_saving(&self, anchor: u64) -> u64 {
        let resumed_from = self
            .reference
            .checkpoint_before(anchor)
            .map_or(0, |cp| cp.steps_done);
        self.reference.trace.steps().saturating_sub(resumed_from)
    }

    /// Runs one fault point: liveness-prune if provably dead, otherwise
    /// fast-forward to the last checkpoint before the anchor and execute
    /// with reconvergence checks past the last fault step.
    fn run_single(
        &self,
        sim: &mut Simulator,
        point: &FaultPoint,
        stats: &mut ShardStats,
    ) -> (Outcome, u32) {
        if let Some(index) = self.suffix {
            if matches!(index.verdict(point), LivenessVerdict::Dead { .. }) {
                stats.suffix_steps_saved += self.prune_saving(point.anchor_step());
                return self.reference_outcome();
            }
        }
        let cursor = if let Some(cp) = self.reference.checkpoint_before(point.anchor_step()) {
            let _span = if secbranch_obs::enabled() && !self.ff_traced.replace(true) {
                secbranch_obs::span("fast_forward")
            } else {
                secbranch_obs::Span::disabled()
            };
            sim.machine_mut().restore(&cp.state);
            RunCursor::resumed(cp.pc as usize, cp.steps_done)
        } else {
            self.job.source.reset(sim);
            match sim.begin_call(&self.job.entry, &self.job.args) {
                Ok(cursor) => cursor,
                Err(e) => return (classify(&self.reference.trace.result, &Err(e)), 0),
            }
        };
        with_point_hook!(point, hook => {
            self.run_from_cursor(sim, cursor, &mut hook, point.last_fault_step(), stats)
        })
    }

    /// Executes from `cursor` to completion, pausing at every reference
    /// checkpoint at or past `last_fault_step`: a faulted run whose machine
    /// state matches the reference's at one of them is bit-identical to the
    /// reference from that point on (deterministic interpreter, inert
    /// hook), so the reference outcome is returned without running the
    /// suffix.
    ///
    /// Runs that *diverge* instead of reconverging are watched by a
    /// [`CycleGuard`] once they overshoot the reference: a proven endless
    /// loop ends immediately with the step-limit error it was guaranteed to
    /// produce, instead of burning the remaining step budget one
    /// instruction at a time.
    fn run_from_cursor<H: FaultHook + ?Sized>(
        &self,
        sim: &mut Simulator,
        mut cursor: RunCursor,
        hook: &mut H,
        last_fault_step: u64,
        stats: &mut ShardStats,
    ) -> (Outcome, u32) {
        let reference = &self.reference.trace.result;
        let checkpoints = &self.reference.checkpoints;
        let watch_from = last_fault_step.max(self.reference.trace.steps()) + 1;
        let mut hook = CycleGuard::new(
            hook,
            watch_from,
            Arc::clone(sim.shared_program()),
            self.job.max_steps,
            &self.prove_memo,
            &self.scratch,
        );
        let threshold = last_fault_step.max(cursor.steps_done() + 1);
        let mut cp_index = checkpoints.partition_point(|cp| cp.steps_done < threshold);
        loop {
            let pause = checkpoints.get(cp_index).map(|cp| cp.steps_done);
            match sim.run_segment(cursor, pause, self.job.max_steps, &mut hook) {
                Ok(SegmentEnd::Done(result)) => {
                    return (classify(reference, &Ok(result)), result.return_value);
                }
                Ok(SegmentEnd::Paused(next)) => {
                    let cp = &checkpoints[cp_index];
                    if next.pc() as u32 == cp.pc && sim.machine().state_matches(&cp.state) {
                        stats.suffix_steps_saved +=
                            self.reference.trace.steps().saturating_sub(cp.steps_done);
                        return self.reference_outcome();
                    }
                    cursor = next;
                    cp_index += 1;
                }
                Err(e) => {
                    stats.loop_proofs += hook.proofs;
                    stats.loop_steps_saved += hook.steps_saved;
                    return (classify(reference, &Err(e)), 0);
                }
            }
        }
    }

    /// Runs one grouped multi-fault batch (members sharing the first skip
    /// at `first`): prune what liveness can, reduce members whose first
    /// skip is dead *and settled* before their second to plain single
    /// skips, and fan the rest out from one shared post-first-fault spine.
    fn run_group(
        &self,
        sim: &mut Simulator,
        first: u64,
        points: &[FaultPoint],
        stats: &mut ShardStats,
    ) -> Vec<(Outcome, u32)> {
        let mut out: Vec<Option<(Outcome, u32)>> = vec![None; points.len()];
        let first_verdict = self
            .suffix
            .map_or(LivenessVerdict::Live, |index| index.skip_verdict(first));
        let mut fan: Vec<(usize, u64)> = Vec::new();
        for (slot, point) in points.iter().enumerate() {
            let FaultPoint::DoubleSkip { second, .. } = *point else {
                // Plan contract violation; degrade gracefully to the single
                // path rather than corrupting the batch.
                out[slot] = Some(self.run_single(sim, point, stats));
                continue;
            };
            if let Some(index) = self.suffix {
                if matches!(index.verdict(point), LivenessVerdict::Dead { .. }) {
                    stats.suffix_steps_saved += self.prune_saving(first);
                    out[slot] = Some(self.reference_outcome());
                    continue;
                }
            }
            if let LivenessVerdict::Dead { settled_by } = first_verdict {
                if settled_by < second {
                    // The first skip's staleness is fully overwritten before
                    // the second fires: the pair is exactly a single skip of
                    // `second`.
                    out[slot] =
                        Some(self.run_single(sim, &FaultPoint::Skip { step: second }, stats));
                    continue;
                }
            }
            fan.push((slot, second));
        }
        if !fan.is_empty() {
            fan.sort_by_key(|&(_, second)| second);
            self.run_spine_fan(sim, first, points, &fan, &mut out, stats);
        }
        out.into_iter()
            .map(|outcome| outcome.expect("every group member resolved"))
            .collect()
    }

    /// The spine fan-out: position the machine just after the shared first
    /// skip (cached [`SpineSnapshot`] → checkpoint → full prefix, in order
    /// of preference), then walk the members in ascending second-fault
    /// order — pause the spine at each member's `second - 1`, snapshot, run
    /// the member with reconvergence, restore, continue the spine.
    ///
    /// While advancing, the spine itself is checked against reference
    /// checkpoints: once the skip-first-only run reconverges with the
    /// reference at step `t`, every remaining member (`second > t`) is
    /// exactly a single skip of its second step and is handed back to the
    /// single path (where second-skip liveness may prune it outright). A
    /// spine that halts or faults before a member's second step *is* that
    /// member's run — the result is shared verbatim.
    fn run_spine_fan(
        &self,
        sim: &mut Simulator,
        first: u64,
        points: &[FaultPoint],
        fan: &[(usize, u64)],
        out: &mut [Option<(Outcome, u32)>],
        stats: &mut ShardStats,
    ) {
        let reference = &self.reference.trace.result;
        let mut spine_hook = SkipHook { step: first };
        let fill = |out: &mut [Option<(Outcome, u32)>], from: usize, value: (Outcome, u32)| {
            for &(slot, _) in &fan[from..] {
                out[slot] = Some(value);
            }
        };

        let mut cursor = if let Some(snap) = self.store.spine_snapshot(&self.job.key, first) {
            let _span = if secbranch_obs::enabled() && !self.restore_traced.replace(true) {
                secbranch_obs::span("snapshot_restore")
            } else {
                secbranch_obs::Span::disabled()
            };
            sim.machine_mut().restore(&snap.state);
            stats.snapshot_restores += 1;
            RunCursor::resumed(snap.pc as usize, snap.steps_done)
        } else {
            let start = if let Some(cp) = self.reference.checkpoint_before(first) {
                sim.machine_mut().restore(&cp.state);
                RunCursor::resumed(cp.pc as usize, cp.steps_done)
            } else {
                self.job.source.reset(sim);
                match sim.begin_call(&self.job.entry, &self.job.args) {
                    Ok(cursor) => cursor,
                    Err(e) => {
                        fill(out, 0, (classify(reference, &Err(e)), 0));
                        return;
                    }
                }
            };
            match sim.run_segment(start, Some(first), self.job.max_steps, &mut spine_hook) {
                Ok(SegmentEnd::Paused(cursor)) => {
                    self.store.cache_spine_snapshot(
                        &self.job.key,
                        first,
                        Arc::new(SpineSnapshot {
                            pc: cursor.pc() as u32,
                            steps_done: cursor.steps_done(),
                            state: sim.machine().snapshot(),
                        }),
                    );
                    cursor
                }
                // The prefix executes reference instructions until `first`,
                // so finishing or faulting before the pause is out of the
                // ordinary — but whatever happened happened before any
                // member's second skip, so the result is every member's.
                Ok(SegmentEnd::Done(result)) => {
                    fill(
                        out,
                        0,
                        (classify(reference, &Ok(result)), result.return_value),
                    );
                    return;
                }
                Err(e) => {
                    fill(out, 0, (classify(reference, &Err(e)), 0));
                    return;
                }
            }
        };

        let checkpoints = &self.reference.checkpoints;
        for (index, &(slot, second)) in fan.iter().enumerate() {
            // Advance the spine to second - 1, pausing at reference
            // checkpoints crossed on the way to test spine reconvergence.
            let target = second - 1;
            while cursor.steps_done() < target {
                let cp_index =
                    checkpoints.partition_point(|cp| cp.steps_done <= cursor.steps_done());
                let next_cp = checkpoints
                    .get(cp_index)
                    .filter(|cp| cp.steps_done <= target);
                let pause = next_cp.map_or(target, |cp| cp.steps_done);
                match sim.run_segment(cursor, Some(pause), self.job.max_steps, &mut spine_hook) {
                    Ok(SegmentEnd::Paused(next)) => {
                        cursor = next;
                        if let Some(cp) = next_cp {
                            if next.pc() as u32 == cp.pc && sim.machine().state_matches(&cp.state) {
                                // Spine rejoined the reference: every member
                                // from here on is a plain skip of its second.
                                for &(slot, second) in &fan[index..] {
                                    out[slot] = Some(self.run_single(
                                        sim,
                                        &FaultPoint::Skip { step: second },
                                        stats,
                                    ));
                                }
                                return;
                            }
                        }
                    }
                    Ok(SegmentEnd::Done(result)) => {
                        // The spine halted before any remaining member's
                        // second skip could fire: their runs are the
                        // spine's, verbatim.
                        fill(
                            out,
                            index,
                            (classify(reference, &Ok(result)), result.return_value),
                        );
                        return;
                    }
                    Err(e) => {
                        fill(out, index, (classify(reference, &Err(e)), 0));
                        return;
                    }
                }
            }
            if index + 1 == fan.len() {
                // No later member restores this position: run in place.
                out[slot] = Some(with_point_hook!(&points[slot], hook => {
                    self.run_from_cursor(sim, cursor, &mut hook, second, stats)
                }));
                return;
            }
            let snap_state = sim.machine().snapshot();
            let snap_cursor = cursor;
            out[slot] = Some(with_point_hook!(&points[slot], hook => {
                self.run_from_cursor(sim, cursor, &mut hook, second, stats)
            }));
            {
                let _span = if secbranch_obs::enabled() && !self.restore_traced.replace(true) {
                    secbranch_obs::span("snapshot_restore")
                } else {
                    secbranch_obs::Span::disabled()
                };
                sim.machine_mut().restore(&snap_state);
            }
            cursor = snap_cursor;
            stats.snapshot_restores += 1;
        }
    }
}

/// `plan` if it is a contiguous exact partition of `points_len` points, the
/// trivial one-splittable-group plan otherwise (a malformed plan must never
/// be able to drop or reorder outcomes).
fn validated_plan(points_len: usize, plan: Vec<FaultGroup>) -> Vec<FaultGroup> {
    let mut cursor = 0;
    for group in &plan {
        if group.start != cursor || group.end <= group.start || group.end > points_len {
            return fallback_plan(points_len);
        }
        cursor = group.end;
    }
    if cursor != points_len {
        return fallback_plan(points_len);
    }
    plan
}

fn fallback_plan(points_len: usize) -> Vec<FaultGroup> {
    if points_len == 0 {
        Vec::new()
    } else {
        vec![FaultGroup {
            start: 0,
            end: points_len,
            shared_first: None,
        }]
    }
}

/// Executes whole security matrices on one shared worker pool with a
/// memoised trace store (the scheduling scheme — trace memoisation,
/// plan-aware shard flattening, self-scheduling, canonical-order
/// stitching — and the differential-resume mechanisms are described at the
/// top of `executor.rs`).
///
/// # Example
///
/// Two fault models attacking one target become two [`MatrixJob`]s sharing
/// a [`TraceKey`]; the reference trace is recorded once and both cells'
/// fault spaces run on one pool:
///
/// ```
/// use secbranch_armv7m::{Cond, Instr, Operand2, ProgramBuilder, Reg, Simulator, Target};
/// use secbranch_campaign::{
///     BranchInversion, InstructionSkip, MatrixExecutor, MatrixJob, TraceKey, TraceStore,
/// };
///
/// # fn main() -> Result<(), secbranch_armv7m::SimError> {
/// // max(a, b) — one unprotected conditional branch.
/// let mut p = ProgramBuilder::new();
/// p.label("max");
/// p.push(Instr::Cmp { rn: Reg::R0, op2: Operand2::Reg(Reg::R1) });
/// p.push(Instr::BCond { cond: Cond::Hs, target: Target::label("done") });
/// p.push(Instr::Mov { rd: Reg::R0, rm: Reg::R1 });
/// p.label("done");
/// p.push(Instr::Bx { rm: Reg::Lr });
/// let simulator = Simulator::new(p.assemble()?, 4096);
///
/// let jobs: Vec<MatrixJob> = [&InstructionSkip as _, &BranchInversion as _]
///     .into_iter()
///     .map(|model| MatrixJob {
///         source: &simulator,
///         key: TraceKey::new("max-artifact", "max", &[7, 3]),
///         entry: "max".to_string(),
///         args: vec![7, 3],
///         max_steps: 100,
///         model,
///     })
///     .collect();
/// let store = TraceStore::new();
/// let results = MatrixExecutor::new().with_threads(2).run(&jobs, &store)?;
///
/// assert_eq!(results.len(), 2);
/// assert!(!results[0].trace_hit(), "first cell records the reference");
/// assert!(results[1].trace_hit(), "second cell reuses it");
/// assert_eq!(results[1].report.counts.wrong_result_undetected, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MatrixExecutor {
    threads: usize,
    shard_size: usize,
    ignore_cell_cache: bool,
}

impl Default for MatrixExecutor {
    fn default() -> Self {
        MatrixExecutor::new()
    }
}

impl MatrixExecutor {
    /// Default shard size: large enough that scheduling overhead vanishes,
    /// small enough that a big cell splits across every worker.
    pub const DEFAULT_SHARD_SIZE: usize = 64;

    /// An executor using all available parallelism.
    #[must_use]
    pub fn new() -> Self {
        MatrixExecutor {
            threads: thread::available_parallelism().map_or(1, usize::from),
            shard_size: MatrixExecutor::DEFAULT_SHARD_SIZE,
            ignore_cell_cache: false,
        }
    }

    /// Overrides the worker-thread count (minimum 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the shard size (minimum 1). Output-invariant: shards decide
    /// scheduling granularity, never report contents.
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// When set, the persistent cell cache is *ignored* (not deleted) on
    /// load: every cell executes its fault space from scratch, but computed
    /// cells are still written back, so the cache ends the run at least as
    /// warm as it started. Output-invariant (cached reports are
    /// byte-identical to recomputed ones by the backend's round-trip
    /// contract); used by benchmark paths to measure genuine cold-path cost
    /// against a pre-populated store.
    #[must_use]
    pub fn with_cell_cache_ignored(mut self, ignore: bool) -> Self {
        self.ignore_cell_cache = ignore;
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured shard size.
    #[must_use]
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Runs every job's fault space on the shared pool and returns one
    /// result per job, in job order.
    ///
    /// Reference traces are fetched through `store` (and stay there: a
    /// later matrix over the same artifacts hits the memo). Traces are
    /// resolved in job order before any worker starts, so a failing
    /// reference reports the *first* failing cell, exactly like the
    /// sequential path.
    ///
    /// When the store has a persistence backend attached
    /// ([`TraceStore::attach_backend`]), each job is first probed against
    /// the backend's **cell cache** keyed by
    /// `(artifact fingerprint, model fingerprint, entry, args)`: a hit
    /// serves the persisted [`CampaignReport`] verbatim — no reference
    /// fetch, no injections — and a computed cell is written back, so an
    /// unchanged grid re-run does zero simulation. Cached reports are
    /// byte-identical to recomputed ones (the backend's round-trip
    /// contract), so the executor's output invariant is unaffected.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] of the first failing reference run (cells
    /// served from the cache never run their reference, so a warm store can
    /// mask a failure a cold run would report).
    pub fn run(
        &self,
        jobs: &[MatrixJob<'_>],
        store: &TraceStore,
    ) -> Result<Vec<MatrixCellResult>, SimError> {
        match self.run_with_deadline(jobs, store, None) {
            Ok(results) => Ok(results),
            Err(MatrixError::Sim(e)) => Err(e),
            Err(MatrixError::DeadlineExpired) => {
                unreachable!("no deadline was configured")
            }
        }
    }

    /// Like [`MatrixExecutor::run`], but abandons the batch with
    /// [`MatrixError::DeadlineExpired`] if `deadline` passes mid-run:
    /// workers check the clock *between shards* (never mid-shard, so the
    /// check adds no per-injection cost) and stop claiming once it has
    /// passed.
    ///
    /// # Errors
    ///
    /// [`MatrixError::Sim`] for the first failing reference run,
    /// [`MatrixError::DeadlineExpired`] when the deadline cut execution
    /// short (partial results are discarded — a deadline failure is a
    /// failure, not a truncated report).
    pub fn run_with_deadline(
        &self,
        jobs: &[MatrixJob<'_>],
        store: &TraceStore,
        deadline: Option<Instant>,
    ) -> Result<Vec<MatrixCellResult>, MatrixError> {
        // Phase 0: the persistent cell cache. `cached[i]` is Some when job
        // i needs no execution at all.
        let backend = store.backend();
        let cell_keys: Vec<Option<CellKey>> = jobs
            .iter()
            .map(|job| {
                backend.as_ref().map(|_| {
                    CellKey::new(
                        job.key.artifact.clone(),
                        job.model.fingerprint(),
                        job.entry.clone(),
                        &job.args,
                    )
                })
            })
            .collect();
        let mut cached: Vec<Option<CampaignReport>> = cell_keys
            .iter()
            .map(|key| match (&backend, key) {
                (Some(backend), Some(key)) if !self.ignore_cell_cache => backend.load_cell(key),
                _ => None,
            })
            .collect();

        // Phase 1: reference traces for the live (non-cached) jobs,
        // memoised per key, plus one liveness index per distinct key (a
        // failed index build disables pruning for those cells — always
        // safe — and nothing else).
        let mut recorded: Vec<Option<Arc<RecordedReference>>> = vec![None; jobs.len()];
        let mut fetches: Vec<Option<TraceFetch>> = vec![None; jobs.len()];
        for (index, job) in jobs.iter().enumerate() {
            if cached[index].is_some() {
                continue;
            }
            let (reference, fetch) = store.reference_traced(
                &job.key,
                job.source,
                &job.entry,
                &job.args,
                job.max_steps,
            )?;
            recorded[index] = Some(reference);
            fetches[index] = Some(fetch);
        }
        let mut suffix_by_key: HashMap<&TraceKey, Option<Arc<SuffixIndex>>> = HashMap::new();
        let suffixes: Vec<Option<Arc<SuffixIndex>>> = jobs
            .iter()
            .zip(&recorded)
            .map(|(job, reference)| {
                let reference = reference.as_ref()?;
                suffix_by_key
                    .entry(&job.key)
                    .or_insert_with(|| {
                        let mut sim = job.source.fresh_simulator();
                        SuffixIndex::build(
                            &mut sim,
                            &job.entry,
                            &job.args,
                            job.max_steps,
                            &reference.trace,
                        )
                        .map(Arc::new)
                    })
                    .clone()
            })
            .collect();

        // Phase 2: fault spaces in canonical per-model order (empty for
        // cached jobs — they schedule nothing), partitioned into execution
        // units by each model's plan. Atomic groups (shared first fault)
        // stay whole; splittable groups chunk to the shard size.
        let regions: Vec<Vec<(u32, u32)>> =
            jobs.iter().map(|j| j.source.global_regions()).collect();
        let spaces: Vec<Vec<FaultPoint>> = jobs
            .iter()
            .zip(&recorded)
            .zip(&regions)
            .map(|((job, reference), regions)| {
                let Some(reference) = reference else {
                    return Vec::new();
                };
                let ctx = CampaignContext {
                    trace: &reference.trace,
                    program: &reference.program,
                    global_regions: regions,
                    memory_size: reference.memory_size,
                };
                job.model.fault_points(&ctx)
            })
            .collect();
        let mut units: Vec<Unit> = Vec::new();
        for (job, points) in spaces.iter().enumerate() {
            let plan = validated_plan(points.len(), jobs[job].model.plan(points));
            for group in plan {
                match group.shared_first {
                    Some(first) => units.push(Unit {
                        job,
                        start: group.start,
                        end: group.end,
                        shared_first: Some(first),
                    }),
                    None => {
                        for start in (group.start..group.end).step_by(self.shard_size) {
                            units.push(Unit {
                                job,
                                start,
                                end: (start + self.shard_size).min(group.end),
                                shared_first: None,
                            });
                        }
                    }
                }
            }
        }

        // Phase 3: the global shard list and the pool. Shards pack whole
        // units (so spines never split across workers) up to roughly the
        // shard size, and stay grouped by job in the list; self-scheduling
        // interleaves them across workers dynamically, which is what lets
        // one huge cell occupy every worker while small cells drain in
        // between.
        let mut shards: Vec<Shard> = Vec::new();
        let mut unit_index = 0;
        while unit_index < units.len() {
            let first_unit = units[unit_index];
            let mut points = first_unit.end - first_unit.start;
            let mut unit_end = unit_index + 1;
            while unit_end < units.len() && units[unit_end].job == first_unit.job {
                let next = units[unit_end].end - units[unit_end].start;
                if points + next > self.shard_size {
                    break;
                }
                points += next;
                unit_end += 1;
            }
            shards.push(Shard {
                job: first_unit.job,
                unit_start: unit_index,
                unit_end,
                point_start: first_unit.start,
            });
            unit_index = unit_end;
        }
        let slots: Vec<OnceLock<ShardOutput>> = shards.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let expired = AtomicBool::new(false);

        // Identity of each job's simulator source (data-pointer address), so
        // workers recycle one simulator across *every* model attacking one
        // artifact, not just across one cell's shards.
        let source_ids: Vec<usize> = jobs
            .iter()
            .map(|job| std::ptr::from_ref(job.source).cast::<()>() as usize)
            .collect();

        let run_shard = |shard: Shard, sim: &mut Option<(usize, Simulator)>| {
            let job = &jobs[shard.job];
            let _span = secbranch_obs::span_with("shard", || {
                format!("{} {}", job.key.artifact, job.model.name())
            });
            // Reuse the worker's simulator when the previous shard was on
            // the same artifact; rebuild otherwise. Reset/restore brings it
            // back to pristine state either way.
            match sim {
                Some((owner, _)) if *owner == source_ids[shard.job] => {}
                _ => *sim = Some((source_ids[shard.job], job.source.fresh_simulator())),
            }
            let (_, simulator) = sim.as_mut().expect("just installed");
            let cell = CellExec {
                job,
                reference: recorded[shard.job]
                    .as_ref()
                    .expect("only live jobs have shards"),
                suffix: suffixes[shard.job].as_deref(),
                store,
                prove_memo: RefCell::new(HashMap::new()),
                scratch: RefCell::new(job.source.fresh_simulator()),
                ff_traced: Cell::new(false),
                restore_traced: Cell::new(false),
            };
            let cpu_start = thread_cpu_micros();
            let started = Instant::now();
            let mut stats = ShardStats::default();
            let mut outcomes: Vec<(Outcome, u32)> = Vec::new();
            for unit in &units[shard.unit_start..shard.unit_end] {
                let points = &spaces[shard.job][unit.start..unit.end];
                match unit.shared_first {
                    Some(first) => {
                        outcomes.extend(cell.run_group(simulator, first, points, &mut stats));
                    }
                    None => {
                        for point in points {
                            outcomes.push(cell.run_single(simulator, point, &mut stats));
                        }
                    }
                }
            }
            stats.micros = match (cpu_start, thread_cpu_micros()) {
                // Meter shard compute on CPU time where the kernel exposes
                // it: wall-clock timers overcount whenever workers
                // oversubscribe the host, charging each shard for the time
                // it spent preempted rather than executing.
                (Some(begin), Some(end)) if end > 0 => end.saturating_sub(begin),
                _ => started.elapsed().as_micros() as u64,
            };
            (outcomes, stats)
        };
        let worker = || {
            let mut sim = None;
            loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&shard) = shards.get(index) else {
                    break;
                };
                if deadline.is_some_and(|deadline| Instant::now() >= deadline) {
                    expired.store(true, Ordering::Relaxed);
                    break;
                }
                let outcome = run_shard(shard, &mut sim);
                slots[index].set(outcome).expect("shard claimed twice");
            }
        };
        let workers = self.threads.min(shards.len()).max(1);
        if workers <= 1 {
            worker();
        } else {
            thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }
        if expired.load(Ordering::Relaxed) {
            return Err(MatrixError::DeadlineExpired);
        }

        // Phase 4: stitch outcomes back per job (shards of one job appear in
        // fault-space order in the global list), assemble the reports, and
        // write freshly computed cells back to the backend.
        let mut outcomes: Vec<Vec<(Outcome, u32)>> =
            spaces.iter().map(|s| Vec::with_capacity(s.len())).collect();
        let mut stats = vec![ShardStats::default(); jobs.len()];
        for (shard, slot) in shards.iter().zip(&slots) {
            let (shard_outcomes, shard_stats) = slot.get().expect("all shards executed");
            debug_assert_eq!(outcomes[shard.job].len(), shard.point_start);
            outcomes[shard.job].extend_from_slice(shard_outcomes);
            stats[shard.job].micros += shard_stats.micros;
            stats[shard.job].snapshot_restores += shard_stats.snapshot_restores;
            stats[shard.job].suffix_steps_saved += shard_stats.suffix_steps_saved;
            stats[shard.job].loop_proofs += shard_stats.loop_proofs;
            stats[shard.job].loop_steps_saved += shard_stats.loop_steps_saved;
        }
        Ok(jobs
            .iter()
            .enumerate()
            .map(|(index, job)| {
                if let Some(report) = cached[index].take() {
                    return MatrixCellResult {
                        report,
                        cell_hit: true,
                        trace_fetch: None,
                        compute_micros: 0,
                        snapshot_restores: 0,
                        suffix_steps_saved: 0,
                        loop_proofs: 0,
                        loop_steps_saved: 0,
                    };
                }
                let reference = recorded[index].as_ref().expect("live job");
                let report = assemble_report(
                    job.model.name(),
                    &job.entry,
                    &job.args,
                    &reference.trace,
                    &reference.program,
                    &spaces[index],
                    &outcomes[index],
                );
                if let (Some(backend), Some(key)) = (&backend, &cell_keys[index]) {
                    backend.store_cell(key, &report);
                }
                MatrixCellResult {
                    report,
                    cell_hit: false,
                    trace_fetch: fetches[index],
                    compute_micros: stats[index].micros,
                    snapshot_restores: stats[index].snapshot_restores,
                    suffix_steps_saved: stats[index].suffix_steps_saved,
                    loop_proofs: stats[index].loop_proofs,
                    loop_steps_saved: stats[index].loop_steps_saved,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{
        BranchInversion, DoubleInstructionSkip, InstructionSkip, MemoryBitFlip, RegisterBitFlip,
    };
    use crate::runner::CampaignRunner;
    use secbranch_armv7m::{Cond, Instr, Operand2, ProgramBuilder, Reg, Simulator, Target};

    fn max_simulator() -> Simulator {
        let mut p = ProgramBuilder::new();
        p.label("max");
        p.push(Instr::Cmp {
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1),
        });
        p.push(Instr::BCond {
            cond: Cond::Hs,
            target: Target::label("done"),
        });
        p.push(Instr::Mov {
            rd: Reg::R0,
            rm: Reg::R1,
        });
        p.label("done");
        p.push(Instr::Bx { rm: Reg::Lr });
        Simulator::new(p.assemble().expect("assembles"), 4096)
    }

    /// A longer artifact: checksum loop over a small table with a dead
    /// scratch store per iteration and enough steps for several checkpoints
    /// — exercises every differential-resume path at once.
    fn loop_simulator() -> Simulator {
        let mut p = ProgramBuilder::new();
        p.label("sum");
        p.push(Instr::Push {
            regs: vec![Reg::R4, Reg::Lr],
        });
        p.push(Instr::MovImm {
            rd: Reg::R2,
            imm: 0,
        });
        p.push(Instr::MovImm {
            rd: Reg::R3,
            imm: 0,
        });
        p.label("loop");
        p.push(Instr::Ldrb {
            rt: Reg::R4,
            rn: Reg::R3,
            offset: 256,
        });
        p.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Reg(Reg::R4),
        });
        // Dead scratch store: written once per iteration, never read.
        p.push(Instr::Strb {
            rt: Reg::R2,
            rn: Reg::R3,
            offset: 512,
        });
        p.push(Instr::Add {
            rd: Reg::R3,
            rn: Reg::R3,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Cmp {
            rn: Reg::R3,
            op2: Operand2::Reg(Reg::R0),
        });
        p.push(Instr::BCond {
            cond: Cond::Lo,
            target: Target::label("loop"),
        });
        p.push(Instr::Mov {
            rd: Reg::R0,
            rm: Reg::R2,
        });
        p.push(Instr::Pop {
            regs: vec![Reg::R4, Reg::Pc],
        });
        let mut sim = Simulator::new(p.assemble().expect("assembles"), 4096);
        for i in 0..64u32 {
            sim.machine_mut().write_bytes(256 + i, &[(i * 7 + 3) as u8]);
        }
        sim
    }

    fn jobs_over<'a>(sim: &'a Simulator, models: &'a [&'a dyn FaultModel]) -> Vec<MatrixJob<'a>> {
        models
            .iter()
            .map(|model| MatrixJob {
                source: sim,
                key: TraceKey::new("max-artifact", "max", &[7, 3]),
                entry: "max".to_string(),
                args: vec![7, 3],
                max_steps: 100,
                model: *model,
            })
            .collect()
    }

    fn loop_jobs<'a>(sim: &'a Simulator, models: &'a [&'a dyn FaultModel]) -> Vec<MatrixJob<'a>> {
        models
            .iter()
            .map(|model| MatrixJob {
                source: sim,
                key: TraceKey::new("sum-artifact", "sum", &[48]),
                entry: "sum".to_string(),
                args: vec![48],
                max_steps: 10_000,
                model: *model,
            })
            .collect()
    }

    #[test]
    fn executor_matches_the_sequential_runner_per_cell() {
        let sim = max_simulator();
        let flip = RegisterBitFlip {
            trials: 64,
            seed: 0xFEED,
        };
        let models: Vec<&dyn FaultModel> = vec![&InstructionSkip, &BranchInversion, &flip];
        let jobs = jobs_over(&sim, &models);
        let store = TraceStore::new();
        for (threads, shard_size) in [(1, 1), (2, 3), (8, 64)] {
            let results = MatrixExecutor::new()
                .with_threads(threads)
                .with_shard_size(shard_size)
                .run(&jobs, &store)
                .expect("runs");
            let runner = CampaignRunner::new().with_threads(1);
            for (result, model) in results.iter().zip(&models) {
                let sequential = runner
                    .run(&sim, "max", &[7, 3], 100, *model)
                    .expect("sequential runs");
                assert_eq!(
                    result.report,
                    sequential,
                    "threads={threads} shard={shard_size} model={}",
                    model.name()
                );
                assert_eq!(result.report.to_json(), sequential.to_json());
            }
        }
    }

    #[test]
    fn differential_resume_matches_the_sequential_runner_on_a_loop() {
        // The loop artifact has dead stores (liveness prunes), long
        // reconvergent suffixes (checkpoint early-exit) and a wide grouped
        // double-skip space (spine fan-out) — every mechanism fires, and
        // the reports must stay byte-identical to the sequential oracle.
        let sim = loop_simulator();
        let double = DoubleInstructionSkip {
            max_injections: 300,
            seed: 0x2FA17,
        };
        let flip = RegisterBitFlip {
            trials: 128,
            seed: 0xABCDEF,
        };
        let mem = MemoryBitFlip {
            trials: 128,
            seed: 0xFEED,
        };
        let models: Vec<&dyn FaultModel> =
            vec![&InstructionSkip, &double, &flip, &mem, &BranchInversion];
        let jobs = loop_jobs(&sim, &models);
        let runner = CampaignRunner::new().with_threads(1);
        for threads in [1, 2, 8] {
            let store = TraceStore::new();
            let results = MatrixExecutor::new()
                .with_threads(threads)
                .run(&jobs, &store)
                .expect("runs");
            for (result, model) in results.iter().zip(&models) {
                let sequential = runner
                    .run(&sim, "sum", &[48], 10_000, *model)
                    .expect("sequential runs");
                assert_eq!(
                    result.report.to_json(),
                    sequential.to_json(),
                    "threads={threads} model={}",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn differential_resume_actually_skips_suffix_work() {
        // The counters are the proof that the new machinery engages: dead
        // stores must prune or reconverge (suffix_steps_saved) and grouped
        // double skips must restore snapshots instead of re-running shared
        // prefixes (snapshot_restores). Zero on either means the
        // differential path silently degraded to full re-execution.
        let sim = loop_simulator();
        let double = DoubleInstructionSkip {
            max_injections: 300,
            seed: 0x2FA17,
        };
        let models: Vec<&dyn FaultModel> = vec![&InstructionSkip, &double];
        let jobs = loop_jobs(&sim, &models);
        let store = TraceStore::new();
        let results = MatrixExecutor::new()
            .with_threads(2)
            .run(&jobs, &store)
            .expect("runs");
        assert!(
            results[0].suffix_steps_saved > 0,
            "skip cell: dead stores and reconvergent suffixes must be elided"
        );
        assert!(
            results[1].snapshot_restores > 0,
            "double-skip cell: grouped members must fan out from snapshots"
        );
        assert!(
            results[1].suffix_steps_saved > 0,
            "double-skip cell: dead pairs and reconvergence must save steps"
        );
    }

    #[test]
    fn snapshot_budget_eviction_never_changes_reports() {
        let sim = loop_simulator();
        let double = DoubleInstructionSkip {
            max_injections: 300,
            seed: 0x2FA17,
        };
        let models: Vec<&dyn FaultModel> = vec![&double];
        let jobs = loop_jobs(&sim, &models);
        let unlimited = TraceStore::new();
        unlimited.set_snapshot_budget(None);
        let baseline = MatrixExecutor::new()
            .with_threads(2)
            .run(&jobs, &unlimited)
            .expect("runs");
        // A zero budget caches nothing: every group re-runs its prefix from
        // a checkpoint, and the report must not move by a byte.
        let starved = TraceStore::new();
        starved.set_snapshot_budget(Some(0));
        let pinched = MatrixExecutor::new()
            .with_threads(2)
            .run(&jobs, &starved)
            .expect("runs");
        assert_eq!(starved.snapshot_bytes(), 0, "budget keeps nothing");
        assert_eq!(
            baseline[0].report.to_json(),
            pinched[0].report.to_json(),
            "snapshot eviction is output-invariant"
        );
    }

    #[test]
    fn expired_deadline_aborts_between_shards() {
        let sim = max_simulator();
        let models: Vec<&dyn FaultModel> = vec![&InstructionSkip];
        let jobs = jobs_over(&sim, &models);
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let err = MatrixExecutor::new().with_threads(2).run_with_deadline(
            &jobs,
            &TraceStore::new(),
            Some(past),
        );
        assert_eq!(err.unwrap_err(), MatrixError::DeadlineExpired);
        // No deadline (or a generous one) runs normally.
        let future = Instant::now() + std::time::Duration::from_secs(3600);
        let ok = MatrixExecutor::new()
            .with_threads(2)
            .run_with_deadline(&jobs, &TraceStore::new(), Some(future))
            .expect("runs");
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn shared_keys_record_the_trace_once() {
        let sim = max_simulator();
        let models: Vec<&dyn FaultModel> = vec![&InstructionSkip, &BranchInversion];
        let jobs = jobs_over(&sim, &models);
        let store = TraceStore::new();
        let results = MatrixExecutor::new()
            .with_threads(2)
            .run(&jobs, &store)
            .expect("runs");
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert!(!results[0].trace_hit(), "first cell records");
        assert_eq!(results[0].trace_fetch, Some(TraceFetch::Recorded));
        assert!(results[1].trace_hit(), "second cell reuses");
        assert_eq!(results[1].trace_fetch, Some(TraceFetch::Memory));
        assert!(
            results.iter().all(|r| !r.cell_hit),
            "no backend attached: nothing is served as a cached cell"
        );
        // A second matrix over the same keys is all hits.
        let again = MatrixExecutor::new().run(&jobs, &store).expect("runs");
        assert_eq!((store.hits(), store.misses()), (3, 1));
        assert!(again.iter().all(|r| r.trace_hit()));
    }

    #[test]
    fn failing_reference_reports_the_first_failing_cell() {
        let sim = max_simulator();
        let models: Vec<&dyn FaultModel> = vec![&InstructionSkip];
        let mut jobs = jobs_over(&sim, &models);
        jobs[0].entry = "nope".to_string();
        jobs[0].key = TraceKey::new("max-artifact", "nope", &[7, 3]);
        let err = MatrixExecutor::new().run(&jobs, &TraceStore::new());
        assert!(matches!(err, Err(SimError::UnknownEntryPoint { .. })));
    }

    #[test]
    fn empty_fault_spaces_produce_empty_reports() {
        // A straight-line program has no conditional branches: the
        // branch-inversion space is empty, which must yield a zero-count
        // report rather than a hang or a panic.
        let mut p = ProgramBuilder::new();
        p.label("id");
        p.push(Instr::Bx { rm: Reg::Lr });
        let sim = Simulator::new(p.assemble().expect("assembles"), 1024);
        let jobs = vec![MatrixJob {
            source: &sim,
            key: TraceKey::new("id-artifact", "id", &[5]),
            entry: "id".to_string(),
            args: vec![5],
            max_steps: 10,
            model: &BranchInversion,
        }];
        let results = MatrixExecutor::new()
            .with_threads(4)
            .run(&jobs, &TraceStore::new())
            .expect("runs");
        assert_eq!(results[0].report.counts.total(), 0);
        assert!(results[0].report.escapes.is_empty());
    }
}
