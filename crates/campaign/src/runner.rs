//! The [`CampaignRunner`]: executes a [`FaultModel`]'s fault space on fresh
//! simulators, sharded across worker threads, with deterministic merging.

use std::collections::BTreeMap;
use std::thread;

use secbranch_armv7m::{Program, SimError, Simulator};
use secbranch_codegen::CompiledModule;

use crate::model::{CampaignContext, FaultModel, ReferenceTrace};
use crate::point::FaultPoint;
use crate::report::{
    classify, CampaignReport, EscapeRecord, LocationReport, Outcome, OutcomeCounts,
};
use crate::trace_store::{record_reference_without_checkpoints, RecordedReference};

/// A source of pristine simulators: the campaign engine runs every injection
/// (and the reference) on a fresh one.
///
/// Implemented by [`Simulator`] itself (each run starts from a clone,
/// preserving any pre-run machine tampering the caller did) and by
/// [`SharedModule`] (each run starts from an `Arc`-shared compilation — the
/// cheap path).
///
/// # Determinism contract
///
/// The engine's byte-identical-reports guarantee (any thread count, shard
/// size or execution order produces the same [`CampaignReport`]) rests on
/// this trait: every simulator a source hands out — whether freshly built by
/// [`SimulatorSource::fresh_simulator`] or recycled through
/// [`SimulatorSource::reset`] — must start from the *same* machine state, so
/// that the same [`FaultPoint`] always produces the same outcome no matter
/// which worker executes it, and so that a memoised
/// [`crate::TraceStore`] trace remains valid for every later injection.
/// Implementations whose initial state changes between calls (e.g. seeding
/// memory from a mutable external buffer) break campaign determinism
/// silently.
pub trait SimulatorSource: Sync {
    /// A pristine simulator for one execution.
    fn fresh_simulator(&self) -> Simulator;

    /// Restores `sim` (previously obtained from this source) to the pristine
    /// state [`SimulatorSource::fresh_simulator`] produces, so workers can
    /// reuse one simulator across many injections instead of reallocating
    /// guest RAM per run.
    ///
    /// The default simply replaces `sim` with a fresh simulator, which is
    /// always correct; sources that can restore in place (zeroing only the
    /// dirty RAM window, [`SharedModule`] does) should override this — it is
    /// the hot path of the matrix executor.
    fn reset(&self, sim: &mut Simulator) {
        *sim = self.fresh_simulator();
    }

    /// `(address, length)` ranges of the target's globals, for fault models
    /// that aim at the data section. Empty when unknown.
    fn global_regions(&self) -> Vec<(u32, u32)> {
        Vec::new()
    }
}

impl SimulatorSource for Simulator {
    fn fresh_simulator(&self) -> Simulator {
        self.clone()
    }
}

/// A [`SimulatorSource`] over an `Arc`-shared [`CompiledModule`]: fresh
/// simulators cost one machine allocation plus the globals write, never a
/// copy of the code.
#[derive(Debug, Clone, Copy)]
pub struct SharedModule<'a> {
    /// The compilation to run.
    pub compiled: &'a CompiledModule,
    /// Guest RAM size per simulator.
    pub memory_size: u32,
}

impl SimulatorSource for SharedModule<'_> {
    fn fresh_simulator(&self) -> Simulator {
        self.compiled.simulator(self.memory_size)
    }

    /// In-place restore: scrub the machine's dirty RAM window and rewrite
    /// the globals image — a few hundred bytes for a typical run, instead of
    /// a full guest-RAM reallocation.
    fn reset(&self, sim: &mut Simulator) {
        sim.machine_mut().scrub();
        for (addr, data) in self.compiled.global_image.iter() {
            sim.machine_mut().write_bytes(*addr, data);
        }
    }

    fn global_regions(&self) -> Vec<(u32, u32)> {
        self.compiled
            .global_image
            .iter()
            .map(|(addr, data)| (*addr, data.len() as u32))
            .collect()
    }
}

/// An owning [`SimulatorSource`] over a [`CompiledModule`]: the same cheap
/// fresh-simulator and in-place-reset behaviour as [`SharedModule`], but
/// without a borrow — the variant long-lived services queue, since a
/// [`CompiledModule`] is itself `Arc`-backed and cheap to own.
#[derive(Debug, Clone)]
pub struct OwnedModule {
    /// The compilation to run.
    pub compiled: CompiledModule,
    /// Guest RAM size per simulator.
    pub memory_size: u32,
}

impl OwnedModule {
    fn as_shared(&self) -> SharedModule<'_> {
        SharedModule {
            compiled: &self.compiled,
            memory_size: self.memory_size,
        }
    }
}

impl SimulatorSource for OwnedModule {
    fn fresh_simulator(&self) -> Simulator {
        self.as_shared().fresh_simulator()
    }

    fn reset(&self, sim: &mut Simulator) {
        self.as_shared().reset(sim);
    }

    fn global_regions(&self) -> Vec<(u32, u32)> {
        self.as_shared().global_regions()
    }
}

/// Runs one fault point on a *pristine* simulator (freshly built or just
/// reset): inject, execute, classify against the reference. The shared
/// per-injection step of the [`CampaignRunner`] and the matrix executor.
pub(crate) fn run_point(
    sim: &mut Simulator,
    entry: &str,
    args: &[u32],
    max_steps: u64,
    reference: &secbranch_armv7m::ExecResult,
    point: &FaultPoint,
) -> (Outcome, u32) {
    let result = crate::point::with_point_hook!(point, hook => {
        sim.call_with_faults(entry, args, max_steps, &mut hook)
    });
    let outcome = classify(reference, &result);
    let return_value = result.map_or(0, |r| r.return_value);
    (outcome, return_value)
}

/// The campaign engine: shards a fault space across worker threads and
/// merges the outcomes deterministically.
///
/// Reports are byte-identical regardless of the thread count: the fault
/// space has a canonical order (the model's enumeration order), every
/// injection is independent, and merging walks that order — threads only
/// change *who* computes an outcome, never where it lands.
#[derive(Debug, Clone, Copy)]
pub struct CampaignRunner {
    threads: usize,
}

impl Default for CampaignRunner {
    fn default() -> Self {
        CampaignRunner::new()
    }
}

impl CampaignRunner {
    /// A runner using all available parallelism.
    #[must_use]
    pub fn new() -> Self {
        CampaignRunner {
            threads: thread::available_parallelism().map_or(1, usize::from),
        }
    }

    /// Overrides the worker-thread count (minimum 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `model`'s fault space against `entry(args)` on fresh simulators
    /// from `source`.
    ///
    /// The fault-free reference runs first, single-threaded; if it fails,
    /// its error is returned before any worker is spawned. Individual
    /// faulted runs are classified ([`Outcome`]), never propagated.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] of the reference run if that fails.
    pub fn run(
        &self,
        source: &dyn SimulatorSource,
        entry: &str,
        args: &[u32],
        max_steps: u64,
        model: &dyn FaultModel,
    ) -> Result<CampaignReport, SimError> {
        // No checkpoints: this runner never fast-forwards, so it skips the
        // snapshot cost the matrix executor's recordings pay.
        let recorded = record_reference_without_checkpoints(source, entry, args, max_steps)?;
        Ok(self.run_recorded(source, entry, args, max_steps, model, &recorded))
    }

    /// Like [`CampaignRunner::run`], but reuses an already-recorded
    /// reference execution (typically served by a [`crate::TraceStore`])
    /// instead of recording one — the memoised path of the matrix executor
    /// and the store-aware artifact campaigns.
    ///
    /// `recorded` must be the reference of exactly this
    /// `(source, entry, args, max_steps)` combination; see the
    /// [`crate::trace_store`] determinism contract.
    #[must_use]
    pub fn run_recorded(
        &self,
        source: &dyn SimulatorSource,
        entry: &str,
        args: &[u32],
        max_steps: u64,
        model: &dyn FaultModel,
        recorded: &RecordedReference,
    ) -> CampaignReport {
        let regions = source.global_regions();
        let ctx = CampaignContext {
            trace: &recorded.trace,
            program: &recorded.program,
            global_regions: &regions,
            memory_size: recorded.memory_size,
        };
        let points = model.fault_points(&ctx);
        let outcomes = self.execute(
            source,
            entry,
            args,
            max_steps,
            &recorded.trace.result,
            &points,
        );
        assemble_report(
            model.name(),
            entry,
            args,
            &recorded.trace,
            &recorded.program,
            &points,
            &outcomes,
        )
    }

    /// Runs every fault point and returns `(outcome, faulted return value)`
    /// in fault-space order, sharded over the configured threads.
    ///
    /// Every injection runs on a freshly built simulator — this runner is
    /// deliberately kept as the straightforward reference implementation the
    /// matrix executor (which recycles simulators via
    /// [`SimulatorSource::reset`] and schedules shards globally) is
    /// byte-compared against.
    fn execute(
        &self,
        source: &dyn SimulatorSource,
        entry: &str,
        args: &[u32],
        max_steps: u64,
        reference: &secbranch_armv7m::ExecResult,
        points: &[FaultPoint],
    ) -> Vec<(Outcome, u32)> {
        let run_chunk = |chunk: &[FaultPoint]| -> Vec<(Outcome, u32)> {
            chunk
                .iter()
                .map(|point| {
                    let mut sim = source.fresh_simulator();
                    run_point(&mut sim, entry, args, max_steps, reference, point)
                })
                .collect()
        };

        let workers = self.threads.min(points.len().max(1));
        if workers <= 1 {
            return run_chunk(points);
        }
        // Contiguous chunks, one per worker; joining in spawn order restores
        // the canonical fault-space order regardless of completion order.
        let chunk_size = points.len().div_ceil(workers);
        thread::scope(|scope| {
            let handles: Vec<_> = points
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || run_chunk(chunk)))
                .collect();
            let mut outcomes = Vec::with_capacity(points.len());
            for handle in handles {
                outcomes.extend(handle.join().expect("campaign worker panicked"));
            }
            outcomes
        })
    }
}

/// Folds the per-point outcomes (in canonical order) into the report:
/// aggregate counters, per-location attribution and the escape list.
pub(crate) fn assemble_report(
    model: String,
    entry: &str,
    args: &[u32],
    trace: &ReferenceTrace,
    program: &Program,
    points: &[FaultPoint],
    outcomes: &[(Outcome, u32)],
) -> CampaignReport {
    let mut counts = OutcomeCounts::default();
    let mut by_pc: BTreeMap<usize, OutcomeCounts> = BTreeMap::new();
    let mut escapes = Vec::new();
    for (point, &(outcome, return_value)) in points.iter().zip(outcomes) {
        counts.record(outcome);
        let step = point.anchor_step();
        let pc = trace.pc_at(step).unwrap_or(usize::MAX);
        by_pc.entry(pc).or_default().record(outcome);
        if outcome == Outcome::WrongResultUndetected {
            escapes.push(EscapeRecord {
                fault: point.to_string(),
                step,
                pc,
                instruction: instruction_text(program, pc),
                return_value,
            });
        }
    }
    let locations = by_pc
        .into_iter()
        .map(|(pc, counts)| LocationReport {
            pc,
            location: nearest_label(program, pc),
            instruction: instruction_text(program, pc),
            counts,
        })
        .collect();
    CampaignReport {
        model,
        entry: entry.to_string(),
        args: args.to_vec(),
        reference: trace.result,
        counts,
        locations,
        escapes,
    }
}

fn instruction_text(program: &Program, pc: usize) -> String {
    program
        .instructions()
        .get(pc)
        .map_or_else(|| "<out of range>".to_string(), ToString::to_string)
}

/// The nearest label at or before `pc`, rendered as `label` or
/// `label+offset` (`?` when the program has no label up to there).
fn nearest_label(program: &Program, pc: usize) -> String {
    if pc >= program.len() {
        return "?".to_string();
    }
    for back in (0..=pc).rev() {
        if let Some(label) = program.label_at(back) {
            return if back == pc {
                label.to_string()
            } else {
                format!("{label}+{}", pc - back)
            };
        }
    }
    "?".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BranchInversion, InstructionSkip, RegisterBitFlip};
    use secbranch_armv7m::{Cond, Instr, Operand2, ProgramBuilder, Reg, Target};

    /// `max(a, b)`: one conditional branch, returns the larger argument.
    fn max_simulator() -> Simulator {
        let mut p = ProgramBuilder::new();
        p.label("max");
        p.push(Instr::Cmp {
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1),
        });
        p.push(Instr::BCond {
            cond: Cond::Hs,
            target: Target::label("done"),
        });
        p.push(Instr::Mov {
            rd: Reg::R0,
            rm: Reg::R1,
        });
        p.label("done");
        p.push(Instr::Bx { rm: Reg::Lr });
        Simulator::new(p.assemble().expect("assembles"), 4096)
    }

    #[test]
    fn reference_errors_abort_before_any_injection() {
        let runner = CampaignRunner::new().with_threads(4);
        let err = runner.run(&max_simulator(), "nope", &[], 100, &InstructionSkip);
        assert!(matches!(err, Err(SimError::UnknownEntryPoint { .. })));
    }

    #[test]
    fn skip_campaign_attributes_the_unprotected_escape() {
        let runner = CampaignRunner::new().with_threads(1);
        let report = runner
            .run(&max_simulator(), "max", &[7, 3], 100, &InstructionSkip)
            .expect("runs");
        assert_eq!(report.reference.return_value, 7);
        assert_eq!(report.counts.total(), 3, "three dynamic instructions");
        // Two escapes: skipping the CMP leaves the flags clear so the BHS
        // falls through, and skipping the taken BHS falls through directly —
        // both reach `mov r0, r1`.
        assert_eq!(report.counts.wrong_result_undetected, 2);
        assert_eq!(report.escapes.len(), 2);
        assert_eq!(report.escapes[0].pc, 0);
        assert_eq!(report.escapes[1].pc, 1);
        assert_eq!(report.escapes[1].return_value, 3);
        let loc = report
            .locations
            .iter()
            .find(|l| l.pc == 1)
            .expect("attributed location");
        assert_eq!(loc.location, "max+1");
        assert_eq!(loc.counts.wrong_result_undetected, 1);
    }

    #[test]
    fn branch_inversion_flips_the_decision() {
        let runner = CampaignRunner::new().with_threads(2);
        let report = runner
            .run(&max_simulator(), "max", &[7, 3], 100, &BranchInversion)
            .expect("runs");
        assert_eq!(report.counts.total(), 1, "one dynamic conditional");
        assert_eq!(
            report.counts.wrong_result_undetected, 1,
            "inverting the only branch of the unprotected max flips the result"
        );
        assert_eq!(report.escapes[0].return_value, 3);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let model = RegisterBitFlip {
            trials: 64,
            seed: 0xFEED,
        };
        let reports: Vec<CampaignReport> = [1, 2, 8]
            .into_iter()
            .map(|threads| {
                CampaignRunner::new()
                    .with_threads(threads)
                    .run(&max_simulator(), "max", &[9, 4], 100, &model)
                    .expect("runs")
            })
            .collect();
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
        assert_eq!(reports[0].to_json(), reports[2].to_json());
    }

    #[test]
    fn machine_tampering_on_the_source_simulator_is_honoured() {
        // The `SimulatorSource` impl for `Simulator` clones the prototype,
        // so pre-run machine state (the documented campaign use case)
        // reaches every injection.
        let mut prototype = max_simulator();
        prototype.machine_mut().set_reg(Reg::R7, 99);
        let sim = prototype.fresh_simulator();
        assert_eq!(sim.machine().reg(Reg::R7), 99);
    }

    #[test]
    fn nearest_label_walks_backwards() {
        let sim = max_simulator();
        assert_eq!(nearest_label(sim.program(), 0), "max");
        assert_eq!(nearest_label(sim.program(), 2), "max+2");
        assert_eq!(nearest_label(sim.program(), 3), "done");
        assert_eq!(nearest_label(sim.program(), 99), "?");
    }
}
