//! The [`FaultModel`] trait — an attacker model as an enumerable or
//! samplable fault space — and the five shipped implementations.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secbranch_armv7m::{ExecResult, Program, Reg};

use crate::point::FaultPoint;

/// The fault-free reference execution, recorded step by step: what the
/// models enumerate their fault spaces over.
#[derive(Debug, Clone)]
pub struct ReferenceTrace {
    /// The reference result.
    pub result: ExecResult,
    /// The instruction index executed at each dynamic step (`pcs[i]` is step
    /// `i + 1`).
    pub pcs: Vec<u32>,
    /// The dynamic steps at which a conditional branch (`BCond`) executed.
    pub conditional_steps: Vec<u64>,
}

impl ReferenceTrace {
    /// Number of dynamic steps of the reference run.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.pcs.len() as u64
    }

    /// The instruction index executed at 1-based `step`, if in range.
    #[must_use]
    pub fn pc_at(&self, step: u64) -> Option<usize> {
        if step == 0 {
            return None;
        }
        self.pcs.get(step as usize - 1).map(|&pc| pc as usize)
    }
}

/// Everything a [`FaultModel`] may consult when building its fault space:
/// the recorded reference execution, the static program, and the data layout
/// of the target.
#[derive(Debug, Clone, Copy)]
pub struct CampaignContext<'a> {
    /// The recorded reference execution.
    pub trace: &'a ReferenceTrace,
    /// The program under attack.
    pub program: &'a Program,
    /// `(address, length)` ranges of the module's globals in guest memory
    /// (empty when the target carries no globals or the source cannot name
    /// them).
    pub global_regions: &'a [(u32, u32)],
    /// Guest RAM size in bytes.
    pub memory_size: u32,
}

/// One batch of a model's fault plan: a contiguous range of the fault-point
/// vector whose members share an execution prefix.
///
/// Groups with `shared_first: Some(step)` are multi-fault batches whose
/// members all inject the same first fault at `step` — the executor runs the
/// prefix (up to and including the first fault) once, snapshots, and fans
/// the suffix candidates out from the snapshot. They are scheduled as an
/// atomic unit. Groups with `shared_first: None` carry no prefix sharing and
/// may be split freely across shards.
///
/// A plan always partitions `points` exactly: groups are contiguous,
/// ascending and cover every index once, so report order (fault-space
/// order) is untouched no matter how groups are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultGroup {
    /// First point index of the group (inclusive).
    pub start: usize,
    /// One past the last point index of the group.
    pub end: usize,
    /// The dynamic step of the shared first fault, when the group's members
    /// share one.
    pub shared_first: Option<u64>,
}

/// An attacker model: a named fault space over one reference execution.
///
/// Implementations either *enumerate* the space exhaustively (instruction
/// skip, branch inversion) or *sample* it deterministically from a seed
/// (register/memory bit flips, sampled double skips). The returned order is
/// the canonical fault-space order: the runner preserves it in reports, so
/// the same model over the same trace always produces the same report,
/// independent of worker-thread count.
///
/// # Example
///
/// A custom model is a plain struct; here, an attacker that can only skip
/// the *first* `k` dynamic instructions of a run:
///
/// ```
/// use secbranch_campaign::{CampaignContext, FaultModel, FaultPoint};
///
/// struct EarlySkip {
///     k: u64,
/// }
///
/// impl FaultModel for EarlySkip {
///     fn name(&self) -> String {
///         format!("early-skip({})", self.k)
///     }
///     fn fault_points(&self, ctx: &CampaignContext<'_>) -> Vec<FaultPoint> {
///         (1..=ctx.trace.steps().min(self.k))
///             .map(|step| FaultPoint::Skip { step })
///             .collect()
///     }
/// }
/// ```
///
/// Anything implementing this trait plugs into
/// [`crate::CampaignRunner::run`], [`crate::MatrixExecutor`] and the
/// facade's `Artifact::campaign`/`Session::security_matrix`.
pub trait FaultModel: Sync {
    /// The model's display name (stable; used in reports and matrix
    /// columns).
    fn name(&self) -> String;

    /// Builds the fault space for one reference execution.
    fn fault_points(&self, ctx: &CampaignContext<'_>) -> Vec<FaultPoint>;

    /// A stable identity of the model's *configuration*: persistent grid
    /// stores key completed campaign cells by
    /// `(artifact fingerprint, model fingerprint, entry, args)`, so the
    /// fingerprint must cover everything that influences the fault space —
    /// the model kind *and* every parameter (trial counts, seeds, bounds).
    ///
    /// The default returns [`FaultModel::name`], which is only correct for
    /// parameterless models; models with configuration **must** override it
    /// (all shipped parameterised models do), otherwise a persisted cell
    /// computed under one configuration is silently served for another.
    fn fingerprint(&self) -> String {
        self.name()
    }

    /// Partitions `points` (as returned by [`FaultModel::fault_points`])
    /// into execution groups. The default is a single splittable group — no
    /// prefix sharing. Multi-fault models whose points share fault prefixes
    /// override this to batch them (see [`FaultGroup`]); grouping changes
    /// only how points are *executed*, never the report order.
    fn plan(&self, points: &[FaultPoint]) -> Vec<FaultGroup> {
        if points.is_empty() {
            return Vec::new();
        }
        vec![FaultGroup {
            start: 0,
            end: points.len(),
            shared_first: None,
        }]
    }
}

/// Exhaustive single-instruction-skip model: every dynamic instruction of
/// the reference execution is skipped once (Section II's instruction-skip
/// attacker).
#[derive(Debug, Clone, Copy, Default)]
pub struct InstructionSkip;

impl FaultModel for InstructionSkip {
    fn name(&self) -> String {
        "skip".to_string()
    }

    fn fault_points(&self, ctx: &CampaignContext<'_>) -> Vec<FaultPoint> {
        (1..=ctx.trace.steps())
            .map(|step| FaultPoint::Skip { step })
            .collect()
    }
}

/// Two-fault instruction-skip model: pairs of distinct dynamic steps are
/// both skipped — the attacker that defeats plain temporal duplication.
///
/// The full space is quadratic; when it exceeds `max_injections`, that many
/// pairs are sampled deterministically from `seed` instead. Sampling is
/// *clustered by the first step*: firsts are drawn uniformly, then a batch
/// of distinct seconds per first, so sampled points arrive grouped by
/// `first` and the differential executor can share each first-fault prefix
/// across its whole batch. (The previous sampler drew independent unordered
/// pairs, which left almost nothing to share — average batch size ~1.)
#[derive(Debug, Clone, Copy)]
pub struct DoubleInstructionSkip {
    /// Upper bound on the number of injections before sampling kicks in.
    pub max_injections: u64,
    /// Seed of the deterministic sampler.
    pub seed: u64,
}

impl Default for DoubleInstructionSkip {
    fn default() -> Self {
        DoubleInstructionSkip {
            max_injections: 10_000,
            seed: 0x2FA17,
        }
    }
}

impl FaultModel for DoubleInstructionSkip {
    fn name(&self) -> String {
        "double-skip".to_string()
    }

    fn fingerprint(&self) -> String {
        // v2: the sampler changed from independent unordered pairs to
        // first-clustered batches — a different fault space under the same
        // parameters, so persisted cells must not carry over.
        format!(
            "double-skip-v2(max={},seed={:#x})",
            self.max_injections, self.seed
        )
    }

    fn fault_points(&self, ctx: &CampaignContext<'_>) -> Vec<FaultPoint> {
        let n = ctx.trace.steps();
        if n < 2 || self.max_injections == 0 {
            return Vec::new();
        }
        let full = n * (n - 1) / 2;
        if full <= self.max_injections {
            let mut points = Vec::with_capacity(full as usize);
            for first in 1..=n {
                for second in (first + 1)..=n {
                    points.push(FaultPoint::DoubleSkip { first, second });
                }
            }
            return points;
        }
        // Clustered sampling: draw distinct firsts uniformly, then up to
        // `width` distinct seconds per first (ascending within the batch).
        // The width adapts so the total capacity of all firsts always covers
        // the budget: sum over firsts of min(width, n - first) >= budget
        // whenever the space is large enough to sample from.
        let budget = self.max_injections;
        let width = 16.max((2 * budget).div_ceil(n - 1));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut seen_firsts: HashSet<u64> = HashSet::new();
        let mut points = Vec::with_capacity(budget as usize);
        let mut remaining = budget;
        while remaining > 0 {
            let first = loop {
                let f = rng.gen_range(1..n);
                if seen_firsts.insert(f) {
                    break f;
                }
            };
            let avail = n - first;
            let take = width.min(avail).min(remaining);
            if take == avail {
                for second in (first + 1)..=n {
                    points.push(FaultPoint::DoubleSkip { first, second });
                }
            } else {
                let mut chosen: HashSet<u64> = HashSet::with_capacity(take as usize);
                while (chosen.len() as u64) < take {
                    chosen.insert(rng.gen_range(first + 1..=n));
                }
                let mut seconds: Vec<u64> = chosen.into_iter().collect();
                seconds.sort_unstable();
                for second in seconds {
                    points.push(FaultPoint::DoubleSkip { first, second });
                }
            }
            remaining -= take;
        }
        points
    }

    fn plan(&self, points: &[FaultPoint]) -> Vec<FaultGroup> {
        let mut groups = Vec::new();
        let mut start = 0;
        while start < points.len() {
            let FaultPoint::DoubleSkip { first, .. } = points[start] else {
                // Foreign points (hand-built spaces): no sharing assumption.
                groups.push(FaultGroup {
                    start,
                    end: start + 1,
                    shared_first: None,
                });
                start += 1;
                continue;
            };
            let mut end = start + 1;
            while end < points.len()
                && matches!(points[end], FaultPoint::DoubleSkip { first: f, .. } if f == first)
            {
                end += 1;
            }
            groups.push(FaultGroup {
                start,
                end,
                shared_first: Some(first),
            });
            start = end;
        }
        groups
    }
}

/// The registers the Monte-Carlo register-flip model corrupts: the
/// caller-saved data registers the workloads actually compute in.
pub const FLIP_REGISTERS: [Reg; 5] = [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R12];

/// Monte-Carlo register-bit-flip model: `trials` injections, each flipping a
/// random bit of a random data register at a random dynamic step.
///
/// The sampling order (step, then register, then bit) matches the historical
/// `RegisterBitFlipCampaign`, so a given seed reproduces its exact numbers.
#[derive(Debug, Clone, Copy)]
pub struct RegisterBitFlip {
    /// Number of injections.
    pub trials: u64,
    /// Seed of the deterministic sampler.
    pub seed: u64,
}

impl FaultModel for RegisterBitFlip {
    fn name(&self) -> String {
        "register-flip".to_string()
    }

    fn fingerprint(&self) -> String {
        format!(
            "register-flip(trials={},seed={:#x})",
            self.trials, self.seed
        )
    }

    fn fault_points(&self, ctx: &CampaignContext<'_>) -> Vec<FaultPoint> {
        let n = ctx.trace.steps();
        if n == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.trials)
            .map(|_| {
                let step = rng.gen_range(1..=n);
                let reg = FLIP_REGISTERS[rng.gen_range(0..FLIP_REGISTERS.len())];
                let bit = rng.gen_range(0..32);
                FaultPoint::RegisterFlip { step, reg, bit }
            })
            .collect()
    }
}

/// Monte-Carlo memory-bit-flip model: `trials` injections, each flipping a
/// random bit of a random byte of the module's global data at a random
/// dynamic step. For targets without globals the whole guest RAM (stack
/// included) is the fault space instead.
#[derive(Debug, Clone, Copy)]
pub struct MemoryBitFlip {
    /// Number of injections.
    pub trials: u64,
    /// Seed of the deterministic sampler.
    pub seed: u64,
}

impl FaultModel for MemoryBitFlip {
    fn name(&self) -> String {
        "memory-flip".to_string()
    }

    fn fingerprint(&self) -> String {
        format!("memory-flip(trials={},seed={:#x})", self.trials, self.seed)
    }

    fn fault_points(&self, ctx: &CampaignContext<'_>) -> Vec<FaultPoint> {
        let n = ctx.trace.steps();
        if n == 0 || ctx.memory_size == 0 {
            return Vec::new();
        }
        let regions: Vec<(u32, u32)> = ctx
            .global_regions
            .iter()
            .copied()
            .filter(|&(_, len)| len > 0)
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.trials)
            .map(|_| {
                let step = rng.gen_range(1..=n);
                let addr = if regions.is_empty() {
                    rng.gen_range(0..ctx.memory_size)
                } else {
                    let (base, len) = regions[rng.gen_range(0..regions.len())];
                    base + rng.gen_range(0..len)
                };
                let bit = rng.gen_range(0..8);
                FaultPoint::MemoryFlip { step, addr, bit }
            })
            .collect()
    }
}

/// Exhaustive conditional-branch-inversion model: every dynamic conditional
/// branch of the reference execution is forced to the opposite direction
/// once — the paper's core attacker, aimed directly at the branch decision.
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchInversion;

impl FaultModel for BranchInversion {
    fn name(&self) -> String {
        "branch-invert".to_string()
    }

    fn fault_points(&self, ctx: &CampaignContext<'_>) -> Vec<FaultPoint> {
        ctx.trace
            .conditional_steps
            .iter()
            .map(|&step| FaultPoint::BranchInvert { step })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_armv7m::ProgramBuilder;

    fn ctx_of(trace: &ReferenceTrace, program: &Program) -> CampaignContext<'static> {
        // Leak for test brevity: contexts are tiny and tests are short-lived.
        let trace = Box::leak(Box::new(trace.clone()));
        let program = Box::leak(Box::new(program.clone()));
        CampaignContext {
            trace,
            program,
            global_regions: &[],
            memory_size: 4096,
        }
    }

    fn tiny_trace(steps: usize) -> (ReferenceTrace, Program) {
        let program = ProgramBuilder::new().assemble().expect("assembles");
        let trace = ReferenceTrace {
            result: ExecResult {
                return_value: 0,
                cycles: steps as u64,
                instructions: steps as u64,
                cfi_checks: 0,
                cfi_violations: 0,
            },
            pcs: (0..steps as u32).collect(),
            conditional_steps: vec![2, 5],
        };
        (trace, program)
    }

    #[test]
    fn skip_model_enumerates_every_step() {
        let (trace, program) = tiny_trace(6);
        let points = InstructionSkip.fault_points(&ctx_of(&trace, &program));
        assert_eq!(points.len(), 6);
        assert_eq!(points[0], FaultPoint::Skip { step: 1 });
        assert_eq!(points[5], FaultPoint::Skip { step: 6 });
    }

    #[test]
    fn double_skip_enumerates_or_samples() {
        let (trace, program) = tiny_trace(5);
        let ctx = ctx_of(&trace, &program);
        let full = DoubleInstructionSkip {
            max_injections: 100,
            seed: 1,
        }
        .fault_points(&ctx);
        assert_eq!(full.len(), 10, "5 choose 2");
        for p in &full {
            let FaultPoint::DoubleSkip { first, second } = p else {
                panic!("wrong point kind");
            };
            assert!(first < second);
        }
        let sampled = DoubleInstructionSkip {
            max_injections: 4,
            seed: 1,
        }
        .fault_points(&ctx);
        assert_eq!(sampled.len(), 4);
        let again = DoubleInstructionSkip {
            max_injections: 4,
            seed: 1,
        }
        .fault_points(&ctx);
        assert_eq!(sampled, again, "sampling is seed-deterministic");
    }

    #[test]
    fn double_skip_sampling_is_clustered_by_first() {
        let (trace, program) = tiny_trace(400);
        let ctx = ctx_of(&trace, &program);
        let model = DoubleInstructionSkip {
            max_injections: 500,
            seed: 0x2FA17,
        };
        let points = model.fault_points(&ctx);
        assert_eq!(points.len(), 500);

        // Grouped by first: each first occupies one contiguous run, seconds
        // strictly ascending inside it, and pairs stay in range.
        let mut seen_firsts = HashSet::new();
        let mut i = 0;
        while i < points.len() {
            let FaultPoint::DoubleSkip { first, second } = points[i] else {
                panic!("wrong point kind");
            };
            assert!(seen_firsts.insert(first), "first {first} re-opened");
            assert!((1..400).contains(&first));
            let mut prev = second;
            assert!(first < prev && prev <= 400);
            i += 1;
            while i < points.len()
                && matches!(points[i], FaultPoint::DoubleSkip { first: f, .. } if f == first)
            {
                let FaultPoint::DoubleSkip { second, .. } = points[i] else {
                    unreachable!()
                };
                assert!(second > prev, "seconds ascend within a batch");
                assert!(second <= 400);
                prev = second;
                i += 1;
            }
        }
        // Clustering is the point: far fewer groups than points.
        assert!(
            seen_firsts.len() * 4 <= points.len(),
            "{} groups for {} points — no prefix sharing to exploit",
            seen_firsts.len(),
            points.len()
        );
        assert_eq!(points, model.fault_points(&ctx), "seed-deterministic");
    }

    #[test]
    fn fault_plans_batch_shared_prefixes() {
        let (trace, program) = tiny_trace(40);
        let ctx = ctx_of(&trace, &program);

        // Single-fault models: one splittable group.
        let skips = InstructionSkip.fault_points(&ctx);
        assert_eq!(
            InstructionSkip.plan(&skips),
            vec![FaultGroup {
                start: 0,
                end: skips.len(),
                shared_first: None
            }]
        );
        assert!(InstructionSkip.plan(&[]).is_empty());

        // Double skip: one atomic group per run of equal firsts, covering
        // the point vector exactly, in order.
        let model = DoubleInstructionSkip {
            max_injections: 100,
            seed: 7,
        };
        let points = model.fault_points(&ctx);
        let plan = model.plan(&points);
        let mut cursor = 0;
        for group in &plan {
            assert_eq!(group.start, cursor, "contiguous cover");
            assert!(group.end > group.start);
            let first = group.shared_first.expect("double-skip groups share");
            for p in &points[group.start..group.end] {
                assert!(matches!(p, FaultPoint::DoubleSkip { first: f, .. } if *f == first));
            }
            cursor = group.end;
        }
        assert_eq!(cursor, points.len());
    }

    #[test]
    fn sampling_models_are_seed_deterministic_and_in_range() {
        let (trace, program) = tiny_trace(9);
        let ctx = ctx_of(&trace, &program);
        let a = RegisterBitFlip {
            trials: 50,
            seed: 3,
        }
        .fault_points(&ctx);
        let b = RegisterBitFlip {
            trials: 50,
            seed: 3,
        }
        .fault_points(&ctx);
        assert_eq!(a, b);
        for p in &a {
            let FaultPoint::RegisterFlip { step, bit, .. } = p else {
                panic!("wrong point kind");
            };
            assert!((1..=9).contains(step));
            assert!(*bit < 32);
        }
        let mem = MemoryBitFlip {
            trials: 50,
            seed: 3,
        }
        .fault_points(&ctx);
        for p in &mem {
            let FaultPoint::MemoryFlip { addr, bit, .. } = p else {
                panic!("wrong point kind");
            };
            assert!(*addr < 4096, "no globals: whole RAM is the space");
            assert!(*bit < 8);
        }
    }

    #[test]
    fn memory_flips_prefer_global_regions() {
        let (trace, program) = tiny_trace(4);
        let trace = Box::leak(Box::new(trace));
        let program = Box::leak(Box::new(program));
        let ctx = CampaignContext {
            trace,
            program,
            global_regions: &[(0x1000, 8), (0x1010, 4)],
            memory_size: 1 << 16,
        };
        let points = MemoryBitFlip {
            trials: 200,
            seed: 9,
        }
        .fault_points(&ctx);
        for p in &points {
            let FaultPoint::MemoryFlip { addr, .. } = p else {
                panic!("wrong point kind");
            };
            assert!(
                (0x1000..0x1008).contains(addr) || (0x1010..0x1014).contains(addr),
                "addr 0x{addr:x} outside the global regions"
            );
        }
    }

    #[test]
    fn fingerprints_cover_the_model_configuration() {
        assert_eq!(InstructionSkip.fingerprint(), "skip");
        assert_eq!(BranchInversion.fingerprint(), "branch-invert");
        let a = RegisterBitFlip {
            trials: 10,
            seed: 1,
        };
        let b = RegisterBitFlip {
            trials: 10,
            seed: 2,
        };
        let c = RegisterBitFlip {
            trials: 11,
            seed: 1,
        };
        assert_ne!(a.fingerprint(), b.fingerprint(), "seed discriminates");
        assert_ne!(a.fingerprint(), c.fingerprint(), "trials discriminate");
        assert_eq!(
            a.fingerprint(),
            RegisterBitFlip {
                trials: 10,
                seed: 1
            }
            .fingerprint()
        );
        assert_ne!(
            MemoryBitFlip {
                trials: 10,
                seed: 1
            }
            .fingerprint(),
            RegisterBitFlip {
                trials: 10,
                seed: 1
            }
            .fingerprint(),
            "model kind discriminates"
        );
        assert_ne!(
            DoubleInstructionSkip {
                max_injections: 5,
                seed: 1
            }
            .fingerprint(),
            DoubleInstructionSkip {
                max_injections: 6,
                seed: 1
            }
            .fingerprint(),
        );
    }

    #[test]
    fn branch_inversion_targets_the_recorded_conditionals() {
        let (trace, program) = tiny_trace(6);
        let points = BranchInversion.fault_points(&ctx_of(&trace, &program));
        assert_eq!(
            points,
            vec![
                FaultPoint::BranchInvert { step: 2 },
                FaultPoint::BranchInvert { step: 5 },
            ]
        );
    }
}
