//! Reference-suffix liveness: proving faults outcome-dead without running
//! them.
//!
//! A fault whose every effect is a *dead write* — each corrupted location is
//! overwritten by the reference suffix before anything reads it — provably
//! drives the run to the reference outcome: no executed instruction ever
//! observes a corrupted input, so the control flow, the CFI monitor and the
//! return value are bit-for-bit the reference's. The differential executor
//! answers such injections from the reference result with *zero* execution.
//!
//! [`SuffixIndex`] is built once per reference trace by replaying the
//! fault-free run with a recording hook: for every register, the flags and
//! every touched memory byte it keeps the sorted list of (step, read/write)
//! accesses, with same-step reads ordered before writes (an instruction
//! reads its inputs before producing its outputs) and a virtual read of `r0`
//! one step past the end (the harness consumes the return value). Verdicts
//! are then two binary searches:
//!
//! * **skip at `t`** — every location written by step `t` must be *written*
//!   again strictly after `t` before any read; branches, CFI stores and
//!   anything reaching the program counter are conservatively live, while
//!   skipping a not-taken conditional branch or a `nop` is inert.
//! * **register/memory flip before `t`** — the first access of the flipped
//!   location at or after `t` must be a write (flips into the CFI window or
//!   past RAM are hardware no-ops and inert).
//!
//! Dead verdicts *compose*: two individually dead skips are dead together,
//! because the combined run still follows the reference path and each stale
//! location's no-read window is covered by the two verdicts even when one
//! skip removes the other's settling write (that write's own staleness is
//! then covered by its verdict). [`LivenessVerdict::Dead::settled_by`]
//! additionally bounds *when* the staleness ends, which lets the executor
//! reduce a double fault with a dead, settled first skip to a plain single
//! skip of the second step.

use std::collections::HashMap;

use secbranch_armv7m::machine::CFI_BASE;
use secbranch_armv7m::{FaultAction, FaultHook, Instr, Machine, Operand2, Reg, Simulator};

use crate::model::ReferenceTrace;
use crate::point::FaultPoint;

/// What suffix liveness can prove about one fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessVerdict {
    /// The fault provably yields the reference outcome without being run.
    Dead {
        /// The last step at which a corrupted location is overwritten — from
        /// `settled_by + 1` on, the faulted machine state is bit-identical
        /// to the reference's. `u64::MAX` when some corrupted location is
        /// simply never accessed again (outcome-dead, but the state never
        /// exactly reconverges).
        settled_by: u64,
    },
    /// Liveness cannot rule out an observable effect; the fault must run.
    Live,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    Read,
    Write,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Loc {
    Reg(usize),
    Flags,
    Mem(u32),
}

/// How a dynamic step responds to being skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepClass {
    /// Effects are exactly the recorded writes; liveness decides.
    Plain,
    /// Control flow (taken branches, calls, returns): never pruned.
    Branch,
    /// Stores into the CFI window mutate the monitor: never pruned.
    CfiStore,
    /// Skipping changes nothing (not-taken conditional branch, `nop`).
    Inert,
}

#[derive(Debug, Default)]
struct AccessList(Vec<(u64, Access)>);

impl AccessList {
    fn push(&mut self, step: u64, kind: Access) {
        self.0.push((step, kind));
    }

    /// First access at `step` or later (same-step reads sort before writes).
    fn first_at_or_after(&self, step: u64) -> Option<(u64, Access)> {
        let i = self.0.partition_point(|&(s, _)| s < step);
        self.0.get(i).copied()
    }

    /// First access strictly after `step`.
    fn first_after(&self, step: u64) -> Option<(u64, Access)> {
        let i = self.0.partition_point(|&(s, _)| s <= step);
        self.0.get(i).copied()
    }
}

/// The per-location access index of one reference execution (see the module
/// docs for the construction and the soundness argument).
#[derive(Debug)]
pub struct SuffixIndex {
    reg_acc: [AccessList; 16],
    flag_acc: AccessList,
    mem_acc: HashMap<u32, AccessList>,
    /// Step `t` is `steps[t - 1]`: its class and its written locations.
    steps: Vec<(StepClass, Vec<Loc>)>,
    memory_size: u32,
}

/// The recording hook: mirrors the simulator's effect model instruction by
/// instruction, using the pre-execution machine state to resolve addresses
/// and branch directions.
struct Recorder {
    index: SuffixIndex,
    pcs: Vec<u32>,
}

fn op2_read(op2: &Operand2, reads: &mut Vec<Loc>) {
    if let Operand2::Reg(r) = op2 {
        reads.push(Loc::Reg(r.index()));
    }
}

impl FaultHook for Recorder {
    fn before_execute(
        &mut self,
        step: u64,
        pc: usize,
        instr: &Instr,
        machine: &mut Machine,
    ) -> FaultAction {
        self.pcs.push(pc as u32);
        let mut reads: Vec<Loc> = Vec::new();
        let mut writes: Vec<Loc> = Vec::new();
        let mut class = StepClass::Plain;
        match instr {
            Instr::MovImm { rd, .. } => writes.push(Loc::Reg(rd.index())),
            Instr::Mov { rd, rm } => {
                reads.push(Loc::Reg(rm.index()));
                writes.push(Loc::Reg(rd.index()));
            }
            Instr::Add { rd, rn, op2 }
            | Instr::Sub { rd, rn, op2 }
            | Instr::And { rd, rn, op2 }
            | Instr::Orr { rd, rn, op2 }
            | Instr::Eor { rd, rn, op2 }
            | Instr::Lsl { rd, rn, op2 }
            | Instr::Lsr { rd, rn, op2 }
            | Instr::Asr { rd, rn, op2 } => {
                reads.push(Loc::Reg(rn.index()));
                op2_read(op2, &mut reads);
                writes.push(Loc::Reg(rd.index()));
            }
            Instr::Mul { rd, rn, rm } => {
                reads.push(Loc::Reg(rn.index()));
                reads.push(Loc::Reg(rm.index()));
                writes.push(Loc::Reg(rd.index()));
            }
            Instr::Mls { rd, rn, rm, ra } => {
                reads.push(Loc::Reg(rn.index()));
                reads.push(Loc::Reg(rm.index()));
                reads.push(Loc::Reg(ra.index()));
                writes.push(Loc::Reg(rd.index()));
            }
            Instr::Udiv { rd, rn, rm } => {
                reads.push(Loc::Reg(rn.index()));
                reads.push(Loc::Reg(rm.index()));
                writes.push(Loc::Reg(rd.index()));
            }
            Instr::Cmp { rn, op2 } => {
                reads.push(Loc::Reg(rn.index()));
                op2_read(op2, &mut reads);
                writes.push(Loc::Flags);
            }
            Instr::B { .. } => class = StepClass::Branch,
            Instr::BCond { cond, .. } => {
                reads.push(Loc::Flags);
                class = if machine.flags.condition_holds(*cond) {
                    StepClass::Branch
                } else {
                    StepClass::Inert
                };
            }
            Instr::Bl { .. } => {
                writes.push(Loc::Reg(Reg::Lr.index()));
                class = StepClass::Branch;
            }
            Instr::Bx { rm } => {
                reads.push(Loc::Reg(rm.index()));
                class = StepClass::Branch;
            }
            Instr::Ldr { rt, rn, offset } => {
                reads.push(Loc::Reg(rn.index()));
                let addr = machine.reg(*rn).wrapping_add(*offset as u32);
                if addr < CFI_BASE {
                    for b in 0..4 {
                        reads.push(Loc::Mem(addr + b));
                    }
                }
                writes.push(Loc::Reg(rt.index()));
            }
            Instr::Ldrb { rt, rn, offset } => {
                reads.push(Loc::Reg(rn.index()));
                let addr = machine.reg(*rn).wrapping_add(*offset as u32);
                if addr < CFI_BASE {
                    reads.push(Loc::Mem(addr));
                }
                writes.push(Loc::Reg(rt.index()));
            }
            Instr::Str { rt, rn, offset } => {
                reads.push(Loc::Reg(rn.index()));
                reads.push(Loc::Reg(rt.index()));
                let addr = machine.reg(*rn).wrapping_add(*offset as u32);
                if addr >= CFI_BASE {
                    class = StepClass::CfiStore;
                } else {
                    for b in 0..4 {
                        writes.push(Loc::Mem(addr + b));
                    }
                }
            }
            Instr::Strb { rt, rn, offset } => {
                reads.push(Loc::Reg(rn.index()));
                reads.push(Loc::Reg(rt.index()));
                let addr = machine.reg(*rn).wrapping_add(*offset as u32);
                if addr >= CFI_BASE {
                    class = StepClass::CfiStore;
                } else {
                    writes.push(Loc::Mem(addr));
                }
            }
            Instr::Push { regs } => {
                reads.push(Loc::Reg(Reg::Sp.index()));
                for r in regs {
                    reads.push(Loc::Reg(r.index()));
                }
                let sp = machine.reg(Reg::Sp).wrapping_sub(4 * regs.len() as u32);
                writes.push(Loc::Reg(Reg::Sp.index()));
                for b in 0..(4 * regs.len() as u32) {
                    writes.push(Loc::Mem(sp + b));
                }
            }
            Instr::Pop { regs } => {
                reads.push(Loc::Reg(Reg::Sp.index()));
                let sp = machine.reg(Reg::Sp);
                for b in 0..(4 * regs.len() as u32) {
                    reads.push(Loc::Mem(sp + b));
                }
                for r in regs {
                    if *r == Reg::Pc {
                        // A pop into pc is a return: control flow.
                        class = StepClass::Branch;
                    } else {
                        writes.push(Loc::Reg(r.index()));
                    }
                }
                writes.push(Loc::Reg(Reg::Sp.index()));
            }
            Instr::Nop => class = StepClass::Inert,
        }
        for loc in &reads {
            self.index.access(*loc).push(step, Access::Read);
        }
        for loc in &writes {
            self.index.access(*loc).push(step, Access::Write);
        }
        self.index.steps.push((class, writes));
        FaultAction::Continue
    }
}

impl SuffixIndex {
    fn access(&mut self, loc: Loc) -> &mut AccessList {
        match loc {
            Loc::Reg(i) => &mut self.reg_acc[i],
            Loc::Flags => &mut self.flag_acc,
            Loc::Mem(addr) => self.mem_acc.entry(addr).or_default(),
        }
    }

    fn first_at_or_after(&self, loc: Loc, step: u64) -> Option<(u64, Access)> {
        match loc {
            Loc::Reg(i) => self.reg_acc[i].first_at_or_after(step),
            Loc::Flags => self.flag_acc.first_at_or_after(step),
            Loc::Mem(addr) => self.mem_acc.get(&addr)?.first_at_or_after(step),
        }
    }

    fn first_after(&self, loc: Loc, step: u64) -> Option<(u64, Access)> {
        match loc {
            Loc::Reg(i) => self.reg_acc[i].first_after(step),
            Loc::Flags => self.flag_acc.first_after(step),
            Loc::Mem(addr) => self.mem_acc.get(&addr)?.first_after(step),
        }
    }

    /// Builds the index by replaying the fault-free reference on
    /// `simulator` (which must be freshly reset for the same artifact the
    /// trace was recorded from). Returns `None` — disabling pruning, which
    /// is always safe — if the replay diverges from `trace` in any way.
    #[must_use]
    pub fn build(
        simulator: &mut Simulator,
        entry: &str,
        args: &[u32],
        max_steps: u64,
        trace: &ReferenceTrace,
    ) -> Option<SuffixIndex> {
        let memory_size = simulator.machine().memory_size();
        let mut recorder = Recorder {
            index: SuffixIndex {
                reg_acc: Default::default(),
                flag_acc: AccessList::default(),
                mem_acc: HashMap::new(),
                steps: Vec::with_capacity(trace.pcs.len()),
                memory_size,
            },
            pcs: Vec::with_capacity(trace.pcs.len()),
        };
        let result = simulator
            .call_with_faults(entry, args, max_steps, &mut recorder)
            .ok()?;
        if recorder.pcs != trace.pcs || result != trace.result {
            return None;
        }
        let n = trace.steps();
        // The harness reads the return value: a virtual read of r0 past the
        // last step, so corrupting r0 at the end is never called dead.
        recorder.index.reg_acc[Reg::R0.index()].push(n + 1, Access::Read);
        Some(recorder.index)
    }

    /// The verdict for one fault point. Double skips are dead iff both
    /// component skips are individually dead (dead verdicts compose — see
    /// the module docs); branch inversions are always live.
    #[must_use]
    pub fn verdict(&self, point: &FaultPoint) -> LivenessVerdict {
        match *point {
            FaultPoint::Skip { step } => self.skip_verdict(step),
            FaultPoint::DoubleSkip { first, second } => {
                match (self.skip_verdict(first), self.skip_verdict(second)) {
                    (
                        LivenessVerdict::Dead { settled_by: a },
                        LivenessVerdict::Dead { settled_by: b },
                    ) => LivenessVerdict::Dead {
                        settled_by: a.max(b),
                    },
                    _ => LivenessVerdict::Live,
                }
            }
            FaultPoint::RegisterFlip { step, reg, .. } => self.reg_flip_verdict(step, reg),
            FaultPoint::MemoryFlip { step, addr, .. } => self.mem_flip_verdict(step, addr),
            FaultPoint::BranchInvert { .. } => LivenessVerdict::Live,
        }
    }

    /// Verdict for skipping the instruction at dynamic step `step`.
    #[must_use]
    pub fn skip_verdict(&self, step: u64) -> LivenessVerdict {
        let Some(index) = step.checked_sub(1) else {
            return LivenessVerdict::Live;
        };
        let Some((class, writes)) = self.steps.get(index as usize) else {
            return LivenessVerdict::Live;
        };
        match class {
            StepClass::Branch | StepClass::CfiStore => LivenessVerdict::Live,
            StepClass::Inert => LivenessVerdict::Dead { settled_by: step },
            StepClass::Plain => {
                let mut settled_by = step;
                for loc in writes {
                    match self.first_after(*loc, step) {
                        Some((_, Access::Read)) => return LivenessVerdict::Live,
                        Some((s, Access::Write)) => settled_by = settled_by.max(s),
                        None => settled_by = u64::MAX,
                    }
                }
                LivenessVerdict::Dead { settled_by }
            }
        }
    }

    /// Verdict for flipping a bit of `reg` just before `step` executes.
    #[must_use]
    pub fn reg_flip_verdict(&self, step: u64, reg: Reg) -> LivenessVerdict {
        if step == 0 || step > self.steps.len() as u64 {
            return LivenessVerdict::Live;
        }
        match self.first_at_or_after(Loc::Reg(reg.index()), step) {
            Some((_, Access::Read)) => LivenessVerdict::Live,
            Some((s, Access::Write)) => LivenessVerdict::Dead { settled_by: s },
            None => LivenessVerdict::Dead {
                settled_by: u64::MAX,
            },
        }
    }

    /// Verdict for flipping a bit of memory byte `addr` just before `step`
    /// executes.
    #[must_use]
    pub fn mem_flip_verdict(&self, step: u64, addr: u32) -> LivenessVerdict {
        if step == 0 || step > self.steps.len() as u64 {
            return LivenessVerdict::Live;
        }
        if addr >= CFI_BASE || addr >= self.memory_size {
            // `flip_memory_bit` is a hardware no-op there: CFI-window byte
            // loads read as zero and the write-back is discarded.
            return LivenessVerdict::Dead { settled_by: step };
        }
        match self.first_at_or_after(Loc::Mem(addr), step) {
            Some((_, Access::Read)) => LivenessVerdict::Live,
            Some((s, Access::Write)) => LivenessVerdict::Dead { settled_by: s },
            None => LivenessVerdict::Dead {
                settled_by: u64::MAX,
            },
        }
    }

    /// The number of dynamic steps of the indexed reference.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::classify;
    use secbranch_armv7m::machine::{CFI_CHECK_ADDR, CFI_UPDATE_ADDR};
    use secbranch_armv7m::{Cond, ProgramBuilder, Target};

    /// A workload exercising every effect kind: arithmetic with dead
    /// writes, loads/stores, push/pop, a call, both branch directions and
    /// a CFI check in the epilogue.
    fn rich_program() -> secbranch_armv7m::Program {
        let mut p = ProgramBuilder::new();
        p.label("helper");
        p.push(Instr::Add {
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1),
        });
        p.push(Instr::Bx { rm: Reg::Lr });

        p.label("main");
        p.push(Instr::Push {
            regs: vec![Reg::R4, Reg::Lr],
        });
        // CFI: signature update.
        p.push(Instr::MovImm {
            rd: Reg::R3,
            imm: CFI_UPDATE_ADDR,
        });
        p.push(Instr::MovImm {
            rd: Reg::R2,
            imm: 0x11,
        });
        p.push(Instr::Str {
            rt: Reg::R2,
            rn: Reg::R3,
            offset: 0,
        });
        // A dead write: r12 is set and overwritten without a read between.
        p.push(Instr::MovImm {
            rd: Reg::R12,
            imm: 99,
        });
        p.push(Instr::MovImm {
            rd: Reg::R12,
            imm: 1,
        });
        // Loop: r0 = sum of 0..r0 via helper calls, scratch store per round.
        p.push(Instr::Mov {
            rd: Reg::R4,
            rm: Reg::R0,
        });
        p.push(Instr::MovImm {
            rd: Reg::R0,
            imm: 0,
        });
        p.push(Instr::MovImm {
            rd: Reg::R2,
            imm: 0,
        });
        p.label("loop");
        p.push(Instr::Cmp {
            rn: Reg::R2,
            op2: Operand2::Reg(Reg::R4),
        });
        p.push(Instr::BCond {
            cond: Cond::Hs,
            target: Target::label("exit"),
        });
        p.push(Instr::Mov {
            rd: Reg::R1,
            rm: Reg::R2,
        });
        p.push(Instr::Bl {
            target: Target::label("helper"),
        });
        p.push(Instr::Str {
            rt: Reg::R0,
            rn: Reg::R12,
            offset: 256,
        });
        p.push(Instr::Ldrb {
            rt: Reg::R3,
            rn: Reg::R12,
            offset: 256,
        });
        p.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::B {
            target: Target::label("loop"),
        });
        p.label("exit");
        // CFI: check the signature.
        p.push(Instr::MovImm {
            rd: Reg::R3,
            imm: CFI_CHECK_ADDR,
        });
        p.push(Instr::MovImm {
            rd: Reg::R2,
            imm: 0x11,
        });
        p.push(Instr::Str {
            rt: Reg::R2,
            rn: Reg::R3,
            offset: 0,
        });
        p.push(Instr::Pop {
            regs: vec![Reg::R4, Reg::Pc],
        });
        p.assemble().expect("assembles")
    }

    fn record(
        program: &secbranch_armv7m::Program,
        args: &[u32],
    ) -> (ReferenceTrace, secbranch_armv7m::ExecResult) {
        struct Tracer(Vec<u32>, Vec<u64>);
        impl FaultHook for Tracer {
            fn before_execute(
                &mut self,
                step: u64,
                pc: usize,
                instr: &Instr,
                _: &mut Machine,
            ) -> FaultAction {
                self.0.push(pc as u32);
                if matches!(instr, Instr::BCond { .. }) {
                    self.1.push(step);
                }
                FaultAction::Continue
            }
        }
        let mut sim = Simulator::new(program.clone(), 4096);
        let mut tracer = Tracer(Vec::new(), Vec::new());
        let result = sim
            .call_with_faults("main", args, 10_000, &mut tracer)
            .expect("reference runs");
        (
            ReferenceTrace {
                result,
                pcs: tracer.0,
                conditional_steps: tracer.1,
            },
            result,
        )
    }

    #[test]
    fn dead_verdicts_match_real_runs_for_every_point() {
        let program = rich_program();
        let (trace, reference) = record(&program, &[5]);
        let mut sim = Simulator::new(program.clone(), 4096);
        let index =
            SuffixIndex::build(&mut sim, "main", &[5], 10_000, &trace).expect("index builds");
        let n = index.steps();
        assert_eq!(n, trace.steps());

        let mut points: Vec<FaultPoint> = Vec::new();
        for step in 1..=n {
            points.push(FaultPoint::Skip { step });
            for reg in crate::model::FLIP_REGISTERS {
                points.push(FaultPoint::RegisterFlip { step, reg, bit: 3 });
            }
            for addr in [0u32, 257, 1024, 4100, CFI_BASE + 8] {
                points.push(FaultPoint::MemoryFlip { step, addr, bit: 1 });
            }
        }
        for first in 1..n {
            points.push(FaultPoint::DoubleSkip {
                first,
                second: first + 1,
            });
            if first + 7 <= n {
                points.push(FaultPoint::DoubleSkip {
                    first,
                    second: first + 7,
                });
            }
        }

        let mut dead = 0;
        let mut live = 0;
        let mut settled = 0;
        for point in &points {
            match index.verdict(point) {
                LivenessVerdict::Live => live += 1,
                LivenessVerdict::Dead { settled_by } => {
                    dead += 1;
                    if settled_by != u64::MAX {
                        assert!(settled_by >= point.last_fault_step());
                        settled += 1;
                    }
                    // The ground truth: actually run the fault.
                    let mut s = Simulator::new(program.clone(), 4096);
                    let mut hook = point.hook();
                    let result = s.call_with_faults("main", &[5], 10_000, &mut hook);
                    let outcome = classify(&reference, &result);
                    let rv = result.map_or(0, |r| r.return_value);
                    assert_eq!(
                        (outcome, rv),
                        (classify(&reference, &Ok(reference)), reference.return_value),
                        "{point} was called dead but diverged"
                    );
                }
            }
        }
        assert!(dead > 0, "analysis proves something");
        assert!(settled > 0, "some dead faults settle exactly");
        assert!(live > 0, "analysis is not trivially optimistic");
    }

    #[test]
    fn known_dead_and_live_steps_are_classified() {
        let program = rich_program();
        let (trace, _) = record(&program, &[3]);
        let mut sim = Simulator::new(program.clone(), 4096);
        let index =
            SuffixIndex::build(&mut sim, "main", &[3], 10_000, &trace).expect("index builds");

        // Step 5 is `mov r12, #99` — overwritten at step 6 before any read.
        assert_eq!(trace.pc_at(5), Some(6), "layout: dead mov at index 6");
        assert_eq!(
            index.skip_verdict(5),
            LivenessVerdict::Dead { settled_by: 6 }
        );
        // A flip of r12 before step 5 is swallowed by step 5's write.
        assert_eq!(
            index.reg_flip_verdict(5, Reg::R12),
            LivenessVerdict::Dead { settled_by: 5 }
        );
        // The CFI signature store (step 4) must never be pruned.
        assert_eq!(index.skip_verdict(4), LivenessVerdict::Live);
        // Flips into the CFI window and past RAM are hardware no-ops.
        assert_eq!(
            index.mem_flip_verdict(2, CFI_BASE + 4),
            LivenessVerdict::Dead { settled_by: 2 }
        );
        assert_eq!(
            index.mem_flip_verdict(2, 1 << 20),
            LivenessVerdict::Dead { settled_by: 2 }
        );
        // Skipping the first push (control data) is live via sp/memory.
        assert_eq!(index.skip_verdict(1), LivenessVerdict::Live);
        // Out-of-range steps are conservatively live.
        assert_eq!(index.skip_verdict(0), LivenessVerdict::Live);
        assert_eq!(index.skip_verdict(index.steps() + 1), LivenessVerdict::Live);
    }

    #[test]
    fn build_rejects_a_mismatched_trace() {
        let program = rich_program();
        let (mut trace, _) = record(&program, &[4]);
        trace.pcs[2] ^= 1;
        let mut sim = Simulator::new(program, 4096);
        assert!(SuffixIndex::build(&mut sim, "main", &[4], 10_000, &trace).is_none());
    }
}
