//! The evaluation workloads (Section V of the paper).

use secbranch_ir::builder::FunctionBuilder;
use secbranch_ir::{BinOp, Module, Operand, Predicate};

use crate::sha256;

/// Return value of a successful password check / boot decision.
pub const GRANT: u32 = 0xA5A5;
/// Return value of a rejected password check.
pub const DENY: u32 = 0x5A5A;
/// Return value of the bootloader when the image is authentic.
pub const BOOT_OK: u32 = 0xB007;
/// Return value of the bootloader when verification fails.
pub const BOOT_FAIL: u32 = 0xDEAD;

/// The `integer compare` micro-benchmark: a single protected equality
/// comparison. `integer_compare(x, y)` returns 1 when the values match.
#[must_use]
pub fn integer_compare_module() -> Module {
    let mut b = FunctionBuilder::new("integer_compare", 2);
    b.protect_branches();
    let eq = b.create_block("equal");
    let ne = b.create_block("not_equal");
    let cond = b.cmp(Predicate::Eq, b.param(0), b.param(1));
    b.branch(cond, eq, ne);
    b.switch_to(eq);
    b.ret(Some(1u32.into()));
    b.switch_to(ne);
    b.ret(Some(0u32.into()));
    let mut m = Module::new();
    m.add_function(b.finish());
    m
}

/// Adds the secure byte-wise `memcmp_secure(a_ptr, b_ptr, len)` function:
/// it accumulates the XOR difference of all bytes (no data-dependent early
/// exit) and finally takes a protected branch on "all equal", returning 1 for
/// equal buffers and 0 otherwise.
fn add_memcmp_secure(module: &mut Module) {
    if module.function("memcmp_secure").is_some() {
        return;
    }
    let mut b = FunctionBuilder::new("memcmp_secure", 3);
    b.protect_branches();
    let (a_ptr, b_ptr, len) = (b.param(0), b.param(1), b.param(2));
    let i = b.local("i", 4);
    let diff = b.local("diff", 4);
    b.store_local(i, 0u32);
    b.store_local(diff, 0u32);
    let header = b.create_block("header");
    let body = b.create_block("body");
    let check = b.create_block("check");
    let equal = b.create_block("equal");
    let not_equal = b.create_block("not_equal");
    b.jump(header);
    b.switch_to(header);
    let iv = b.load_local(i);
    let more = b.cmp(Predicate::Ult, iv, len);
    b.branch(more, body, check);
    b.switch_to(body);
    let iv = b.load_local(i);
    let pa = b.bin(BinOp::Add, a_ptr, iv);
    let va = b.load_byte(pa);
    let pb = b.bin(BinOp::Add, b_ptr, iv);
    let vb = b.load_byte(pb);
    let x = b.bin(BinOp::Xor, va, vb);
    let d = b.load_local(diff);
    let d2 = b.bin(BinOp::Or, d, x);
    b.store_local(diff, d2);
    let inext = b.bin(BinOp::Add, iv, 1u32);
    b.store_local(i, inext);
    b.jump(header);
    b.switch_to(check);
    let d = b.load_local(diff);
    let is_equal = b.cmp(Predicate::Eq, d, 0u32);
    b.branch(is_equal, equal, not_equal);
    b.switch_to(equal);
    b.ret(Some(1u32.into()));
    b.switch_to(not_equal);
    b.ret(Some(0u32.into()));
    module.add_function(b.finish());
}

/// The `memcmp` micro-benchmark: compares two module-global buffers of `len`
/// bytes through `memcmp_secure`. The driver `memcmp_bench()` takes no
/// arguments; the buffers (`memcmp_a`, `memcmp_b`) are equal by default and
/// can be modified in guest memory before the run.
#[must_use]
pub fn memcmp_module(len: u32) -> Module {
    let mut m = Module::new();
    let data: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
    m.add_global("memcmp_a", data.clone(), true);
    m.add_global("memcmp_b", data, true);
    add_memcmp_secure(&mut m);

    let mut b = FunctionBuilder::new("memcmp_bench", 0);
    b.protect_branches();
    let a = b.global_addr("memcmp_a");
    let bb = b.global_addr("memcmp_b");
    let r = b.call("memcmp_secure", &[a, bb, Operand::Const(len)]);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

/// The password-check scenario: `password_check()` compares a stored secret
/// against an entered password (both module globals of `len` bytes) and
/// returns [`GRANT`] or [`DENY`] through a protected branch.
#[must_use]
pub fn password_check_module(len: u32) -> Module {
    let mut m = Module::new();
    let secret: Vec<u8> = (0..len).map(|i| (0x41 + (i % 26)) as u8).collect();
    m.add_global("password_stored", secret.clone(), false);
    m.add_global("password_entered", secret, true);
    add_memcmp_secure(&mut m);

    let mut b = FunctionBuilder::new("password_check", 0);
    b.protect_branches();
    let grant = b.create_block("grant");
    let deny = b.create_block("deny");
    let stored = b.global_addr("password_stored");
    let entered = b.global_addr("password_entered");
    let equal = b.call("memcmp_secure", &[stored, entered, Operand::Const(len)]);
    let cond = b.cmp(Predicate::Eq, equal, 1u32);
    b.branch(cond, grant, deny);
    b.switch_to(grant);
    b.ret(Some(GRANT.into()));
    b.switch_to(deny);
    b.ret(Some(DENY.into()));
    m.add_function(b.finish());
    m
}

/// Return value of a PIN check that is locked out.
pub const PIN_LOCKED: u32 = 0x10CC;

/// Host-side CRC-32 (IEEE, reflected) — generates the guest lookup table
/// and the expected digest embedded in [`crc32_table_module`].
///
/// Deliberately duplicates `secbranch_store::format::crc32`: this crate is
/// a leaf (it depends only on `ir`) and must not grow a dependency on the
/// persistence stack just to share thirty lines of table generation. Both
/// copies pin the standard `0xCBF43926` check vector in their tests, so a
/// divergence cannot go unnoticed.
fn crc32_host(bytes: &[u8]) -> u32 {
    let table = crc32_host_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn crc32_host_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    for (i, entry) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *entry = c;
    }
    table
}

/// The `crc32` integrity-check workload: a table-driven CRC-32 over a
/// module-global message, compared against the embedded expected digest
/// through a protected branch.
///
/// This exercises a scenario shape the other workloads do not: a dense
/// *table lookup* inner loop (shift/mask/index arithmetic over a 1 KiB
/// global table) feeding one security-critical accept/reject decision.
/// `crc32_check()` returns 1 when the message matches its digest and 0
/// otherwise; corrupting `crc_message` (or the digest) in guest memory
/// before the call flips the decision.
#[must_use]
pub fn crc32_table_module(len: u32) -> Module {
    let mut m = Module::new();
    let table_bytes: Vec<u8> = crc32_host_table()
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect();
    m.add_global("crc_table", table_bytes, false);
    let message: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
    let expected = crc32_host(&message);
    m.add_global("crc_message", message, true);
    m.add_global("crc_expected", expected.to_le_bytes().to_vec(), true);

    // crc32_compute(ptr, len): the table-driven loop.
    let mut b = FunctionBuilder::new("crc32_compute", 2);
    b.protect_branches();
    let (ptr, len_op) = (b.param(0), b.param(1));
    let i = b.local("i", 4);
    let crc = b.local("crc", 4);
    b.store_local(i, 0u32);
    b.store_local(crc, 0xFFFF_FFFFu32);
    let header = b.create_block("header");
    let body = b.create_block("body");
    let done = b.create_block("done");
    let table = b.global_addr("crc_table");
    b.jump(header);
    b.switch_to(header);
    let iv = b.load_local(i);
    let more = b.cmp(Predicate::Ult, iv, len_op);
    b.branch(more, body, done);
    b.switch_to(body);
    let iv = b.load_local(i);
    let p = b.bin(BinOp::Add, ptr, iv);
    let byte = b.load_byte(p);
    let c = b.load_local(crc);
    let x = b.bin(BinOp::Xor, c, byte);
    let index = b.bin(BinOp::And, x, 0xFFu32);
    let offset = b.bin(BinOp::Shl, index, 2u32);
    let slot = b.bin(BinOp::Add, table, offset);
    let entry = b.load(slot);
    let shifted = b.bin(BinOp::LShr, c, 8u32);
    let next = b.bin(BinOp::Xor, shifted, entry);
    b.store_local(crc, next);
    let inext = b.bin(BinOp::Add, iv, 1u32);
    b.store_local(i, inext);
    b.jump(header);
    b.switch_to(done);
    let c = b.load_local(crc);
    let out = b.bin(BinOp::Xor, c, 0xFFFF_FFFFu32);
    b.ret(Some(out));
    m.add_function(b.finish());

    // crc32_check(): compute, compare, decide (the protected branch).
    let mut b = FunctionBuilder::new("crc32_check", 0);
    b.protect_branches();
    let ok = b.create_block("ok");
    let bad = b.create_block("bad");
    let msg = b.global_addr("crc_message");
    let computed = b.call("crc32_compute", &[msg, Operand::Const(len)]);
    let expected_addr = b.global_addr("crc_expected");
    let expected = b.load(expected_addr);
    let cond = b.cmp(Predicate::Eq, computed, expected);
    b.branch(cond, ok, bad);
    b.switch_to(ok);
    b.ret(Some(1u32.into()));
    b.switch_to(bad);
    b.ret(Some(0u32.into()));
    m.add_function(b.finish());
    m
}

/// The PIN-retry scenario: a password check with a persistent retry
/// counter and lockout — the classic smartcard target of fault attacks
/// (glitch the counter check or the comparison and extract the secret).
///
/// `pin_check()` consults the module-global `pin_attempts` counter first:
/// at or beyond `max_retries` failed attempts it returns [`PIN_LOCKED`]
/// without even comparing. Otherwise it compares `pin_entered` against
/// `pin_stored` via the secure memcmp; a match resets the counter and
/// returns [`GRANT`], a mismatch increments it and returns [`DENY`]. Both
/// decisions — lockout and grant — ride on protected branches, and the
/// counter state lives in guest memory across calls, so a fault campaign
/// attacks exactly the state machine a real reader exposes.
#[must_use]
pub fn pin_retry_module(len: u32, max_retries: u32) -> Module {
    let mut m = Module::new();
    let pin: Vec<u8> = (0..len).map(|i| (0x30 + (i % 10)) as u8).collect();
    m.add_global("pin_stored", pin.clone(), false);
    m.add_global("pin_entered", pin, true);
    m.add_global("pin_attempts", vec![0; 4], true);
    add_memcmp_secure(&mut m);

    let mut b = FunctionBuilder::new("pin_check", 0);
    b.protect_branches();
    let locked = b.create_block("locked");
    let compare = b.create_block("compare");
    let grant = b.create_block("grant");
    let deny = b.create_block("deny");
    let attempts_addr = b.global_addr("pin_attempts");
    let attempts = b.load(attempts_addr);
    let is_locked = b.cmp(Predicate::Uge, attempts, Operand::Const(max_retries));
    b.branch(is_locked, locked, compare);
    b.switch_to(locked);
    b.ret(Some(PIN_LOCKED.into()));
    b.switch_to(compare);
    let stored = b.global_addr("pin_stored");
    let entered = b.global_addr("pin_entered");
    let equal = b.call("memcmp_secure", &[stored, entered, Operand::Const(len)]);
    let cond = b.cmp(Predicate::Eq, equal, 1u32);
    b.branch(cond, grant, deny);
    b.switch_to(grant);
    let attempts_addr = b.global_addr("pin_attempts");
    b.store(attempts_addr, 0u32);
    b.ret(Some(GRANT.into()));
    b.switch_to(deny);
    let attempts_addr = b.global_addr("pin_attempts");
    let attempts = b.load(attempts_addr);
    let bumped = b.bin(BinOp::Add, attempts, 1u32);
    let attempts_addr = b.global_addr("pin_attempts");
    b.store(attempts_addr, bumped);
    b.ret(Some(DENY.into()));
    m.add_function(b.finish());
    m
}

/// A firmware image used by the bootloader macro-benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootImage {
    /// The raw (unpadded) image bytes.
    pub image: Vec<u8>,
    /// The SHA-256 padded image that is embedded in guest memory.
    pub padded: Vec<u8>,
    /// The expected digest of the authentic image.
    pub expected_digest: [u8; 32],
}

impl BootImage {
    /// Generates a deterministic pseudo-firmware image of `size` bytes
    /// (seeded so the evaluation is reproducible).
    #[must_use]
    pub fn generate(size: usize, seed: u64) -> Self {
        let mut state = seed | 1;
        let image: Vec<u8> = (0..size)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
            })
            .collect();
        Self::from_bytes(image)
    }

    /// Wraps an existing image.
    #[must_use]
    pub fn from_bytes(image: Vec<u8>) -> Self {
        let padded = sha256::pad(&image);
        let expected_digest = sha256::digest(&image);
        BootImage {
            image,
            padded,
            expected_digest,
        }
    }

    /// Number of 64-byte SHA-256 blocks of the padded image.
    #[must_use]
    pub fn block_count(&self) -> u32 {
        (self.padded.len() / 64) as u32
    }
}

/// The secure-bootloader macro-benchmark.
///
/// `bootloader()` hashes the embedded firmware image with the guest SHA-256,
/// compares the digest against the embedded expected digest using
/// `memcmp_secure`, and returns [`BOOT_OK`] only when they match (a protected
/// decision). Corrupting the image in guest memory before the call makes the
/// verification fail.
#[must_use]
pub fn bootloader_module(image: &BootImage) -> Module {
    let mut m = Module::new();
    m.add_global("boot_image", image.padded.clone(), true);
    m.add_global(
        "boot_expected_digest",
        image.expected_digest.to_vec(),
        false,
    );
    m.add_global("boot_computed_digest", vec![0; 32], true);
    sha256::add_sha256_blocks(&mut m);
    add_memcmp_secure(&mut m);

    let mut b = FunctionBuilder::new("bootloader", 0);
    b.protect_branches();
    let ok = b.create_block("boot");
    let fail = b.create_block("reject");
    let img = b.global_addr("boot_image");
    let out = b.global_addr("boot_computed_digest");
    let expected = b.global_addr("boot_expected_digest");
    let _ = b.call(
        "sha256_blocks",
        &[img, Operand::Const(image.block_count()), out],
    );
    let equal = b.call("memcmp_secure", &[out, expected, Operand::Const(32)]);
    let cond = b.cmp(Predicate::Eq, equal, 1u32);
    b.branch(cond, ok, fail);
    b.switch_to(ok);
    b.ret(Some(BOOT_OK.into()));
    b.switch_to(fail);
    b.ret(Some(BOOT_FAIL.into()));
    m.add_function(b.finish());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::interp::{InterpOptions, Interpreter};

    #[test]
    fn integer_compare_semantics() {
        let m = integer_compare_module();
        assert_eq!(
            secbranch_ir::interp::run(&m, "integer_compare", &[41, 41])
                .unwrap()
                .return_value,
            Some(1)
        );
        assert_eq!(
            secbranch_ir::interp::run(&m, "integer_compare", &[41, 42])
                .unwrap()
                .return_value,
            Some(0)
        );
    }

    #[test]
    fn memcmp_detects_any_single_byte_difference() {
        let m = memcmp_module(32);
        let mut interp = Interpreter::new(&m, InterpOptions::default());
        assert_eq!(
            interp.call("memcmp_bench", &[]).unwrap().return_value,
            Some(1)
        );

        for position in [0u32, 1, 15, 31] {
            let mut interp = Interpreter::new(&m, InterpOptions::default());
            let b_addr = interp.global_address("memcmp_b").unwrap() + position;
            let original = interp.read_memory(b_addr, 1)[0];
            interp.write_memory(b_addr, &[original ^ 0x40]);
            assert_eq!(
                interp.call("memcmp_bench", &[]).unwrap().return_value,
                Some(0),
                "difference at byte {position}"
            );
        }
    }

    #[test]
    fn password_check_grants_and_denies() {
        let m = password_check_module(12);
        let mut interp = Interpreter::new(&m, InterpOptions::default());
        assert_eq!(
            interp.call("password_check", &[]).unwrap().return_value,
            Some(GRANT)
        );
        let addr = interp.global_address("password_entered").unwrap();
        interp.write_memory(addr, b"X");
        assert_eq!(
            interp.call("password_check", &[]).unwrap().return_value,
            Some(DENY)
        );
    }

    #[test]
    fn bootloader_accepts_authentic_and_rejects_tampered_images() {
        let image = BootImage::generate(512, 42);
        let m = bootloader_module(&image);
        let mut interp = Interpreter::new(&m, InterpOptions::default());
        assert_eq!(
            interp.call("bootloader", &[]).unwrap().return_value,
            Some(BOOT_OK)
        );

        // Flip one bit of the firmware image: the boot must be rejected.
        let mut interp = Interpreter::new(&m, InterpOptions::default());
        let addr = interp.global_address("boot_image").unwrap() + 100;
        let original = interp.read_memory(addr, 1)[0];
        interp.write_memory(addr, &[original ^ 1]);
        assert_eq!(
            interp.call("bootloader", &[]).unwrap().return_value,
            Some(BOOT_FAIL)
        );
    }

    #[test]
    fn host_crc32_matches_the_standard_check_value() {
        // The canonical IEEE CRC-32 test vector: if this drifts, every
        // embedded `crc_expected` digest is wrong.
        assert_eq!(crc32_host(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_host(b""), 0);
    }

    #[test]
    fn crc32_check_accepts_the_message_and_rejects_tampering() {
        let m = crc32_table_module(24);
        let mut interp = Interpreter::new(&m, InterpOptions::default());
        assert_eq!(
            interp.call("crc32_check", &[]).unwrap().return_value,
            Some(1)
        );

        for position in [0u32, 11, 23] {
            let mut interp = Interpreter::new(&m, InterpOptions::default());
            let addr = interp.global_address("crc_message").unwrap() + position;
            let original = interp.read_memory(addr, 1)[0];
            interp.write_memory(addr, &[original ^ 0x80]);
            assert_eq!(
                interp.call("crc32_check", &[]).unwrap().return_value,
                Some(0),
                "flip at byte {position}"
            );
        }

        // Tampering with the stored digest is also caught.
        let mut interp = Interpreter::new(&m, InterpOptions::default());
        let addr = interp.global_address("crc_expected").unwrap();
        let original = interp.read_memory(addr, 1)[0];
        interp.write_memory(addr, &[original ^ 1]);
        assert_eq!(
            interp.call("crc32_check", &[]).unwrap().return_value,
            Some(0)
        );
    }

    #[test]
    fn pin_retry_counts_failures_and_locks_out() {
        let m = pin_retry_module(4, 3);
        let mut interp = Interpreter::new(&m, InterpOptions::default());
        // Correct PIN: granted, counter stays reset.
        assert_eq!(
            interp.call("pin_check", &[]).unwrap().return_value,
            Some(GRANT)
        );

        // Wrong PIN: denied max_retries times, then locked out — even with
        // the correct PIN entered afterwards (the counter persists in guest
        // memory across calls).
        let entered = interp.global_address("pin_entered").unwrap();
        let good = interp.read_memory(entered, 1)[0];
        interp.write_memory(entered, &[good ^ 0xFF]);
        for attempt in 0..3 {
            assert_eq!(
                interp.call("pin_check", &[]).unwrap().return_value,
                Some(DENY),
                "attempt {attempt}"
            );
        }
        assert_eq!(
            interp.call("pin_check", &[]).unwrap().return_value,
            Some(PIN_LOCKED)
        );
        interp.write_memory(entered, &[good]);
        assert_eq!(
            interp.call("pin_check", &[]).unwrap().return_value,
            Some(PIN_LOCKED),
            "lockout is sticky"
        );
    }

    #[test]
    fn pin_retry_grant_resets_the_counter() {
        let m = pin_retry_module(4, 3);
        let mut interp = Interpreter::new(&m, InterpOptions::default());
        let entered = interp.global_address("pin_entered").unwrap();
        let attempts = interp.global_address("pin_attempts").unwrap();
        let good = interp.read_memory(entered, 1)[0];

        // Two failures, then a success: the counter must return to zero.
        interp.write_memory(entered, &[good ^ 1]);
        interp.call("pin_check", &[]).unwrap();
        interp.call("pin_check", &[]).unwrap();
        assert_eq!(interp.read_memory(attempts, 1)[0], 2);
        interp.write_memory(entered, &[good]);
        assert_eq!(
            interp.call("pin_check", &[]).unwrap().return_value,
            Some(GRANT)
        );
        assert_eq!(interp.read_memory(attempts, 1)[0], 0, "grant resets");
    }

    #[test]
    fn boot_image_generation_is_deterministic() {
        let a = BootImage::generate(256, 7);
        let b = BootImage::generate(256, 7);
        let c = BootImage::generate(256, 8);
        assert_eq!(a, b);
        assert_ne!(a.expected_digest, c.expected_digest);
        assert_eq!(a.padded.len() % 64, 0);
        assert_eq!(a.block_count() as usize, a.padded.len() / 64);
    }
}
