//! SHA-256: a host-side reference implementation (padding, digest) and a
//! guest-side compression function expressed in the secbranch IR.
//!
//! The guest function [`add_sha256_blocks`] processes whole 64-byte blocks;
//! padding is applied on the host with [`pad`] when the firmware image is
//! embedded into the module (the bootloader hashes a pre-padded image, which
//! keeps the guest code focused on the computation the evaluation measures).

use secbranch_ir::builder::FunctionBuilder;
use secbranch_ir::{BinOp, LocalId, Module, Operand, Predicate};

/// SHA-256 round constants.
pub const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 initial hash state.
pub const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Applies SHA-256 padding, returning a message whose length is a multiple of
/// 64 bytes.
#[must_use]
pub fn pad(message: &[u8]) -> Vec<u8> {
    let mut out = message.to_vec();
    let bit_len = (message.len() as u64) * 8;
    out.push(0x80);
    while out.len() % 64 != 56 {
        out.push(0);
    }
    out.extend_from_slice(&bit_len.to_be_bytes());
    out
}

/// Host-side reference digest (used to derive expected digests and to
/// cross-check the guest implementation).
#[must_use]
pub fn digest(message: &[u8]) -> [u8; 32] {
    let padded = pad(message);
    let mut h = H0;
    for block in padded.chunks_exact(64) {
        compress_reference(&mut h, block);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

fn compress_reference(h: &mut [u32; 8], block: &[u8]) {
    let mut w = [0u32; 64];
    for t in 0..16 {
        w[t] = u32::from_be_bytes(block[t * 4..t * 4 + 4].try_into().expect("4 bytes"));
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    for t in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = hh
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
    h[5] = h[5].wrapping_add(f);
    h[6] = h[6].wrapping_add(g);
    h[7] = h[7].wrapping_add(hh);
}

/// Name of the round-constant table global added by [`add_sha256_blocks`].
pub const K_GLOBAL: &str = "sha256_k";

/// Adds the guest-side `sha256_blocks(msg_ptr, num_blocks, out_ptr)` function
/// (plus its round-constant global) to the module. The function processes
/// `num_blocks` pre-padded 64-byte blocks and writes the 32-byte big-endian
/// digest to `out_ptr`.
pub fn add_sha256_blocks(module: &mut Module) {
    if module.function("sha256_blocks").is_some() {
        return;
    }
    let k_bytes: Vec<u8> = K.iter().flat_map(|w| w.to_le_bytes()).collect();
    module.add_global(K_GLOBAL, k_bytes, false);

    let mut b = FunctionBuilder::new("sha256_blocks", 3);
    let (msg_ptr, num_blocks, out_ptr) = (b.param(0), b.param(1), b.param(2));

    // State and schedule live in stack slots.
    let state: Vec<LocalId> = (0..8).map(|i| b.local(format!("h{i}"), 4)).collect();
    let vars: Vec<LocalId> = ["a", "b", "c", "d", "e", "f", "g", "h"]
        .iter()
        .map(|n| b.local(*n, 4))
        .collect();
    let w = b.local("w", 64 * 4);
    let blk = b.local("blk", 4);
    let t = b.local("t", 4);
    let t1 = b.local("t1", 4);
    let t2 = b.local("t2", 4);

    for (i, h) in H0.iter().enumerate() {
        b.store_local(state[i], *h);
    }
    b.store_local(blk, 0u32);

    // Helper closures over the builder ----------------------------------
    fn rotr(b: &mut FunctionBuilder, x: Operand, n: u32) -> Operand {
        let right = b.bin(BinOp::LShr, x, n);
        let left = b.bin(BinOp::Shl, x, 32 - n);
        b.bin(BinOp::Or, right, left)
    }
    fn w_addr(b: &mut FunctionBuilder, w: LocalId, index: Operand) -> Operand {
        let base = b.local_addr(w);
        let off = b.bin(BinOp::Mul, index, 4u32);
        b.bin(BinOp::Add, base, off)
    }

    // Outer loop over blocks.
    let blk_header = b.create_block("blk.header");
    let blk_body = b.create_block("blk.body");
    let done = b.create_block("done");
    b.jump(blk_header);
    b.switch_to(blk_header);
    let blk_v = b.load_local(blk);
    let more = b.cmp(Predicate::Ult, blk_v, num_blocks);
    b.branch(more, blk_body, done);

    // Block body: load the message schedule (big-endian words).
    b.switch_to(blk_body);
    let blk_v = b.load_local(blk);
    let block_off = b.bin(BinOp::Mul, blk_v, 64u32);
    let block_base = b.bin(BinOp::Add, msg_ptr, block_off);
    b.store_local(t, 0u32);
    let ld_header = b.create_block("w.load.header");
    let ld_body = b.create_block("w.load.body");
    let ext_header = b.create_block("w.ext.header");
    b.jump(ld_header);
    b.switch_to(ld_header);
    let tv = b.load_local(t);
    let more = b.cmp(Predicate::Ult, tv, 16u32);
    b.branch(more, ld_body, ext_header);
    b.switch_to(ld_body);
    let tv = b.load_local(t);
    let byte_off = b.bin(BinOp::Mul, tv, 4u32);
    let p0 = b.bin(BinOp::Add, block_base, byte_off);
    let b0 = b.load_byte(p0);
    let p1 = b.bin(BinOp::Add, p0, 1u32);
    let b1 = b.load_byte(p1);
    let p2 = b.bin(BinOp::Add, p0, 2u32);
    let b2 = b.load_byte(p2);
    let p3 = b.bin(BinOp::Add, p0, 3u32);
    let b3 = b.load_byte(p3);
    let hi = b.bin(BinOp::Shl, b0, 24u32);
    let mid = b.bin(BinOp::Shl, b1, 16u32);
    let lo = b.bin(BinOp::Shl, b2, 8u32);
    let acc = b.bin(BinOp::Or, hi, mid);
    let acc = b.bin(BinOp::Or, acc, lo);
    let word = b.bin(BinOp::Or, acc, b3);
    let dest = w_addr(&mut b, w, tv);
    b.store(dest, word);
    let tn = b.bin(BinOp::Add, tv, 1u32);
    b.store_local(t, tn);
    b.jump(ld_header);

    // Extend the schedule: t = 16..64.
    b.switch_to(ext_header);
    b.store_local(t, 16u32);
    let ext_cond = b.create_block("w.ext.cond");
    let ext_body = b.create_block("w.ext.body");
    let round_init = b.create_block("round.init");
    b.jump(ext_cond);
    b.switch_to(ext_cond);
    let tv = b.load_local(t);
    let more = b.cmp(Predicate::Ult, tv, 64u32);
    b.branch(more, ext_body, round_init);
    b.switch_to(ext_body);
    let tv = b.load_local(t);
    let idx15 = b.bin(BinOp::Sub, tv, 15u32);
    let a15 = w_addr(&mut b, w, idx15);
    let w15 = b.load(a15);
    let idx2 = b.bin(BinOp::Sub, tv, 2u32);
    let a2 = w_addr(&mut b, w, idx2);
    let w2 = b.load(a2);
    let idx16 = b.bin(BinOp::Sub, tv, 16u32);
    let a16 = w_addr(&mut b, w, idx16);
    let w16 = b.load(a16);
    let idx7 = b.bin(BinOp::Sub, tv, 7u32);
    let a7 = w_addr(&mut b, w, idx7);
    let w7 = b.load(a7);
    let r7 = rotr(&mut b, w15, 7);
    let r18 = rotr(&mut b, w15, 18);
    let sh3 = b.bin(BinOp::LShr, w15, 3u32);
    let s0 = b.bin(BinOp::Xor, r7, r18);
    let s0 = b.bin(BinOp::Xor, s0, sh3);
    let r17 = rotr(&mut b, w2, 17);
    let r19 = rotr(&mut b, w2, 19);
    let sh10 = b.bin(BinOp::LShr, w2, 10u32);
    let s1 = b.bin(BinOp::Xor, r17, r19);
    let s1 = b.bin(BinOp::Xor, s1, sh10);
    let sum = b.bin(BinOp::Add, w16, s0);
    let sum = b.bin(BinOp::Add, sum, w7);
    let sum = b.bin(BinOp::Add, sum, s1);
    let dest = w_addr(&mut b, w, tv);
    b.store(dest, sum);
    let tn = b.bin(BinOp::Add, tv, 1u32);
    b.store_local(t, tn);
    b.jump(ext_cond);

    // Initialise the working variables from the state.
    b.switch_to(round_init);
    for i in 0..8 {
        let v = b.load_local(state[i]);
        b.store_local(vars[i], v);
    }
    b.store_local(t, 0u32);
    let rd_cond = b.create_block("round.cond");
    let rd_body = b.create_block("round.body");
    let blk_end = b.create_block("blk.end");
    b.jump(rd_cond);
    b.switch_to(rd_cond);
    let tv = b.load_local(t);
    let more = b.cmp(Predicate::Ult, tv, 64u32);
    b.branch(more, rd_body, blk_end);

    // One compression round.
    b.switch_to(rd_body);
    let tv = b.load_local(t);
    let (av, bv, cv, dv, ev, fv, gv, hv) = (
        b.load_local(vars[0]),
        b.load_local(vars[1]),
        b.load_local(vars[2]),
        b.load_local(vars[3]),
        b.load_local(vars[4]),
        b.load_local(vars[5]),
        b.load_local(vars[6]),
        b.load_local(vars[7]),
    );
    let r6 = rotr(&mut b, ev, 6);
    let r11 = rotr(&mut b, ev, 11);
    let r25 = rotr(&mut b, ev, 25);
    let s1 = b.bin(BinOp::Xor, r6, r11);
    let s1 = b.bin(BinOp::Xor, s1, r25);
    let ef = b.bin(BinOp::And, ev, fv);
    let note = b.bin(BinOp::Xor, ev, u32::MAX);
    let neg = b.bin(BinOp::And, note, gv);
    let ch = b.bin(BinOp::Xor, ef, neg);
    let k_base = b.global_addr(K_GLOBAL);
    let k_off = b.bin(BinOp::Mul, tv, 4u32);
    let k_addr = b.bin(BinOp::Add, k_base, k_off);
    let kt = b.load(k_addr);
    let wt_addr = w_addr(&mut b, w, tv);
    let wt = b.load(wt_addr);
    let t1v = b.bin(BinOp::Add, hv, s1);
    let t1v = b.bin(BinOp::Add, t1v, ch);
    let t1v = b.bin(BinOp::Add, t1v, kt);
    let t1v = b.bin(BinOp::Add, t1v, wt);
    b.store_local(t1, t1v);
    let r2 = rotr(&mut b, av, 2);
    let r13 = rotr(&mut b, av, 13);
    let r22 = rotr(&mut b, av, 22);
    let s0 = b.bin(BinOp::Xor, r2, r13);
    let s0 = b.bin(BinOp::Xor, s0, r22);
    let ab = b.bin(BinOp::And, av, bv);
    let ac = b.bin(BinOp::And, av, cv);
    let bc = b.bin(BinOp::And, bv, cv);
    let maj = b.bin(BinOp::Xor, ab, ac);
    let maj = b.bin(BinOp::Xor, maj, bc);
    let t2v = b.bin(BinOp::Add, s0, maj);
    b.store_local(t2, t2v);
    // Rotate the working variables.
    b.store_local(vars[7], gv);
    b.store_local(vars[6], fv);
    b.store_local(vars[5], ev);
    let t1v = b.load_local(t1);
    let e_new = b.bin(BinOp::Add, dv, t1v);
    b.store_local(vars[4], e_new);
    b.store_local(vars[3], cv);
    b.store_local(vars[2], bv);
    b.store_local(vars[1], av);
    let t2v = b.load_local(t2);
    let a_new = b.bin(BinOp::Add, t1v, t2v);
    b.store_local(vars[0], a_new);
    let tn = b.bin(BinOp::Add, tv, 1u32);
    b.store_local(t, tn);
    b.jump(rd_cond);

    // Fold the working variables back into the state and advance the block.
    b.switch_to(blk_end);
    for i in 0..8 {
        let hv = b.load_local(state[i]);
        let vv = b.load_local(vars[i]);
        let sum = b.bin(BinOp::Add, hv, vv);
        b.store_local(state[i], sum);
    }
    let blk_v = b.load_local(blk);
    let bn = b.bin(BinOp::Add, blk_v, 1u32);
    b.store_local(blk, bn);
    b.jump(blk_header);

    // Write the big-endian digest.
    b.switch_to(done);
    for i in 0..8u32 {
        let hv = b.load_local(state[i as usize]);
        for (byte, shift) in [(0u32, 24u32), (1, 16), (2, 8), (3, 0)] {
            let v = b.bin(BinOp::LShr, hv, shift);
            let v = b.bin(BinOp::And, v, 0xFFu32);
            let addr = b.bin(BinOp::Add, out_ptr, i * 4 + byte);
            b.store_byte(addr, v);
        }
    }
    b.ret(None);

    module.add_function(b.finish());
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_ir::interp::{InterpOptions, Interpreter};
    use secbranch_ir::verify;

    #[test]
    fn reference_digest_matches_known_vectors() {
        // FIPS 180-2 test vectors.
        let abc = digest(b"abc");
        assert_eq!(
            hex(&abc),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        let empty = digest(b"");
        assert_eq!(
            hex(&empty),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        let two_block = digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        assert_eq!(
            hex(&two_block),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn padding_length_and_terminator() {
        for len in [0usize, 1, 55, 56, 63, 64, 100] {
            let msg = vec![0xAB; len];
            let padded = pad(&msg);
            assert_eq!(padded.len() % 64, 0, "len {len}");
            assert_eq!(padded[len], 0x80);
        }
    }

    #[test]
    fn guest_sha256_matches_the_reference() {
        let mut module = Module::new();
        let message = b"The quick brown fox jumps over the lazy dog".to_vec();
        let padded = pad(&message);
        module.add_global("msg", padded.clone(), false);
        module.add_global("digest_out", vec![0; 32], true);
        add_sha256_blocks(&mut module);

        // Driver: sha256_blocks(@msg, blocks, @digest_out)
        let mut b = FunctionBuilder::new("driver", 0);
        let msg = b.global_addr("msg");
        let out = b.global_addr("digest_out");
        let _ = b.call(
            "sha256_blocks",
            &[msg, Operand::Const((padded.len() / 64) as u32), out],
        );
        b.ret(None);
        module.add_function(b.finish());
        verify::verify_module(&module).expect("valid");

        let mut interp = Interpreter::new(&module, InterpOptions::default());
        interp.call("driver", &[]).expect("runs");
        let out_addr = interp.global_address("digest_out").expect("present");
        let guest = interp.read_memory(out_addr, 32).to_vec();
        assert_eq!(guest, digest(&message).to_vec());
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }
}
