//! Guest workloads for the secbranch evaluation, expressed against the
//! secbranch IR builder.
//!
//! These are the programs the paper's evaluation (Section V) runs on the
//! ARMv7-M simulator:
//!
//! * [`integer_compare_module`] — the `integer compare` micro-benchmark: a
//!   single protected integer equality comparison.
//! * [`memcmp_module`] — the `memcmp` micro-benchmark: a secure byte-wise
//!   memory comparison over `len` elements (the paper uses 128) whose loop
//!   branch and final decision are protected.
//! * [`password_check_module`] — a small application scenario built on the
//!   secure memcmp (grant/deny decision).
//! * [`bootloader_module`] — the macro-benchmark: a secure bootloader that
//!   hashes a firmware image with SHA-256 ([`sha256`]) and only "boots" the
//!   image when the digest matches the expected value. The paper verifies an
//!   ECDSA signature; this reproduction substitutes digest verification so
//!   that the crypto still dominates code size and runtime while the
//!   security-critical comparison and branches are identical in structure
//!   (see `DESIGN.md`).
//!
//! All security-critical functions carry the `protect_branches` attribute so
//! the AN Coder / duplication passes pick them up; the SHA-256 compression
//! code is deliberately left unannotated (it is the bulk workload, as in the
//! paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sha256;
mod workloads;

pub use workloads::{
    bootloader_module, crc32_table_module, integer_compare_module, memcmp_module,
    password_check_module, pin_retry_module, BootImage, BOOT_FAIL, BOOT_OK, DENY, GRANT,
    PIN_LOCKED,
};

#[cfg(test)]
mod crate_tests {
    use secbranch_ir::verify;

    #[test]
    fn all_workload_modules_verify() {
        verify::verify_module(&super::integer_compare_module()).expect("integer compare");
        verify::verify_module(&super::memcmp_module(16)).expect("memcmp");
        verify::verify_module(&super::password_check_module(8)).expect("password");
        let image = super::BootImage::generate(256, 1);
        verify::verify_module(&super::bootloader_module(&image)).expect("bootloader");
    }
}
