//! Offline stand-in for the slice of the `rand` 0.8 API that the secbranch
//! fault campaigns use.
//!
//! The build environment for this reproduction has no access to a crates
//! registry, so this workspace-local crate provides the handful of items the
//! fault-injection code imports — [`rngs::StdRng`], [`SeedableRng`], [`Rng`]
//! and integer `gen_range` — on top of a small, deterministic SplitMix64
//! generator. The statistical quality of SplitMix64 is more than sufficient
//! for the Monte-Carlo fault campaigns (which only need uniform-ish integers
//! and seed-reproducibility), and the same seed always produces the same
//! stream, which the determinism tests rely on.
//!
//! The sampled values differ from the real `rand` crate's `StdRng` (ChaCha12),
//! so absolute campaign numbers are not bit-compatible with runs that used the
//! registry crate — only the statistical shape and the seed-determinism
//! contract are preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed (the only constructor the fault
/// campaigns use).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly distributed integer from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled from (the `rand` 0.8 `SampleRange` shape).
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $ty;
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator of the shim: SplitMix64.
    ///
    /// Not the ChaCha12 generator of the real `rand` crate — see the crate
    /// docs for why that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood; public domain reference
            // implementation).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let i: usize = rng.gen_range(0..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(1234);
        let mut seen = [false; 16];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..16);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
