//! The [`Pipeline`] builder: every knob of the build pipeline made
//! first-class, replacing the hard-coded configuration of the historical
//! `build`/`measure` free functions.

use std::collections::{BTreeMap, BTreeSet};

use secbranch_codegen::{compile, CfiLevel, CodegenOptions, HardenRegion};
use secbranch_ir::{BlockId, Module};
use secbranch_passes::{
    add_duplication_passes, add_standard_protection_passes, AnCoder, AnCoderConfig,
    DeadCodeElimination, Duplication, DuplicationConfig, Pass, PassManager, SelectiveAnCoder,
};

use crate::{Artifact, BuildError, Measurement, ProtectionVariant, Provenance};

/// Simulator configuration of a pipeline: how much guest memory an execution
/// gets and how many dynamic instructions it may retire.
///
/// The defaults match the historical `measure` constants
/// ([`crate::DEFAULT_MEMORY_SIZE`], [`crate::DEFAULT_MAX_STEPS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Guest memory size in bytes (code is separate; this covers globals and
    /// stack).
    pub memory_size: u32,
    /// Dynamic instruction budget per execution.
    pub max_steps: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            memory_size: crate::DEFAULT_MEMORY_SIZE,
            max_steps: crate::DEFAULT_MAX_STEPS,
        }
    }
}

/// A reusable, fully configurable build pipeline: middle-end passes, CFI
/// level and simulator configuration.
///
/// A `Pipeline` is built once and then applied to any number of modules;
/// each [`Pipeline::build`] call produces an [`Artifact`] that can run many
/// executions and fault campaigns without recompiling. Construction is by
/// builder methods:
///
/// ```
/// use secbranch::{Pipeline, SimConfig};
/// use secbranch::passes::AnCoderConfig;
/// use secbranch::programs::password_check_module;
///
/// # fn main() -> Result<(), secbranch::BuildError> {
/// let pipeline = Pipeline::new()
///     .with_full_cfi()
///     .with_an_code(AnCoderConfig::default())
///     .with_sim(SimConfig { memory_size: 1 << 18, max_steps: 10_000_000 });
/// let artifact = pipeline.build(&password_check_module(8))?;
/// let first = artifact.run("password_check", &[])?;
/// let second = artifact.run("password_check", &[])?; // no recompilation
/// assert_eq!(first.return_value, second.return_value);
/// # Ok(())
/// # }
/// ```
///
/// The [`ProtectionVariant`] convenience constructor keeps the historical
/// call sites one-liners: `Pipeline::for_variant(variant)`.
#[derive(Debug)]
pub struct Pipeline {
    label: String,
    passes: PassManager,
    /// Stable description of each configured middle-end component, in order;
    /// the raw material of [`Pipeline::fingerprint`].
    components: Vec<String>,
    cfi: CfiLevel,
    /// When `Some`, CFI instrumentation is scoped to the named functions
    /// (see [`CodegenOptions::cfi_functions`]).
    cfi_functions: Option<BTreeSet<String>>,
    /// Regions receiving skip-hardening duplication in the back end.
    harden: BTreeMap<String, BTreeSet<HardenRegion>>,
    sim: SimConfig,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl Pipeline {
    /// An empty pipeline: no middle-end passes, no CFI instrumentation,
    /// default simulator configuration — the `unprotected` baseline.
    #[must_use]
    pub fn new() -> Self {
        Pipeline {
            label: "unprotected".to_string(),
            passes: PassManager::new(),
            components: Vec::new(),
            cfi: CfiLevel::None,
            cfi_functions: None,
            harden: BTreeMap::new(),
            sim: SimConfig::default(),
        }
    }

    /// The pipeline of a named protection variant (the Table III columns),
    /// with default pass configurations and simulator settings.
    #[must_use]
    pub fn for_variant(variant: ProtectionVariant) -> Self {
        let pipeline = match variant {
            ProtectionVariant::Unprotected => Pipeline::new(),
            ProtectionVariant::CfiOnly => Pipeline::new().with_full_cfi(),
            ProtectionVariant::Duplication(order) => Pipeline::new()
                .with_full_cfi()
                .with_duplication(DuplicationConfig {
                    order,
                    ..DuplicationConfig::default()
                }),
            ProtectionVariant::AnCode => Pipeline::new()
                .with_full_cfi()
                .with_an_code(AnCoderConfig::default()),
        };
        pipeline.with_label(variant.label())
    }

    /// Overrides the human-readable label (reported in [`Measurement`]s and
    /// [`crate::Report`] columns). Labels do not affect the fingerprint.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets the CFI instrumentation level of the back end.
    #[must_use]
    pub fn with_cfi(mut self, cfi: CfiLevel) -> Self {
        self.cfi = cfi;
        self
    }

    /// Shorthand for `with_cfi(CfiLevel::Full)`.
    #[must_use]
    pub fn with_full_cfi(self) -> Self {
        self.with_cfi(CfiLevel::Full)
    }

    /// Appends the paper's protection sequence (Loop Decoupler, Lower
    /// Select, Lower Switch, AN Coder, DCE) with the given AN-code
    /// configuration.
    #[must_use]
    pub fn with_an_code(mut self, config: AnCoderConfig) -> Self {
        add_standard_protection_passes(&mut self.passes, config);
        // The pass's own fingerprint is the single home of the config
        // identity string; duplicating its fields here would let the two
        // drift and silently conflate cache entries.
        self.components
            .push(format!("standard:{}", AnCoder::new(config).fingerprint()));
        self
    }

    /// Appends *selective* AN-code protection: only the conditional branches
    /// terminating the named `(function, block)` targets are rebuilt in the
    /// encoded domain (followed by dead-code elimination of the replaced
    /// plain comparisons). Unlike [`Pipeline::with_an_code`] this skips the
    /// lowering pre-passes, so IR block ids stay stable — the coordinates an
    /// advisor derived from the *source* CFG remain valid in the artifact.
    #[must_use]
    pub fn an_code_only(mut self, targets: BTreeMap<String, BTreeSet<BlockId>>) -> Self {
        let pass = SelectiveAnCoder::new(targets);
        self.components
            .push(format!("selective:{}", pass.fingerprint()));
        self.passes.add(pass);
        self.passes.add(DeadCodeElimination::new());
        self
    }

    /// Scopes CFI instrumentation (under [`CfiLevel::Full`]) to the named
    /// functions; also raises the CFI level to `Full`. The set must be
    /// closed over the call graph — GPSA state replacement couples caller
    /// and callee, so partially instrumented call chains would corrupt the
    /// running signature (see [`CodegenOptions::cfi_functions`]).
    #[must_use]
    pub fn cfi_only(mut self, functions: BTreeSet<String>) -> Self {
        self.cfi = CfiLevel::Full;
        self.cfi_functions = Some(functions);
        self
    }

    /// Requests skip-hardening of the given code regions: within each region
    /// the back end emits every idempotent instruction twice, masking any
    /// single instruction-skip fault on either copy (merged into previously
    /// requested regions).
    #[must_use]
    pub fn with_skip_hardening(
        mut self,
        regions: BTreeMap<String, BTreeSet<HardenRegion>>,
    ) -> Self {
        for (function, set) in regions {
            self.harden.entry(function).or_default().extend(set);
        }
        self
    }

    /// Appends the duplication-baseline sequence (Lower Select, Lower
    /// Switch, N-fold duplication) with the given configuration.
    #[must_use]
    pub fn with_duplication(mut self, config: DuplicationConfig) -> Self {
        add_duplication_passes(&mut self.passes, config);
        self.components.push(format!(
            "baseline:{}",
            Duplication::new(config).fingerprint()
        ));
        self
    }

    /// Appends a custom pass at the current position of the pass sequence.
    ///
    /// The pass's [`Pass::fingerprint`] (name plus configuration) becomes
    /// part of the pipeline fingerprint, so two pipelines that interleave
    /// different custom passes, the same pass at different positions, or
    /// differently-configured instances of one pass are cached separately by
    /// a [`crate::Session`] — provided the pass overrides
    /// [`Pass::fingerprint`] when it carries configuration (the default is
    /// the bare name).
    #[must_use]
    pub fn with_pass(mut self, pass: impl Pass + Send + Sync + 'static) -> Self {
        self.components
            .push(format!("custom:{}", pass.fingerprint()));
        self.passes.add(pass);
        self
    }

    /// Sets the simulator configuration of the pipeline's artifacts.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets only the guest memory size.
    #[must_use]
    pub fn with_memory_size(mut self, memory_size: u32) -> Self {
        self.sim.memory_size = memory_size;
        self
    }

    /// Sets only the dynamic instruction budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.sim.max_steps = max_steps;
        self
    }

    /// The pipeline's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The simulator configuration artifacts of this pipeline will use.
    #[must_use]
    pub fn sim(&self) -> SimConfig {
        self.sim
    }

    /// The CFI level the back end will emit.
    #[must_use]
    pub fn cfi(&self) -> CfiLevel {
        self.cfi
    }

    /// The names of the configured middle-end passes, in execution order.
    #[must_use]
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.pass_names()
    }

    /// A stable identity string covering everything that influences the
    /// produced artifact: the middle-end components with their full
    /// configuration, the CFI level and the simulator configuration.
    ///
    /// Two pipelines with equal fingerprints produce interchangeable
    /// artifacts for the same module; [`crate::Session`] uses the
    /// fingerprint (together with the module name) as its build-cache key.
    /// The label is deliberately *not* part of the fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut fp = format!(
            "cfi={:?};passes=[{}];mem={};steps={}",
            self.cfi,
            self.components.join(","),
            self.sim.memory_size,
            self.sim.max_steps,
        );
        // The selective-hardening knobs extend the fingerprint only when
        // set, so every pre-existing pipeline keeps its historical
        // fingerprint — and with it, its entries in persistent build caches.
        if let Some(functions) = &self.cfi_functions {
            fp.push_str(";cfi_fns=[");
            fp.push_str(&functions.iter().cloned().collect::<Vec<_>>().join(","));
            fp.push(']');
        }
        if !self.harden.is_empty() {
            fp.push_str(";harden=[");
            let mut first = true;
            for (function, regions) in &self.harden {
                if !first {
                    fp.push(',');
                }
                first = false;
                fp.push_str(function);
                fp.push(':');
                let rendered: Vec<String> = regions
                    .iter()
                    .map(|r| match r {
                        HardenRegion::Prologue => "pro".to_string(),
                        HardenRegion::Block(b) => format!("bb{}", b.0),
                    })
                    .collect();
                fp.push_str(&rendered.join("+"));
            }
            fp.push(']');
        }
        fp
    }

    /// Runs the middle-end passes on a copy of `module` and compiles the
    /// result into a reusable [`Artifact`].
    ///
    /// The artifact is stamped with an *artifact fingerprint* — the pipeline
    /// fingerprint qualified by a hash of the source module's content — that
    /// uniquely identifies the produced executable (code, data image and
    /// simulator configuration). The trace store keys reference traces on
    /// it; see [`Artifact::artifact_fingerprint`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if a pass or the back end fails.
    pub fn build(&self, module: &Module) -> Result<Artifact, BuildError> {
        let module_hash = format!("{:016x}", crate::module_content_hash(module));
        let pipeline_fingerprint = self.fingerprint();
        let provenance = Provenance {
            artifact_fingerprint: format!("{pipeline_fingerprint}|module={module_hash}"),
            module_hash,
            pipeline_fingerprint,
            passes: self.pass_names().iter().map(|p| (*p).to_string()).collect(),
        };
        let mut module = module.clone();
        self.passes.run(&mut module)?;
        let options = CodegenOptions {
            cfi: self.cfi,
            cfi_functions: self.cfi_functions.clone(),
            harden: self.harden.clone(),
        };
        let compiled = compile(&module, &options)?;
        Ok(Artifact::new(
            self.label.clone(),
            provenance,
            compiled,
            self.sim,
        ))
    }

    /// Convenience: build the module and measure one execution of
    /// `entry(args)` — the build-per-call shape of the historical `measure`
    /// free function. Prefer [`Pipeline::build`] plus [`Artifact::measure`]
    /// when running more than one execution.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if building or executing fails.
    pub fn measure(
        &self,
        module: &Module,
        entry: &str,
        args: &[u32],
    ) -> Result<Measurement, BuildError> {
        self.build(module)?.measure(entry, args)
    }
}
