//! The [`Artifact`]: one compilation, many executions and fault campaigns.

use std::sync::Arc;

use secbranch_armv7m::{ExecResult, Simulator};
use secbranch_campaign::{
    CampaignReport, CampaignRunner, CellKey, FaultModel, GridBackend, InstructionSkip,
    RegisterBitFlip, SharedModule, TraceKey, TraceStore,
};
use secbranch_codegen::CompiledModule;
use secbranch_fault::SweepReport;
use secbranch_store::GridStore;

use crate::{BuildError, Measurement, Provenance, SimConfig};

/// A compiled module plus the metadata needed to run and measure it.
///
/// Artifacts are produced by [`crate::Pipeline::build`] and own the
/// build-once/run-many contract of the facade: every [`Artifact::run`],
/// [`Artifact::measure`] or fault campaign starts from a fresh simulator
/// over the *same* compilation, so results are independent of call order
/// and nothing is ever recompiled.
///
/// Compilation is bit-deterministic, so an artifact is fully auditable:
/// [`Artifact::provenance`] records what produced it and
/// [`Artifact::disassemble`] renders a byte-stable annotated listing.
///
/// ```
/// use secbranch::{Pipeline, ProtectionVariant};
/// use secbranch::programs::integer_compare_module;
///
/// # fn main() -> Result<(), secbranch::BuildError> {
/// let module = integer_compare_module();
/// let pipeline = Pipeline::for_variant(ProtectionVariant::AnCode);
/// let artifact = pipeline.build(&module)?;
///
/// // One build, many executions.
/// assert_eq!(artifact.run("integer_compare", &[3, 3])?.return_value, 1);
/// assert_eq!(artifact.run("integer_compare", &[3, 4])?.return_value, 0);
///
/// // Rebuilding yields the identical artifact, bit for bit.
/// let again = pipeline.build(&module)?;
/// assert_eq!(artifact.artifact_fingerprint(), again.artifact_fingerprint());
/// assert_eq!(artifact.disassemble(), again.disassemble());
/// assert!(artifact.provenance().passes.contains(&"an-coder".to_string()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Artifact {
    pipeline_label: String,
    /// The single home of the artifact's identity strings; the fingerprint
    /// accessors read through it so label, audit record and trace-store key
    /// can never desynchronise.
    provenance: Provenance,
    compiled: CompiledModule,
    sim: SimConfig,
}

impl Artifact {
    pub(crate) fn new(
        pipeline_label: String,
        provenance: Provenance,
        compiled: CompiledModule,
        sim: SimConfig,
    ) -> Self {
        Artifact {
            pipeline_label,
            provenance,
            compiled,
            sim,
        }
    }

    /// The label of the pipeline that built this artifact.
    #[must_use]
    pub fn pipeline_label(&self) -> &str {
        &self.pipeline_label
    }

    /// The fingerprint of the pipeline that built this artifact.
    #[must_use]
    pub fn fingerprint(&self) -> &str {
        &self.provenance.pipeline_fingerprint
    }

    /// The fingerprint of this *artifact*: the pipeline fingerprint
    /// qualified by a hash of the source module's content, so two different
    /// modules built by one pipeline never share an identity. This is the
    /// discrimination the [`TraceStore`] key contract demands.
    #[must_use]
    pub fn artifact_fingerprint(&self) -> &str {
        &self.provenance.artifact_fingerprint
    }

    /// The trace-store key of this artifact's `entry(args)` reference
    /// execution.
    #[must_use]
    pub fn trace_key(&self, entry: &str, args: &[u32]) -> TraceKey {
        TraceKey::new(self.provenance.artifact_fingerprint.clone(), entry, args)
    }

    /// The provenance record of this artifact: source module hash, pipeline
    /// fingerprint, pass sequence and the combined artifact fingerprint.
    /// Because compilation is bit-deterministic, this record fully
    /// determines the artifact's bytes.
    #[must_use]
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// A stable, annotated disassembly of the compiled program: a
    /// provenance comment header (module hash, pipeline fingerprint, pass
    /// sequence, global data layout) followed by one line per instruction —
    /// index, byte offset, rendered instruction and the originating
    /// pipeline layer (`prologue`/`body`/`an-coder`/`cfi`/`cfi-edge`/
    /// `epilogue`), with function and edge-stub labels interleaved.
    ///
    /// The listing depends only on the artifact's *identity* (not on its
    /// label or on the session that built it): fingerprint-equal artifacts
    /// disassemble to identical bytes, in this process or any other, which
    /// is what makes listings usable as golden review fixtures.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = self.provenance.to_string();
        for (name, addr) in &self.compiled.global_addresses {
            let len = self
                .compiled
                .global_image
                .iter()
                .find(|(a, _)| a == addr)
                .map_or(0, |(_, data)| data.len());
            out.push_str(&format!("; global {name} @ {addr:#06x} ({len} bytes)\n"));
        }
        out.push('\n');
        out.push_str(&self.compiled.program.annotated_listing());
        out
    }

    /// The simulator configuration executions of this artifact use.
    #[must_use]
    pub fn sim(&self) -> SimConfig {
        self.sim
    }

    /// The underlying compiled module.
    #[must_use]
    pub fn compiled(&self) -> &CompiledModule {
        &self.compiled
    }

    /// Consumes the artifact and hands out the compiled module by move
    /// (used by the legacy `build` wrapper, which only wants the module).
    #[must_use]
    pub fn into_compiled(self) -> CompiledModule {
        self.compiled
    }

    /// Total code size in bytes.
    #[must_use]
    pub fn code_size_bytes(&self) -> u32 {
        self.compiled.code_size_bytes()
    }

    /// Code size of one function in bytes.
    #[must_use]
    pub fn function_size(&self, name: &str) -> Option<u32> {
        self.compiled.function_size(name)
    }

    /// The guest address a global was placed at.
    #[must_use]
    pub fn global_address(&self, name: &str) -> Option<u32> {
        self.compiled.global_address(name)
    }

    /// A fresh simulator over this artifact (globals initialised, nothing
    /// executed yet). Useful for campaigns that tamper with guest memory
    /// before running.
    #[must_use]
    pub fn simulator(&self) -> Simulator {
        self.compiled.simulator(self.sim.memory_size)
    }

    /// Runs `entry(args)` on a fresh simulator.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Simulation`] if the execution fails.
    pub fn run(&self, entry: &str, args: &[u32]) -> Result<ExecResult, BuildError> {
        let mut sim = self.simulator();
        Ok(sim.call(entry, args, self.sim.max_steps)?)
    }

    /// Runs `entry(args)` and reports the Table III quantities (code size,
    /// cycles, CFI statistics) under this artifact's pipeline label.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Simulation`] if the execution fails.
    pub fn measure(&self, entry: &str, args: &[u32]) -> Result<Measurement, BuildError> {
        let result = self.run(entry, args)?;
        Ok(Measurement {
            variant_label: self.pipeline_label.clone(),
            code_size_bytes: self.code_size_bytes(),
            entry_size_bytes: self.function_size(entry).unwrap_or(0),
            result,
        })
    }

    /// Runs one fault model's campaign against `entry(args)` on this
    /// artifact, using all available parallelism.
    ///
    /// Each injection executes on a fresh simulator over the `Arc`-shared
    /// compilation; the report carries aggregate counters, per-location
    /// attribution, a text heatmap and deterministic JSON.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Simulation`] if the fault-free reference run
    /// fails — checked before any worker thread is spawned; individual
    /// faulted runs are classified, not propagated.
    pub fn campaign(
        &self,
        entry: &str,
        args: &[u32],
        model: &dyn FaultModel,
    ) -> Result<CampaignReport, BuildError> {
        self.campaign_with(&CampaignRunner::new(), entry, args, model)
    }

    /// Like [`Artifact::campaign`], with an explicitly configured runner
    /// (e.g. a fixed thread count for determinism tests).
    ///
    /// Routed through a throwaway [`TraceStore`]: a campaign always resolves
    /// its reference execution via the store interface, whether or not the
    /// caller keeps a store around to share recordings across campaigns
    /// (for that, use [`Artifact::campaign_with_store`]). The throwaway
    /// store records without resume checkpoints — the sequential runner
    /// never fast-forwards, so snapshots would be pure overhead.
    ///
    /// # Errors
    ///
    /// See [`Artifact::campaign`].
    pub fn campaign_with(
        &self,
        runner: &CampaignRunner,
        entry: &str,
        args: &[u32],
        model: &dyn FaultModel,
    ) -> Result<CampaignReport, BuildError> {
        self.campaign_with_store(
            runner,
            &TraceStore::without_checkpoints(),
            entry,
            args,
            model,
            None,
        )
    }

    /// Like [`Artifact::campaign_with`], resolving the reference execution
    /// through a caller-owned [`TraceStore`]: N campaigns on one artifact
    /// (different fault models, repeated runs) record the reference trace
    /// once. Keys are derived via [`Artifact::trace_key`], so a store can
    /// safely serve many artifacts at once.
    ///
    /// With `grid: Some(store)`, the campaign additionally persists: the
    /// [`GridStore`] is attached behind `store` (traces warm-start from
    /// disk and flush back), and the finished report itself is served from
    /// — and written to — the grid's cell cache keyed by
    /// `(artifact fingerprint, model fingerprint, entry, args)`. A warm
    /// cell returns without a single simulated instruction, byte-identical
    /// to a fresh computation.
    ///
    /// # Errors
    ///
    /// See [`Artifact::campaign`].
    pub fn campaign_with_store(
        &self,
        runner: &CampaignRunner,
        store: &TraceStore,
        entry: &str,
        args: &[u32],
        model: &dyn FaultModel,
        grid: Option<&Arc<GridStore>>,
    ) -> Result<CampaignReport, BuildError> {
        let cell_key = grid.map(|_| {
            CellKey::new(
                self.artifact_fingerprint(),
                model.fingerprint(),
                entry,
                args,
            )
        });
        if let (Some(grid), Some(key)) = (grid, &cell_key) {
            if let Some(report) = grid.get_cell(key) {
                return Ok(report);
            }
            store.attach_backend(Arc::clone(grid) as Arc<dyn GridBackend>);
        }
        let source = SharedModule {
            compiled: &self.compiled,
            memory_size: self.sim.memory_size,
        };
        let recorded = store
            .reference(
                &self.trace_key(entry, args),
                &source,
                entry,
                args,
                self.sim.max_steps,
            )
            .map_err(BuildError::Simulation)?;
        let report =
            runner.run_recorded(&source, entry, args, self.sim.max_steps, model, &recorded);
        if let (Some(grid), Some(key)) = (grid, &cell_key) {
            grid.put_cell(key, &report);
        }
        Ok(report)
    }

    /// Runs the exhaustive single-instruction-skip sweep of the fault
    /// analysis on this artifact: every dynamic instruction of the reference
    /// execution of `entry(args)` is skipped once.
    ///
    /// Routed through the campaign engine ([`Artifact::campaign`] with
    /// [`InstructionSkip`]): a failing reference returns its error without a
    /// single injection or worker spawned.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Simulation`] if the fault-free reference run
    /// fails (individual faulted runs are classified, not propagated).
    pub fn skip_sweep(&self, entry: &str, args: &[u32]) -> Result<SweepReport, BuildError> {
        Ok(SweepReport::from(&self.campaign(
            entry,
            args,
            &InstructionSkip,
        )?))
    }

    /// Runs a Monte-Carlo register-bit-flip campaign with `trials`
    /// injections and a deterministic `seed` on this artifact.
    ///
    /// Routed through the campaign engine ([`Artifact::campaign`] with
    /// [`RegisterBitFlip`]); a given seed reproduces the historical numbers.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Simulation`] if the fault-free reference run
    /// fails.
    pub fn register_flip_campaign(
        &self,
        entry: &str,
        args: &[u32],
        seed: u64,
        trials: u64,
    ) -> Result<SweepReport, BuildError> {
        Ok(SweepReport::from(&self.campaign(
            entry,
            args,
            &RegisterBitFlip { trials, seed },
        )?))
    }
}
