//! The [`Artifact`]: one compilation, many executions and fault campaigns.

use secbranch_armv7m::{ExecResult, Simulator};
use secbranch_campaign::{
    CampaignReport, CampaignRunner, FaultModel, InstructionSkip, RegisterBitFlip, SharedModule,
    TraceKey, TraceStore,
};
use secbranch_codegen::CompiledModule;
use secbranch_fault::SweepReport;

use crate::{BuildError, Measurement, SimConfig};

/// A compiled module plus the metadata needed to run and measure it.
///
/// Artifacts are produced by [`crate::Pipeline::build`] and own the
/// build-once/run-many contract of the facade: every [`Artifact::run`],
/// [`Artifact::measure`] or fault campaign starts from a fresh simulator
/// over the *same* compilation, so results are independent of call order
/// and nothing is ever recompiled.
#[derive(Debug, Clone)]
pub struct Artifact {
    pipeline_label: String,
    fingerprint: String,
    artifact_fingerprint: String,
    compiled: CompiledModule,
    sim: SimConfig,
}

impl Artifact {
    pub(crate) fn new(
        pipeline_label: String,
        fingerprint: String,
        artifact_fingerprint: String,
        compiled: CompiledModule,
        sim: SimConfig,
    ) -> Self {
        Artifact {
            pipeline_label,
            fingerprint,
            artifact_fingerprint,
            compiled,
            sim,
        }
    }

    /// The label of the pipeline that built this artifact.
    #[must_use]
    pub fn pipeline_label(&self) -> &str {
        &self.pipeline_label
    }

    /// The fingerprint of the pipeline that built this artifact.
    #[must_use]
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The fingerprint of this *artifact*: the pipeline fingerprint
    /// qualified by a hash of the source module's content, so two different
    /// modules built by one pipeline never share an identity. This is the
    /// discrimination the [`TraceStore`] key contract demands.
    #[must_use]
    pub fn artifact_fingerprint(&self) -> &str {
        &self.artifact_fingerprint
    }

    /// The trace-store key of this artifact's `entry(args)` reference
    /// execution.
    #[must_use]
    pub fn trace_key(&self, entry: &str, args: &[u32]) -> TraceKey {
        TraceKey::new(self.artifact_fingerprint.clone(), entry, args)
    }

    /// The simulator configuration executions of this artifact use.
    #[must_use]
    pub fn sim(&self) -> SimConfig {
        self.sim
    }

    /// The underlying compiled module.
    #[must_use]
    pub fn compiled(&self) -> &CompiledModule {
        &self.compiled
    }

    /// Consumes the artifact and hands out the compiled module by move
    /// (used by the legacy `build` wrapper, which only wants the module).
    #[must_use]
    pub fn into_compiled(self) -> CompiledModule {
        self.compiled
    }

    /// Total code size in bytes.
    #[must_use]
    pub fn code_size_bytes(&self) -> u32 {
        self.compiled.code_size_bytes()
    }

    /// Code size of one function in bytes.
    #[must_use]
    pub fn function_size(&self, name: &str) -> Option<u32> {
        self.compiled.function_size(name)
    }

    /// The guest address a global was placed at.
    #[must_use]
    pub fn global_address(&self, name: &str) -> Option<u32> {
        self.compiled.global_address(name)
    }

    /// A fresh simulator over this artifact (globals initialised, nothing
    /// executed yet). Useful for campaigns that tamper with guest memory
    /// before running.
    #[must_use]
    pub fn simulator(&self) -> Simulator {
        self.compiled.simulator(self.sim.memory_size)
    }

    /// Runs `entry(args)` on a fresh simulator.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Simulation`] if the execution fails.
    pub fn run(&self, entry: &str, args: &[u32]) -> Result<ExecResult, BuildError> {
        let mut sim = self.simulator();
        Ok(sim.call(entry, args, self.sim.max_steps)?)
    }

    /// Runs `entry(args)` and reports the Table III quantities (code size,
    /// cycles, CFI statistics) under this artifact's pipeline label.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Simulation`] if the execution fails.
    pub fn measure(&self, entry: &str, args: &[u32]) -> Result<Measurement, BuildError> {
        let result = self.run(entry, args)?;
        Ok(Measurement {
            variant_label: self.pipeline_label.clone(),
            code_size_bytes: self.code_size_bytes(),
            entry_size_bytes: self.function_size(entry).unwrap_or(0),
            result,
        })
    }

    /// Runs one fault model's campaign against `entry(args)` on this
    /// artifact, using all available parallelism.
    ///
    /// Each injection executes on a fresh simulator over the `Arc`-shared
    /// compilation; the report carries aggregate counters, per-location
    /// attribution, a text heatmap and deterministic JSON.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Simulation`] if the fault-free reference run
    /// fails — checked before any worker thread is spawned; individual
    /// faulted runs are classified, not propagated.
    pub fn campaign(
        &self,
        entry: &str,
        args: &[u32],
        model: &dyn FaultModel,
    ) -> Result<CampaignReport, BuildError> {
        self.campaign_with(&CampaignRunner::new(), entry, args, model)
    }

    /// Like [`Artifact::campaign`], with an explicitly configured runner
    /// (e.g. a fixed thread count for determinism tests).
    ///
    /// Routed through a throwaway [`TraceStore`]: a campaign always resolves
    /// its reference execution via the store interface, whether or not the
    /// caller keeps a store around to share recordings across campaigns
    /// (for that, use [`Artifact::campaign_with_store`]). The throwaway
    /// store records without resume checkpoints — the sequential runner
    /// never fast-forwards, so snapshots would be pure overhead.
    ///
    /// # Errors
    ///
    /// See [`Artifact::campaign`].
    pub fn campaign_with(
        &self,
        runner: &CampaignRunner,
        entry: &str,
        args: &[u32],
        model: &dyn FaultModel,
    ) -> Result<CampaignReport, BuildError> {
        self.campaign_with_store(
            runner,
            &TraceStore::without_checkpoints(),
            entry,
            args,
            model,
        )
    }

    /// Like [`Artifact::campaign_with`], resolving the reference execution
    /// through a caller-owned [`TraceStore`]: N campaigns on one artifact
    /// (different fault models, repeated runs) record the reference trace
    /// once. Keys are derived via [`Artifact::trace_key`], so a store can
    /// safely serve many artifacts at once.
    ///
    /// # Errors
    ///
    /// See [`Artifact::campaign`].
    pub fn campaign_with_store(
        &self,
        runner: &CampaignRunner,
        store: &TraceStore,
        entry: &str,
        args: &[u32],
        model: &dyn FaultModel,
    ) -> Result<CampaignReport, BuildError> {
        let source = SharedModule {
            compiled: &self.compiled,
            memory_size: self.sim.memory_size,
        };
        let recorded = store
            .reference(
                &self.trace_key(entry, args),
                &source,
                entry,
                args,
                self.sim.max_steps,
            )
            .map_err(BuildError::Simulation)?;
        Ok(runner.run_recorded(&source, entry, args, self.sim.max_steps, model, &recorded))
    }

    /// Runs the exhaustive single-instruction-skip sweep of the fault
    /// analysis on this artifact: every dynamic instruction of the reference
    /// execution of `entry(args)` is skipped once.
    ///
    /// Routed through the campaign engine ([`Artifact::campaign`] with
    /// [`InstructionSkip`]): a failing reference returns its error without a
    /// single injection or worker spawned.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Simulation`] if the fault-free reference run
    /// fails (individual faulted runs are classified, not propagated).
    pub fn skip_sweep(&self, entry: &str, args: &[u32]) -> Result<SweepReport, BuildError> {
        Ok(SweepReport::from(&self.campaign(
            entry,
            args,
            &InstructionSkip,
        )?))
    }

    /// Runs a Monte-Carlo register-bit-flip campaign with `trials`
    /// injections and a deterministic `seed` on this artifact.
    ///
    /// Routed through the campaign engine ([`Artifact::campaign`] with
    /// [`RegisterBitFlip`]); a given seed reproduces the historical numbers.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Simulation`] if the fault-free reference run
    /// fails.
    pub fn register_flip_campaign(
        &self,
        entry: &str,
        args: &[u32],
        seed: u64,
        trials: u64,
    ) -> Result<SweepReport, BuildError> {
        Ok(SweepReport::from(&self.campaign(
            entry,
            args,
            &RegisterBitFlip { trials, seed },
        )?))
    }
}
