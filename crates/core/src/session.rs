//! The [`Session`] matrix runner: workloads × pipelines with a build cache.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

use secbranch_campaign::{CampaignRunner, FaultModel};
use secbranch_ir::Module;

use crate::{
    Artifact, BuildError, Measurement, Pipeline, Report, ReportCell, SecurityCell, SecurityReport,
};

/// A named executable workload: an IR module plus the entry point and
/// arguments the evaluation calls.
///
/// The name labels the module in a [`Session`]'s build cache and reports;
/// the cache additionally keys on the module's printed content, so two
/// different modules accidentally sharing a name are still compiled (and
/// measured) separately.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The workload name (a Table III row).
    pub name: String,
    /// The IR module.
    pub module: Module,
    /// The entry function.
    pub entry: String,
    /// The call arguments.
    pub args: Vec<u32>,
}

impl Workload {
    /// Creates a named workload.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        module: Module,
        entry: impl Into<String>,
        args: &[u32],
    ) -> Self {
        Workload {
            name: name.into(),
            module,
            entry: entry.into(),
            args: args.to_vec(),
        }
    }
}

/// A measurement session with an internal build cache.
///
/// The cache is keyed by `(module name, module content hash, pipeline
/// fingerprint)`: within one session each module is compiled exactly once
/// per distinct pipeline configuration, no matter how many executions,
/// measurements or fault campaigns are run on it — and a stale artifact can
/// never be served for a *different* module that happens to share a name.
/// [`Session::run_matrix`] evaluates a full workloads × pipelines matrix in
/// one call and returns a structured [`Report`].
///
/// ```
/// use secbranch::{Pipeline, ProtectionVariant, Session, Workload};
/// use secbranch::programs::integer_compare_module;
///
/// # fn main() -> Result<(), secbranch::BuildError> {
/// let mut session = Session::new();
/// let workloads = [Workload::new(
///     "integer compare",
///     integer_compare_module(),
///     "integer_compare",
///     &[7, 7],
/// )];
/// let pipelines: Vec<_> = ProtectionVariant::TABLE_THREE
///     .iter()
///     .map(|v| Pipeline::for_variant(*v))
///     .collect();
/// let report = session.run_matrix(&workloads, &pipelines)?;
/// assert_eq!(report.cells.len(), 3);
/// assert_eq!(session.builds(), 3);
/// // Re-running the matrix hits the cache instead of recompiling.
/// session.run_matrix(&workloads, &pipelines)?;
/// assert_eq!(session.builds(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Session {
    artifacts: HashMap<(String, u64, String), Artifact>,
    builds: u64,
    cache_hits: u64,
}

/// A stable identity of the module's *content*, independent of the caller's
/// naming: a hash of the printed IR. Printing is linear in module size and
/// only paid per artifact request, which the build cache keeps rare.
fn module_content_hash(module: &Module) -> u64 {
    let mut hasher = DefaultHasher::new();
    secbranch_ir::printer::print_module(module).hash(&mut hasher);
    hasher.finish()
}

impl Session {
    /// Creates an empty session.
    #[must_use]
    pub fn new() -> Self {
        Session::default()
    }

    /// How many compilations this session has performed (cache misses).
    #[must_use]
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// How many artifact requests were served from the cache.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    fn cached_artifact(
        &mut self,
        module_name: &str,
        module: &Module,
        pipeline: &Pipeline,
    ) -> Result<&Artifact, BuildError> {
        let key = (
            module_name.to_string(),
            module_content_hash(module),
            pipeline.fingerprint(),
        );
        // `entry().or_insert_with` cannot propagate build errors, hence the
        // explicit two-step lookup.
        if !self.artifacts.contains_key(&key) {
            let artifact = pipeline.build(module)?;
            self.builds += 1;
            self.artifacts.insert(key.clone(), artifact);
        } else {
            self.cache_hits += 1;
        }
        Ok(&self.artifacts[&key])
    }

    /// The artifact of `module` under `pipeline`, compiled on first request
    /// and served from the cache afterwards.
    ///
    /// `module_name` labels the module in the cache key; the module's
    /// content is hashed alongside it, so a name reused for a different
    /// module triggers a fresh compilation rather than a stale artifact.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the pipeline fails on a cache miss.
    pub fn artifact(
        &mut self,
        module_name: &str,
        module: &Module,
        pipeline: &Pipeline,
    ) -> Result<Artifact, BuildError> {
        Ok(self.cached_artifact(module_name, module, pipeline)?.clone())
    }

    /// Measures one workload under one pipeline, reusing the cached artifact
    /// when available. The reported label is the pipeline's label even on a
    /// cache hit from a differently-labelled pipeline with the same
    /// fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if building or executing fails.
    pub fn measure(
        &mut self,
        workload: &Workload,
        pipeline: &Pipeline,
    ) -> Result<Measurement, BuildError> {
        let artifact = self.cached_artifact(&workload.name, &workload.module, pipeline)?;
        let mut measurement = artifact.measure(&workload.entry, &workload.args)?;
        measurement.variant_label = pipeline.label().to_string();
        Ok(measurement)
    }

    /// Runs the full workloads × pipelines matrix and returns the structured
    /// report. The first pipeline is the overhead baseline; every module is
    /// compiled exactly once per distinct pipeline fingerprint.
    ///
    /// Duplicate pipeline labels are disambiguated in the report with a
    /// ` (2)`, ` (3)`, ... suffix so [`Report::cell`] lookups stay
    /// unambiguous (the build cache still shares one compilation when the
    /// fingerprints match).
    ///
    /// # Errors
    ///
    /// Returns the first [`BuildError`] encountered; cells measured before
    /// the failure are discarded.
    pub fn run_matrix(
        &mut self,
        workloads: &[Workload],
        pipelines: &[Pipeline],
    ) -> Result<Report, BuildError> {
        let labels = disambiguated(pipelines.iter().map(Pipeline::label));
        // Workload names get the same treatment: duplicate names would make
        // the second workload's cells unreachable through `Report::cell`.
        let workload_names = disambiguated(workloads.iter().map(|w| w.name.as_str()));
        let mut cells = Vec::with_capacity(workloads.len() * pipelines.len());
        for (workload, workload_name) in workloads.iter().zip(&workload_names) {
            let mut baseline: Option<Measurement> = None;
            for (pipeline, label) in pipelines.iter().zip(&labels) {
                let mut measurement = self.measure(workload, pipeline)?;
                measurement.variant_label = label.clone();
                let (size_overhead, runtime_overhead) = match &baseline {
                    Some(base) => (
                        Some(measurement.size_overhead_percent(base)),
                        Some(measurement.runtime_overhead_percent(base)),
                    ),
                    None => (None, None),
                };
                if baseline.is_none() {
                    baseline = Some(measurement.clone());
                }
                cells.push(ReportCell {
                    workload: workload_name.clone(),
                    pipeline: label.clone(),
                    measurement,
                    size_overhead_percent: size_overhead,
                    runtime_overhead_percent: runtime_overhead,
                });
            }
        }
        Ok(Report {
            workloads: workload_names,
            pipelines: labels,
            cells,
        })
    }

    /// Runs the full workloads × pipelines × fault-models security matrix
    /// with a default (fully parallel) campaign runner. Builds are cached
    /// exactly as in [`Session::run_matrix`], so measuring performance and
    /// security of the same matrix compiles nothing twice.
    ///
    /// # Errors
    ///
    /// Returns the first [`BuildError`] encountered (a failing build or a
    /// failing fault-free reference run).
    pub fn security_matrix(
        &mut self,
        workloads: &[Workload],
        pipelines: &[Pipeline],
        models: &[&dyn FaultModel],
    ) -> Result<SecurityReport, BuildError> {
        self.security_matrix_with(&CampaignRunner::new(), workloads, pipelines, models)
    }

    /// Like [`Session::security_matrix`], with an explicitly configured
    /// campaign runner (e.g. a fixed thread count).
    ///
    /// # Errors
    ///
    /// See [`Session::security_matrix`].
    pub fn security_matrix_with(
        &mut self,
        runner: &CampaignRunner,
        workloads: &[Workload],
        pipelines: &[Pipeline],
        models: &[&dyn FaultModel],
    ) -> Result<SecurityReport, BuildError> {
        let labels = disambiguated(pipelines.iter().map(Pipeline::label));
        let workload_names = disambiguated(workloads.iter().map(|w| w.name.as_str()));
        let model_names: Vec<String> = models.iter().map(|m| m.name()).collect();
        let mut cells = Vec::with_capacity(workloads.len() * pipelines.len() * models.len());
        for (workload, workload_name) in workloads.iter().zip(&workload_names) {
            for (pipeline, label) in pipelines.iter().zip(&labels) {
                let artifact = self.cached_artifact(&workload.name, &workload.module, pipeline)?;
                for (model, model_name) in models.iter().zip(&model_names) {
                    let report =
                        artifact.campaign_with(runner, &workload.entry, &workload.args, *model)?;
                    cells.push(SecurityCell {
                        workload: workload_name.clone(),
                        pipeline: label.clone(),
                        model: model_name.clone(),
                        report,
                    });
                }
            }
        }
        Ok(SecurityReport {
            workloads: workload_names,
            pipelines: labels,
            models: model_names,
            cells,
        })
    }
}

/// The given labels with duplicates made unique by a ` (N)` suffix, so
/// label-keyed report lookups are unambiguous. The suffix counter skips
/// values that collide with labels the caller chose literally (e.g. a
/// pipeline already named `"x (2)"`).
fn disambiguated<'a>(labels: impl Iterator<Item = &'a str>) -> Vec<String> {
    let mut assigned: Vec<String> = labels.map(str::to_string).collect();
    let literal: HashSet<String> = assigned.iter().cloned().collect();
    let mut used: HashSet<String> = HashSet::new();
    for label in &mut assigned {
        if used.insert(label.clone()) {
            continue; // first holder of a label keeps it verbatim
        }
        let base = label.clone();
        let mut n = 2u32;
        loop {
            let candidate = format!("{base} ({n})");
            // Suffixes that some pipeline carries as its *literal* label are
            // reserved for that pipeline.
            if !literal.contains(&candidate) && used.insert(candidate.clone()) {
                *label = candidate;
                break;
            }
            n += 1;
        }
    }
    assigned
}
