//! The [`Session`] matrix runner: workloads × pipelines with a build cache,
//! and the security matrix on the global fault-space scheduler.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use secbranch_campaign::{
    CampaignRunner, FaultModel, GridBackend, MatrixExecutor, MatrixJob, SharedModule, TraceFetch,
    TraceStore,
};
use secbranch_ir::Module;
use secbranch_store::GridStore;

use crate::{
    Artifact, BuildError, MatrixStats, Measurement, Pipeline, Report, ReportCell, SecurityCell,
    SecurityReport,
};

/// A named executable workload: an IR module plus the entry point and
/// arguments the evaluation calls.
///
/// The name labels the module in a [`Session`]'s build cache and reports;
/// the cache additionally keys on the module's printed content, so two
/// different modules accidentally sharing a name are still compiled (and
/// measured) separately.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The workload name (a Table III row).
    pub name: String,
    /// The IR module.
    pub module: Module,
    /// The entry function.
    pub entry: String,
    /// The call arguments.
    pub args: Vec<u32>,
}

impl Workload {
    /// Creates a named workload.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        module: Module,
        entry: impl Into<String>,
        args: &[u32],
    ) -> Self {
        Workload {
            name: name.into(),
            module,
            entry: entry.into(),
            args: args.to_vec(),
        }
    }
}

/// A measurement session with an internal build cache.
///
/// The cache is keyed by `(module name, module content hash, pipeline
/// fingerprint)`: within one session each module is compiled exactly once
/// per distinct pipeline configuration, no matter how many executions,
/// measurements or fault campaigns are run on it — and a stale artifact can
/// never be served for a *different* module that happens to share a name.
/// [`Session::run_matrix`] evaluates a full workloads × pipelines matrix in
/// one call and returns a structured [`Report`].
///
/// ```
/// use secbranch::{Pipeline, ProtectionVariant, Session, Workload};
/// use secbranch::programs::integer_compare_module;
///
/// # fn main() -> Result<(), secbranch::BuildError> {
/// let mut session = Session::new();
/// let workloads = [Workload::new(
///     "integer compare",
///     integer_compare_module(),
///     "integer_compare",
///     &[7, 7],
/// )];
/// let pipelines: Vec<_> = ProtectionVariant::TABLE_THREE
///     .iter()
///     .map(|v| Pipeline::for_variant(*v))
///     .collect();
/// let report = session.run_matrix(&workloads, &pipelines)?;
/// assert_eq!(report.cells.len(), 3);
/// assert_eq!(session.builds(), 3);
/// // Re-running the matrix hits the cache instead of recompiling.
/// session.run_matrix(&workloads, &pipelines)?;
/// assert_eq!(session.builds(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Session {
    artifacts: HashMap<(String, u64, String), Artifact>,
    builds: u64,
    cache_hits: u64,
    traces: TraceStore,
}

impl Session {
    /// Creates an empty session.
    #[must_use]
    pub fn new() -> Self {
        Session::default()
    }

    /// How many compilations this session has performed (cache misses;
    /// alias: [`Session::cache_misses`]).
    #[must_use]
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// How many artifact requests missed the build cache and compiled. The
    /// same count as [`Session::builds`], named from the cache's point of
    /// view so callers can assert hit/miss pairs symmetrically.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.builds
    }

    /// How many artifact requests were served from the cache.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// The session's reference-trace store: security matrices and
    /// store-aware campaigns record each (artifact, entry, args) reference
    /// execution once per session, not once per fault model. The store's
    /// own counters are session-lifetime totals; per-run deltas live in
    /// [`SecurityReport::stats`].
    #[must_use]
    pub fn trace_store(&self) -> &TraceStore {
        &self.traces
    }

    /// Attaches a persistent [`GridStore`] behind the session's trace
    /// store: in-memory entries spill to disk, fresh recordings write
    /// through, misses consult the disk first, and the matrix executor
    /// serves whole cells from it. Equivalent to passing the store to every
    /// [`Session::security_matrix_with`] call.
    pub fn attach_grid(&mut self, grid: &Arc<GridStore>) {
        self.traces
            .attach_backend(Arc::clone(grid) as Arc<dyn GridBackend>);
    }

    /// Caps the bytes the session's trace store may retain in resume
    /// checkpoints (`None` lifts the cap); excess checkpoints are evicted
    /// least-recently-used first. Traces themselves always stay, so
    /// reports never change — only the fast-forward speedup degrades.
    /// Occupancy and evictions are reported in
    /// [`MatrixStats::store_checkpoint_bytes`] /
    /// [`MatrixStats::store_checkpoint_evictions`].
    pub fn set_trace_checkpoint_budget(&mut self, budget: Option<usize>) {
        self.traces.set_checkpoint_budget(budget);
    }

    fn cached_artifact(
        &mut self,
        module_name: &str,
        module: &Module,
        pipeline: &Pipeline,
    ) -> Result<&Artifact, BuildError> {
        let key = (
            module_name.to_string(),
            crate::module_content_hash(module),
            pipeline.fingerprint(),
        );
        // `entry().or_insert_with` cannot propagate build errors, hence the
        // explicit two-step lookup.
        if !self.artifacts.contains_key(&key) {
            let _span = secbranch_obs::span_with("build", || {
                format!("{module_name} [{}]", pipeline.label())
            });
            let artifact = pipeline.build(module)?;
            self.builds += 1;
            self.artifacts.insert(key.clone(), artifact);
        } else {
            self.cache_hits += 1;
        }
        Ok(&self.artifacts[&key])
    }

    /// The artifact of `module` under `pipeline`, compiled on first request
    /// and served from the cache afterwards.
    ///
    /// `module_name` labels the module in the cache key; the module's
    /// content is hashed alongside it, so a name reused for a different
    /// module triggers a fresh compilation rather than a stale artifact.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the pipeline fails on a cache miss.
    pub fn artifact(
        &mut self,
        module_name: &str,
        module: &Module,
        pipeline: &Pipeline,
    ) -> Result<Artifact, BuildError> {
        Ok(self.cached_artifact(module_name, module, pipeline)?.clone())
    }

    /// Measures one workload under one pipeline, reusing the cached artifact
    /// when available. The reported label is the pipeline's label even on a
    /// cache hit from a differently-labelled pipeline with the same
    /// fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if building or executing fails.
    pub fn measure(
        &mut self,
        workload: &Workload,
        pipeline: &Pipeline,
    ) -> Result<Measurement, BuildError> {
        let artifact = self.cached_artifact(&workload.name, &workload.module, pipeline)?;
        let mut measurement = artifact.measure(&workload.entry, &workload.args)?;
        measurement.variant_label = pipeline.label().to_string();
        Ok(measurement)
    }

    /// Runs the full workloads × pipelines matrix and returns the structured
    /// report. The first pipeline is the overhead baseline; every module is
    /// compiled exactly once per distinct pipeline fingerprint.
    ///
    /// Duplicate pipeline labels are disambiguated in the report with a
    /// ` (2)`, ` (3)`, ... suffix so [`Report::cell`] lookups stay
    /// unambiguous (the build cache still shares one compilation when the
    /// fingerprints match).
    ///
    /// # Errors
    ///
    /// Returns the first [`BuildError`] encountered; cells measured before
    /// the failure are discarded.
    pub fn run_matrix(
        &mut self,
        workloads: &[Workload],
        pipelines: &[Pipeline],
    ) -> Result<Report, BuildError> {
        let labels = disambiguated(pipelines.iter().map(Pipeline::label));
        // Workload names get the same treatment: duplicate names would make
        // the second workload's cells unreachable through `Report::cell`.
        let workload_names = disambiguated(workloads.iter().map(|w| w.name.as_str()));
        let mut cells = Vec::with_capacity(workloads.len() * pipelines.len());
        for (workload, workload_name) in workloads.iter().zip(&workload_names) {
            let mut baseline: Option<Measurement> = None;
            for (pipeline, label) in pipelines.iter().zip(&labels) {
                // Borrowed, not cloned: only the provenance record leaves
                // this scope, so the per-cell deep copy of the compiled
                // module is avoided on the reporting path.
                let artifact = self.cached_artifact(&workload.name, &workload.module, pipeline)?;
                let provenance = artifact.provenance().clone();
                let mut measurement = artifact.measure(&workload.entry, &workload.args)?;
                measurement.variant_label = label.clone();
                let (size_overhead, runtime_overhead) = match &baseline {
                    Some(base) => (
                        Some(measurement.size_overhead_percent(base)),
                        Some(measurement.runtime_overhead_percent(base)),
                    ),
                    None => (None, None),
                };
                if baseline.is_none() {
                    baseline = Some(measurement.clone());
                }
                cells.push(ReportCell {
                    workload: workload_name.clone(),
                    pipeline: label.clone(),
                    measurement,
                    size_overhead_percent: size_overhead,
                    runtime_overhead_percent: runtime_overhead,
                    provenance,
                });
            }
        }
        Ok(Report {
            workloads: workload_names,
            pipelines: labels,
            cells,
        })
    }

    /// Runs the full workloads × pipelines × fault-models security matrix
    /// on the global fault-space scheduler with all available parallelism.
    /// Builds are cached exactly as in [`Session::run_matrix`], so measuring
    /// performance and security of the same matrix compiles nothing twice.
    ///
    /// All artifacts are compiled (or fetched from the build cache) before
    /// the first campaign starts; every cell's fault space is then flattened
    /// into shards executed by one shared worker pool, with reference traces
    /// memoised in the session's [`TraceStore`] — N fault models attacking
    /// one artifact record its trace once. The returned report is
    /// byte-identical to the sequential per-cell path
    /// ([`Session::security_matrix_sequential_with`]) at any thread count;
    /// [`SecurityReport::stats`] carries this run's wall time, per-cell
    /// compute time and trace-cache counters.
    ///
    /// # Errors
    ///
    /// Returns the first [`BuildError`] encountered: a failing build (all
    /// builds are attempted before any campaign), then a failing fault-free
    /// reference run in matrix order.
    pub fn security_matrix(
        &mut self,
        workloads: &[Workload],
        pipelines: &[Pipeline],
        models: &[&dyn FaultModel],
    ) -> Result<SecurityReport, BuildError> {
        self.security_matrix_with(&MatrixExecutor::new(), workloads, pipelines, models, None)
    }

    /// Like [`Session::security_matrix`], with an explicitly configured
    /// executor (e.g. a fixed thread count or shard size) and an optional
    /// persistent [`GridStore`].
    ///
    /// With `grid: Some(store)`, the store is attached behind the session's
    /// trace store (see [`Session::attach_grid`]) before the run: reference
    /// traces warm-start from disk and flush back, and whole cells keyed by
    /// `(artifact fingerprint, model fingerprint, entry, args)` are served
    /// from — and written to — the store, so re-running an unchanged grid
    /// does zero simulation. The returned report is byte-identical whether
    /// the store is absent, cold or warm; only
    /// [`SecurityReport::stats`] reflects where the work went.
    ///
    /// # Errors
    ///
    /// See [`Session::security_matrix`].
    pub fn security_matrix_with(
        &mut self,
        executor: &MatrixExecutor,
        workloads: &[Workload],
        pipelines: &[Pipeline],
        models: &[&dyn FaultModel],
        grid: Option<&Arc<GridStore>>,
    ) -> Result<SecurityReport, BuildError> {
        if let Some(grid) = grid {
            self.attach_grid(grid);
        }
        let labels = disambiguated(pipelines.iter().map(Pipeline::label));
        let workload_names = disambiguated(workloads.iter().map(|w| w.name.as_str()));
        let model_names: Vec<String> = models.iter().map(|m| m.name()).collect();

        // Batched builds: every artifact is compiled (or served from the
        // cache) before any campaign starts. Artifacts are cheap clones —
        // the compilation is `Arc`-shared with the cache entry.
        let mut artifacts = Vec::with_capacity(workloads.len() * pipelines.len());
        for workload in workloads {
            for pipeline in pipelines {
                artifacts.push(
                    self.cached_artifact(&workload.name, &workload.module, pipeline)?
                        .clone(),
                );
            }
        }

        // One job per cell, in the sequential path's workload-major,
        // pipeline-then-model order (which is also the report's cell order).
        let sources: Vec<SharedModule<'_>> = artifacts
            .iter()
            .map(|artifact| SharedModule {
                compiled: artifact.compiled(),
                memory_size: artifact.sim().memory_size,
            })
            .collect();
        let mut jobs = Vec::with_capacity(artifacts.len() * models.len());
        for (workload_index, workload) in workloads.iter().enumerate() {
            for pipeline_index in 0..pipelines.len() {
                let artifact_index = workload_index * pipelines.len() + pipeline_index;
                let artifact = &artifacts[artifact_index];
                for model in models {
                    jobs.push(MatrixJob {
                        source: &sources[artifact_index],
                        key: artifact.trace_key(&workload.entry, &workload.args),
                        entry: workload.entry.clone(),
                        args: workload.args.clone(),
                        max_steps: artifact.sim().max_steps,
                        model: *model,
                    });
                }
            }
        }

        let started = Instant::now();
        let results = executor
            .run(&jobs, &self.traces)
            .map_err(BuildError::Simulation)?;
        let total_wall_micros = started.elapsed().as_micros() as u64;

        let mut stats = MatrixStats {
            threads: executor.threads(),
            total_wall_micros,
            ..MatrixStats::default()
        };
        let mut cells = Vec::with_capacity(results.len());
        let mut result_iter = results.into_iter();
        for workload_name in &workload_names {
            for label in &labels {
                for model_name in &model_names {
                    let result = result_iter.next().expect("one result per job");
                    if result.cell_hit {
                        stats.cell_hits += 1;
                    } else {
                        stats.cell_misses += 1;
                    }
                    match result.trace_fetch {
                        Some(TraceFetch::Memory) => stats.trace_hits += 1,
                        Some(TraceFetch::Disk) => stats.trace_disk_hits += 1,
                        Some(TraceFetch::Recorded) => stats.trace_misses += 1,
                        None => {} // cell hit: no reference was needed
                    }
                    stats.cell_compute_micros.push(result.compute_micros);
                    stats.snapshot_restores += result.snapshot_restores;
                    stats.suffix_steps_saved += result.suffix_steps_saved;
                    cells.push(SecurityCell {
                        workload: workload_name.clone(),
                        pipeline: label.clone(),
                        model: model_name.clone(),
                        report: result.report,
                    });
                }
            }
        }
        stats.store_checkpoint_bytes = self.traces.checkpoint_bytes() as u64;
        stats.store_checkpoint_evictions = self.traces.checkpoint_evictions();
        // Decode-cost accounting: each artifact's program decodes into
        // micro-ops at most once (cached in the `Arc<Program>` all workers
        // share); cells served entirely from a warm store never decode.
        let mut decoded_seen = HashSet::new();
        for artifact in &artifacts {
            let program = &artifact.compiled().program;
            if !decoded_seen.insert(Arc::as_ptr(program)) {
                continue;
            }
            if let Some((uops, micros)) = program.decode_stats() {
                stats.decoded_programs += 1;
                stats.decoded_uops += uops;
                stats.decode_micros += micros;
            }
        }
        Ok(SecurityReport {
            workloads: workload_names,
            pipelines: labels,
            models: model_names,
            cells,
            stats,
        })
    }

    /// The sequential reference implementation of the security matrix: cells
    /// run strictly one after another through [`Artifact::campaign_with`],
    /// each recording its own reference trace — the shape the matrix
    /// executor is byte-compared against (and the baseline of the `campaign
    /// --matrix` benchmark).
    ///
    /// Prefer [`Session::security_matrix`]; this path exists because the
    /// executor's output-equality invariant needs an independent
    /// implementation to be tested against.
    ///
    /// # Errors
    ///
    /// Returns the first [`BuildError`] encountered (a failing build or a
    /// failing fault-free reference run, interleaved in matrix order).
    pub fn security_matrix_sequential_with(
        &mut self,
        runner: &CampaignRunner,
        workloads: &[Workload],
        pipelines: &[Pipeline],
        models: &[&dyn FaultModel],
    ) -> Result<SecurityReport, BuildError> {
        let labels = disambiguated(pipelines.iter().map(Pipeline::label));
        let workload_names = disambiguated(workloads.iter().map(|w| w.name.as_str()));
        let model_names: Vec<String> = models.iter().map(|m| m.name()).collect();
        let started = Instant::now();
        let mut stats = MatrixStats {
            threads: runner.threads(),
            ..MatrixStats::default()
        };
        let mut cells = Vec::with_capacity(workloads.len() * pipelines.len() * models.len());
        let mut decoded_seen = HashSet::new();
        for (workload, workload_name) in workloads.iter().zip(&workload_names) {
            for (pipeline, label) in pipelines.iter().zip(&labels) {
                let artifact = self
                    .cached_artifact(&workload.name, &workload.module, pipeline)?
                    .clone();
                for (model, model_name) in models.iter().zip(&model_names) {
                    let cell_started = Instant::now();
                    let report =
                        artifact.campaign_with(runner, &workload.entry, &workload.args, *model)?;
                    stats
                        .cell_compute_micros
                        .push(cell_started.elapsed().as_micros() as u64);
                    stats.trace_misses += 1; // every cell records its own trace
                    stats.cell_misses += 1; // and executes its own fault space
                    cells.push(SecurityCell {
                        workload: workload_name.clone(),
                        pipeline: label.clone(),
                        model: model_name.clone(),
                        report,
                    });
                }
                let program = &artifact.compiled().program;
                if decoded_seen.insert(Arc::as_ptr(program)) {
                    if let Some((uops, micros)) = program.decode_stats() {
                        stats.decoded_programs += 1;
                        stats.decoded_uops += uops;
                        stats.decode_micros += micros;
                    }
                }
            }
        }
        stats.total_wall_micros = started.elapsed().as_micros() as u64;
        Ok(SecurityReport {
            workloads: workload_names,
            pipelines: labels,
            models: model_names,
            cells,
            stats,
        })
    }
}

/// The given labels with duplicates made unique by a ` (N)` suffix, so
/// label-keyed report lookups are unambiguous. The suffix counter skips
/// values that collide with labels the caller chose literally (e.g. a
/// pipeline already named `"x (2)"`).
fn disambiguated<'a>(labels: impl Iterator<Item = &'a str>) -> Vec<String> {
    let mut assigned: Vec<String> = labels.map(str::to_string).collect();
    let literal: HashSet<String> = assigned.iter().cloned().collect();
    let mut used: HashSet<String> = HashSet::new();
    for label in &mut assigned {
        if used.insert(label.clone()) {
            continue; // first holder of a label keeps it verbatim
        }
        let base = label.clone();
        let mut n = 2u32;
        loop {
            let candidate = format!("{base} ({n})");
            // Suffixes that some pipeline carries as its *literal* label are
            // reserved for that pipeline.
            if !literal.contains(&candidate) && used.insert(candidate.clone()) {
                *label = candidate;
                break;
            }
            n += 1;
        }
    }
    assigned
}
