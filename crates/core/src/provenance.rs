//! The [`Provenance`] record: the auditable identity of one compiled
//! artifact.
//!
//! The paper's countermeasure claims rest on being able to point at a
//! concrete compiled artifact and say *exactly* which source, which
//! transformation sequence and which back-end configuration produced it.
//! Because compilation is bit-deterministic (see `secbranch-codegen`), the
//! record below fully determines the artifact bytes: anyone replaying the
//! same module through the same pipeline reproduces the identical program,
//! listing and fingerprint, in a different process or on a different day.

use std::fmt;

use secbranch_campaign::json_string;

/// How one [`crate::Artifact`] came to be: the source module's content hash,
/// the pipeline configuration fingerprint, the middle-end pass sequence and
/// the combined artifact fingerprint the trace store keys on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Hash of the source module's printed IR (16 lowercase hex digits),
    /// taken *before* any pass ran.
    pub module_hash: String,
    /// The building pipeline's configuration fingerprint
    /// ([`crate::Pipeline::fingerprint`]): CFI level, middle-end components
    /// with their full configuration, simulator settings.
    pub pipeline_fingerprint: String,
    /// The artifact fingerprint ([`crate::Artifact::artifact_fingerprint`]):
    /// pipeline fingerprint qualified by the module hash — the identity
    /// reference traces are memoised under.
    pub artifact_fingerprint: String,
    /// The middle-end passes that ran, in execution order.
    pub passes: Vec<String>,
}

impl Provenance {
    /// Serialises the record as a JSON object (hand-rolled: the offline
    /// build has no serde). Deterministic: equal records render equal bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let passes: Vec<String> = self.passes.iter().map(|p| json_string(p)).collect();
        format!(
            "{{\"module_hash\":{},\"pipeline_fingerprint\":{},\
             \"artifact_fingerprint\":{},\"passes\":[{}]}}",
            json_string(&self.module_hash),
            json_string(&self.pipeline_fingerprint),
            json_string(&self.artifact_fingerprint),
            passes.join(","),
        )
    }
}

/// Renders the record as the `;`-prefixed comment header used by
/// [`crate::Artifact::disassemble`].
impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; module: {}", self.module_hash)?;
        writeln!(f, "; pipeline: {}", self.pipeline_fingerprint)?;
        writeln!(f, "; artifact: {}", self.artifact_fingerprint)?;
        writeln!(f, "; passes: [{}]", self.passes.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Provenance {
        Provenance {
            module_hash: "00deadbeef001234".to_string(),
            pipeline_fingerprint: "cfi=Full;passes=[x]".to_string(),
            artifact_fingerprint: "cfi=Full;passes=[x]|module=00deadbeef001234".to_string(),
            passes: vec!["loop-decoupler".to_string(), "an-coder".to_string()],
        }
    }

    #[test]
    fn json_carries_every_field() {
        let json = sample().to_json();
        assert!(json.contains("\"module_hash\":\"00deadbeef001234\""));
        assert!(json.contains("\"passes\":[\"loop-decoupler\",\"an-coder\"]"));
        assert!(json.contains("\"pipeline_fingerprint\""));
        assert!(json.contains("\"artifact_fingerprint\""));
    }

    #[test]
    fn display_is_a_comment_header() {
        let text = sample().to_string();
        for line in text.lines() {
            assert!(line.starts_with("; "), "{line:?}");
        }
        assert!(text.contains("; passes: [loop-decoupler, an-coder]"));
    }
}
