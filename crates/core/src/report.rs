//! The structured result of a [`crate::Session`] matrix run, plus the shared
//! overhead formatting used by the benchmark harness.

use std::fmt::Write as _;

use secbranch_campaign::json_string;

use crate::{Measurement, Provenance};

/// Formats one Table III style cell: absolute value plus overhead percentage
/// against a baseline (`"110 (+10.000%)"`), or just the absolute value when
/// the baseline is zero.
///
/// This is the single home of the evaluation's overhead formatting; the
/// percentage itself comes from the same formula as
/// [`Measurement::size_overhead_percent`] and
/// [`Measurement::runtime_overhead_percent`].
#[must_use]
pub fn overhead_cell(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        format!("{value:.0}")
    } else {
        format!(
            "{value:.0} ({:+.3}%)",
            crate::overhead_percent(value, baseline)
        )
    }
}

/// One cell of a measurement matrix: one workload under one pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportCell {
    /// The workload name.
    pub workload: String,
    /// The pipeline label.
    pub pipeline: String,
    /// The measured quantities.
    pub measurement: Measurement,
    /// Code-size overhead against the baseline pipeline (the matrix's first
    /// pipeline), in percent. `None` for the baseline cells themselves.
    pub size_overhead_percent: Option<f64>,
    /// Cycle-count overhead against the baseline pipeline, in percent.
    /// `None` for the baseline cells themselves.
    pub runtime_overhead_percent: Option<f64>,
    /// The provenance of the artifact this cell was measured on (module
    /// hash, pipeline fingerprint, pass sequence) — the audit trail tying
    /// every reported number to one reproducible compilation.
    pub provenance: Provenance,
}

/// The structured, serialisable result of [`crate::Session::run_matrix`]:
/// workloads × pipelines, with per-cell size/cycles/CFI statistics and
/// overheads against the first (baseline) pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Workload names, in matrix order.
    pub workloads: Vec<String>,
    /// Pipeline labels, in matrix order. The first label is the overhead
    /// baseline.
    pub pipelines: Vec<String>,
    /// All cells, in workload-major order.
    pub cells: Vec<ReportCell>,
}

impl Report {
    /// Looks up the cell of one workload under one pipeline label.
    #[must_use]
    pub fn cell(&self, workload: &str, pipeline: &str) -> Option<&ReportCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.pipeline == pipeline)
    }

    /// The baseline pipeline label (the matrix's first pipeline), if any.
    #[must_use]
    pub fn baseline(&self) -> Option<&str> {
        self.pipelines.first().map(String::as_str)
    }

    /// Renders the matrix as a Table III style text block: per workload one
    /// size row and one cycles row, baseline absolute plus
    /// `absolute (+overhead%)` cells for every other pipeline.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for workload in &self.workloads {
            let Some(base) = self.baseline().and_then(|label| self.cell(workload, label)) else {
                continue;
            };
            let mut size_row = format!(
                "{workload:<16} size/B    {:>10}",
                base.measurement.code_size_bytes
            );
            let mut time_row = format!(
                "{workload:<16} cycles    {:>10}",
                base.measurement.result.cycles
            );
            for pipeline in self.pipelines.iter().skip(1) {
                let Some(cell) = self.cell(workload, pipeline) else {
                    continue;
                };
                let _ = write!(
                    size_row,
                    " | {:>22}",
                    overhead_cell(
                        f64::from(cell.measurement.code_size_bytes),
                        f64::from(base.measurement.code_size_bytes),
                    )
                );
                let _ = write!(
                    time_row,
                    " | {:>22}",
                    overhead_cell(
                        cell.measurement.result.cycles as f64,
                        base.measurement.result.cycles as f64,
                    )
                );
            }
            out.push_str(&size_row);
            out.push('\n');
            out.push_str(&time_row);
            out.push('\n');
        }
        out
    }

    /// Serialises the report as a self-contained JSON document (hand-rolled:
    /// the offline build has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"workloads\":{},", json_string_array(&self.workloads));
        let _ = write!(out, "\"pipelines\":{},", json_string_array(&self.pipelines));
        out.push_str("\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let m = &cell.measurement;
            let _ = write!(
                out,
                "{{\"workload\":{},\"pipeline\":{},\"code_size_bytes\":{},\
                 \"entry_size_bytes\":{},\"return_value\":{},\"cycles\":{},\
                 \"instructions\":{},\"cfi_checks\":{},\"cfi_violations\":{},\
                 \"size_overhead_percent\":{},\"runtime_overhead_percent\":{},\
                 \"provenance\":{}}}",
                json_string(&cell.workload),
                json_string(&cell.pipeline),
                m.code_size_bytes,
                m.entry_size_bytes,
                m.result.return_value,
                m.result.cycles,
                m.result.instructions,
                m.result.cfi_checks,
                m.result.cfi_violations,
                json_opt_f64(cell.size_overhead_percent),
                json_opt_f64(cell.runtime_overhead_percent),
                cell.provenance.to_json(),
            );
        }
        out.push_str("]}");
        out
    }
}

fn json_string_array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(item));
    }
    out.push(']');
    out
}

fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        // JSON has no NaN/Infinity; overheads are finite by construction but
        // guard anyway.
        Some(v) if v.is_finite() => format!("{v:.6}"),
        Some(_) | None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_cell_formats_percentages() {
        assert_eq!(overhead_cell(110.0, 100.0), "110 (+10.000%)");
        assert_eq!(overhead_cell(50.0, 0.0), "50");
    }

    #[test]
    fn json_string_arrays_are_escaped() {
        assert_eq!(
            json_string_array(&["a\"b".to_string(), "c".to_string()]),
            "[\"a\\\"b\",\"c\"]"
        );
    }
}
