//! `secbranch` — protected conditional branches against fault attacks.
//!
//! This is the facade crate of the reproduction of *Securing Conditional
//! Branches in the Presence of Fault Attacks* (Schilling, Werner, Mangard —
//! DATE 2018). It ties the substrate crates together into the end-to-end
//! pipeline of the paper's Figure 3 and exposes a build-once/run-many
//! measurement interface structured in three layers:
//!
//! * [`Pipeline`] — a reusable builder owning every knob of the compilation:
//!   AN-code parameters, duplication order, CFI level, custom middle-end
//!   passes and the simulator configuration ([`SimConfig`]).
//!   [`Pipeline::for_variant`] keeps the named Table III configurations
//!   ([`ProtectionVariant`]) one-liners.
//! * [`Artifact`] — the output of one compilation. One artifact feeds any
//!   number of executions ([`Artifact::run`]), measurements
//!   ([`Artifact::measure`]) and fault campaigns ([`Artifact::campaign`]
//!   with any [`campaign::FaultModel`], plus the historical
//!   [`Artifact::skip_sweep`]/[`Artifact::register_flip_campaign`] shapes)
//!   without recompiling. Fresh simulators `Arc`-share the compiled code,
//!   so a campaign of millions of injections never copies the program.
//! * [`Session`] — the matrix runner: workloads × pipelines in one
//!   [`Session::run_matrix`] call, with an internal build cache keyed by
//!   (module name, pipeline fingerprint) and a structured, serialisable
//!   [`Report`] of per-cell size/cycles/CFI/overhead numbers; and the
//!   security matrix ([`Session::security_matrix`]): workloads × pipelines
//!   × fault models into a [`SecurityReport`], executed as *one* global job
//!   graph — all artifacts batch-built first, every cell's fault space
//!   flattened into shards on a shared worker pool
//!   ([`campaign::MatrixExecutor`]), reference traces memoised per
//!   (artifact, entry, args) in the session's [`campaign::TraceStore`], and
//!   per-cell timings plus trace-cache counters reported in
//!   [`MatrixStats`].
//!
//! The historical free functions [`build`] and [`measure`] remain as thin
//! wrappers over [`Pipeline`] for existing call sites.
//!
//! The individual building blocks are re-exported under their own names
//! ([`ancode`], [`ir`], [`passes`], [`cfi`], [`armv7m`], [`codegen`],
//! [`fault`], [`programs`], [`store`], [`obs`]).
//!
//! Security matrices and campaigns optionally persist their work: pass a
//! [`store::GridStore`] to [`Session::security_matrix_with`] (or
//! [`Artifact::campaign_with_store`]) and reference traces plus finished
//! campaign cells survive the process — a warm re-run of an unchanged grid
//! does zero simulation and returns byte-identical reports.
//!
//! # Example: protecting a password check
//!
//! ```
//! use secbranch::{Pipeline, ProtectionVariant};
//! use secbranch::programs::password_check_module;
//!
//! # fn main() -> Result<(), secbranch::BuildError> {
//! let module = password_check_module(8);
//! let protected = Pipeline::for_variant(ProtectionVariant::AnCode)
//!     .build(&module)?
//!     .measure("password_check", &[])?;
//! let baseline = Pipeline::for_variant(ProtectionVariant::CfiOnly)
//!     .build(&module)?
//!     .measure("password_check", &[])?;
//! assert_eq!(protected.result.return_value, baseline.result.return_value);
//! assert!(protected.code_size_bytes > baseline.code_size_bytes);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::str::FromStr;

pub use secbranch_ancode as ancode;
pub use secbranch_armv7m as armv7m;
pub use secbranch_campaign as campaign;
pub use secbranch_cfi as cfi;
pub use secbranch_codegen as codegen;
pub use secbranch_fault as fault;
pub use secbranch_ir as ir;
pub use secbranch_obs as obs;
pub use secbranch_passes as passes;
pub use secbranch_programs as programs;
pub use secbranch_store as store;

mod artifact;
mod pipeline;
mod provenance;
mod report;
mod security;
mod session;

pub use artifact::Artifact;
pub use pipeline::{Pipeline, SimConfig};
pub use provenance::Provenance;
pub use report::{overhead_cell, Report, ReportCell};
pub use security::{MatrixStats, SecurityCell, SecurityReport};
pub use session::{Session, Workload};

use secbranch_armv7m::ExecResult;
use secbranch_codegen::CompiledModule;

/// The protection configurations the evaluation compares (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtectionVariant {
    /// No countermeasure at all (not part of Table III, but useful as an
    /// absolute reference).
    Unprotected,
    /// Only the GPSA CFI instrumentation (the paper's "CFI" baseline column).
    CfiOnly,
    /// CFI plus the state-of-the-art duplication countermeasure with the
    /// given order (the paper uses 6).
    Duplication(u32),
    /// CFI plus the paper's AN-code branch protection (the "Prototype"
    /// column).
    AnCode,
}

impl ProtectionVariant {
    /// The variants of Table III in column order.
    pub const TABLE_THREE: [ProtectionVariant; 3] = [
        ProtectionVariant::CfiOnly,
        ProtectionVariant::Duplication(6),
        ProtectionVariant::AnCode,
    ];

    /// A short human-readable label (the [`fmt::Display`] form).
    #[must_use]
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for ProtectionVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectionVariant::Unprotected => f.write_str("unprotected"),
            ProtectionVariant::CfiOnly => f.write_str("cfi"),
            ProtectionVariant::Duplication(order) => write!(f, "duplication(x{order})"),
            ProtectionVariant::AnCode => f.write_str("prototype"),
        }
    }
}

/// Error returned by [`ProtectionVariant::from_str`] for unrecognised labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVariantError {
    input: String,
}

impl fmt::Display for ParseVariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown protection variant {:?} (expected \"unprotected\", \"cfi\", \
             \"duplication(xN)\" or \"prototype\")",
            self.input
        )
    }
}

impl Error for ParseVariantError {}

impl FromStr for ProtectionVariant {
    type Err = ParseVariantError;

    /// Parses the [`fmt::Display`] labels back into variants, so benchmark
    /// binaries can take variants as CLI arguments. `"ancode"` and
    /// `"an-code"` are accepted as aliases of `"prototype"`, and a bare
    /// `"duplication"` means the paper's order 6. Duplication orders below 2
    /// are rejected: the pass would silently no-op and the column would be a
    /// mislabelled CFI baseline.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseVariantError {
            input: s.to_string(),
        };
        match s.trim() {
            "unprotected" => Ok(ProtectionVariant::Unprotected),
            "cfi" => Ok(ProtectionVariant::CfiOnly),
            "prototype" | "ancode" | "an-code" => Ok(ProtectionVariant::AnCode),
            "duplication" => Ok(ProtectionVariant::Duplication(6)),
            s => {
                let order = s
                    .strip_prefix("duplication(x")
                    .and_then(|rest| rest.strip_suffix(')'))
                    .ok_or_else(err)?;
                let order: u32 = order.parse().map_err(|_| err())?;
                if order < 2 {
                    return Err(err());
                }
                Ok(ProtectionVariant::Duplication(order))
            }
        }
    }
}

/// Errors produced while building or measuring a variant.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// A middle-end pass failed.
    Pass(secbranch_passes::PassError),
    /// The back end failed.
    Codegen(secbranch_codegen::CodegenError),
    /// The simulator failed to execute the workload.
    Simulation(secbranch_armv7m::SimError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Pass(e) => write!(f, "pass pipeline failed: {e}"),
            BuildError::Codegen(e) => write!(f, "code generation failed: {e}"),
            BuildError::Simulation(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Pass(e) => Some(e),
            BuildError::Codegen(e) => Some(e),
            BuildError::Simulation(e) => Some(e),
        }
    }
}

impl From<secbranch_passes::PassError> for BuildError {
    fn from(e: secbranch_passes::PassError) -> Self {
        BuildError::Pass(e)
    }
}

impl From<secbranch_codegen::CodegenError> for BuildError {
    fn from(e: secbranch_codegen::CodegenError) -> Self {
        BuildError::Codegen(e)
    }
}

impl From<secbranch_armv7m::SimError> for BuildError {
    fn from(e: secbranch_armv7m::SimError) -> Self {
        BuildError::Simulation(e)
    }
}

/// The measurement record of one workload under one variant (the quantities
/// reported in Table III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// The pipeline/variant label that was measured.
    pub variant_label: String,
    /// Total code size of the compiled module in bytes.
    pub code_size_bytes: u32,
    /// Code size of the entry function alone.
    pub entry_size_bytes: u32,
    /// The execution result (return value, cycles, instructions, CFI
    /// statistics).
    pub result: ExecResult,
}

impl Measurement {
    /// Relative overhead of this measurement's code size against a baseline,
    /// in percent.
    #[must_use]
    pub fn size_overhead_percent(&self, baseline: &Measurement) -> f64 {
        overhead_percent(
            f64::from(self.code_size_bytes),
            f64::from(baseline.code_size_bytes),
        )
    }

    /// Relative overhead of this measurement's cycle count against a
    /// baseline, in percent.
    #[must_use]
    pub fn runtime_overhead_percent(&self, baseline: &Measurement) -> f64 {
        overhead_percent(self.result.cycles as f64, baseline.result.cycles as f64)
    }
}

/// A stable identity of a module's *content*, independent of the caller's
/// naming: a hash of the printed IR. Printing is linear in module size and
/// only paid per build/artifact request, which the build cache keeps rare.
/// Shared by the [`Session`] build-cache key and the artifact fingerprint
/// [`Pipeline::build`] stamps for the trace store.
pub(crate) fn module_content_hash(module: &ir::Module) -> u64 {
    fnv1a_64(ir::printer::print_module(module).as_bytes())
}

/// 64-bit FNV-1a. Hand-rolled on purpose: the fingerprint guarantee is
/// *cross-build* (same module ⇒ same hash in any process, toolchain or
/// platform), and `std`'s `DefaultHasher` explicitly reserves the right to
/// change its algorithm between Rust releases — a silent toolchain bump
/// would otherwise invalidate every persisted fingerprint and golden
/// listing. FNV-1a is fixed by definition and byte-oriented, so it is
/// endianness-independent too.
pub(crate) fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

pub(crate) fn overhead_percent(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (value - baseline) / baseline * 100.0
    }
}

/// Default guest memory size of [`SimConfig`] (enough for the bootloader
/// image plus stack).
pub const DEFAULT_MEMORY_SIZE: u32 = 1 << 20;

/// Default dynamic instruction budget of [`SimConfig`].
pub const DEFAULT_MAX_STEPS: u64 = 500_000_000;

/// Applies the middle-end passes of the given variant to a copy of `module`
/// and compiles it.
///
/// **Deprecated shape**: this is a thin wrapper over
/// `Pipeline::for_variant(variant).build(module)` kept for existing call
/// sites; it discards the artifact metadata. Prefer [`Pipeline::build`] and
/// work with the returned [`Artifact`].
///
/// # Errors
///
/// Returns [`BuildError`] if a pass or the back end fails.
pub fn build(
    module: &ir::Module,
    variant: ProtectionVariant,
) -> Result<CompiledModule, BuildError> {
    Ok(Pipeline::for_variant(variant)
        .build(module)?
        .into_compiled())
}

/// Builds the variant, runs `entry(args)` on the simulator and reports the
/// measurement.
///
/// **Deprecated shape**: this recompiles the module on every call. It is a
/// thin wrapper over `Pipeline::for_variant(variant).measure(...)` kept for
/// existing call sites; prefer building an [`Artifact`] once (or using a
/// [`Session`], which caches builds) when measuring more than once.
///
/// # Errors
///
/// Returns [`BuildError`] if building or executing the workload fails.
pub fn measure(
    module: &ir::Module,
    variant: ProtectionVariant,
    entry: &str,
    args: &[u32],
) -> Result<Measurement, BuildError> {
    Pipeline::for_variant(variant).measure(module, entry, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_programs::{integer_compare_module, memcmp_module, GRANT};

    #[test]
    fn content_hash_is_a_fixed_function_of_the_bytes() {
        // Standard FNV-1a 64 test vectors: the hash must never drift with
        // the toolchain, or persisted fingerprints and golden listings
        // silently invalidate.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn variants_have_labels_and_table_order() {
        assert_eq!(ProtectionVariant::CfiOnly.label(), "cfi");
        assert_eq!(ProtectionVariant::Duplication(6).label(), "duplication(x6)");
        assert_eq!(ProtectionVariant::AnCode.label(), "prototype");
        assert_eq!(ProtectionVariant::TABLE_THREE.len(), 3);
    }

    #[test]
    fn variant_labels_round_trip_through_from_str() {
        let variants = [
            ProtectionVariant::Unprotected,
            ProtectionVariant::CfiOnly,
            ProtectionVariant::Duplication(2),
            ProtectionVariant::Duplication(6),
            ProtectionVariant::Duplication(17),
            ProtectionVariant::AnCode,
        ];
        for variant in variants {
            let label = variant.to_string();
            assert_eq!(label.parse::<ProtectionVariant>(), Ok(variant), "{label}");
        }
    }

    #[test]
    fn variant_parsing_accepts_aliases_and_rejects_garbage() {
        assert_eq!(
            "ancode".parse::<ProtectionVariant>(),
            Ok(ProtectionVariant::AnCode)
        );
        assert_eq!(
            "an-code".parse::<ProtectionVariant>(),
            Ok(ProtectionVariant::AnCode)
        );
        assert_eq!(
            "duplication".parse::<ProtectionVariant>(),
            Ok(ProtectionVariant::Duplication(6))
        );
        assert_eq!(
            " cfi ".parse::<ProtectionVariant>(),
            Ok(ProtectionVariant::CfiOnly)
        );
        // Orders below 2 are rejected: the duplication pass no-ops there,
        // which would mislabel a CFI-only build as a duplication variant.
        for bad in [
            "",
            "cfa",
            "duplication(x)",
            "duplication(xfive)",
            "dup(6)",
            "duplication(x0)",
            "duplication(x1)",
        ] {
            let err = bad.parse::<ProtectionVariant>().expect_err(bad);
            assert!(err.to_string().contains("unknown protection variant"));
        }
    }

    #[test]
    fn all_variants_produce_the_same_functional_result() {
        let module = integer_compare_module();
        for variant in [
            ProtectionVariant::Unprotected,
            ProtectionVariant::CfiOnly,
            ProtectionVariant::Duplication(6),
            ProtectionVariant::AnCode,
        ] {
            let equal = measure(&module, variant, "integer_compare", &[500, 500]).expect("runs");
            let unequal = measure(&module, variant, "integer_compare", &[500, 501]).expect("runs");
            assert_eq!(equal.result.return_value, 1, "{variant:?}");
            assert_eq!(unequal.result.return_value, 0, "{variant:?}");
            if variant != ProtectionVariant::Unprotected {
                assert_eq!(equal.result.cfi_violations, 0, "{variant:?}");
            }
        }
    }

    #[test]
    fn protection_adds_measurable_overhead_over_the_cfi_baseline() {
        let module = memcmp_module(16);
        let baseline =
            measure(&module, ProtectionVariant::CfiOnly, "memcmp_bench", &[]).expect("runs");
        let duplication = measure(
            &module,
            ProtectionVariant::Duplication(6),
            "memcmp_bench",
            &[],
        )
        .expect("runs");
        let prototype =
            measure(&module, ProtectionVariant::AnCode, "memcmp_bench", &[]).expect("runs");
        assert_eq!(baseline.result.return_value, 1);
        assert_eq!(duplication.result.return_value, 1);
        assert_eq!(prototype.result.return_value, 1);
        assert!(duplication.size_overhead_percent(&baseline) > 0.0);
        assert!(prototype.size_overhead_percent(&baseline) > 0.0);
        assert!(prototype.runtime_overhead_percent(&baseline) > 0.0);
    }

    #[test]
    fn password_check_example_from_the_crate_docs_works() {
        let module = secbranch_programs::password_check_module(8);
        let m = measure(&module, ProtectionVariant::AnCode, "password_check", &[]).expect("runs");
        assert_eq!(m.result.return_value, GRANT);
        assert!(m.result.cfi_clean());
    }

    #[test]
    fn overhead_percent_handles_zero_baseline() {
        let a = Measurement {
            variant_label: "a".to_string(),
            code_size_bytes: 10,
            entry_size_bytes: 10,
            result: ExecResult {
                return_value: 0,
                cycles: 0,
                instructions: 0,
                cfi_checks: 0,
                cfi_violations: 0,
            },
        };
        assert_eq!(a.runtime_overhead_percent(&a), 0.0);
    }

    #[test]
    fn pipeline_for_variant_matches_the_free_functions() {
        let module = integer_compare_module();
        for variant in [
            ProtectionVariant::Unprotected,
            ProtectionVariant::CfiOnly,
            ProtectionVariant::Duplication(6),
            ProtectionVariant::AnCode,
        ] {
            let legacy = measure(&module, variant, "integer_compare", &[3, 9]).expect("runs");
            let artifact = Pipeline::for_variant(variant)
                .build(&module)
                .expect("builds");
            let modern = artifact.measure("integer_compare", &[3, 9]).expect("runs");
            assert_eq!(legacy, modern, "{variant:?}");
        }
    }

    #[test]
    fn pipeline_fingerprints_separate_configurations_but_not_labels() {
        let a = Pipeline::for_variant(ProtectionVariant::AnCode);
        let b = Pipeline::for_variant(ProtectionVariant::AnCode).with_label("renamed");
        let c = Pipeline::for_variant(ProtectionVariant::CfiOnly);
        let d = Pipeline::for_variant(ProtectionVariant::AnCode).with_max_steps(1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
        assert_ne!(
            Pipeline::for_variant(ProtectionVariant::Duplication(2)).fingerprint(),
            Pipeline::for_variant(ProtectionVariant::Duplication(6)).fingerprint(),
        );
    }

    #[test]
    fn artifact_runs_many_times_from_one_build() {
        let module = integer_compare_module();
        let artifact = Pipeline::for_variant(ProtectionVariant::AnCode)
            .build(&module)
            .expect("builds");
        let eq = artifact.run("integer_compare", &[11, 11]).expect("runs");
        let ne = artifact.run("integer_compare", &[11, 12]).expect("runs");
        assert_eq!(eq.return_value, 1);
        assert_eq!(ne.return_value, 0);
        // Executions are order-independent: a fresh simulator per call.
        let eq_again = artifact.run("integer_compare", &[11, 11]).expect("runs");
        assert_eq!(eq, eq_again);
    }

    #[test]
    fn custom_pass_fingerprints_include_their_configuration() {
        use secbranch_passes::{Duplication, DuplicationConfig};

        // `Duplication` overrides `Pass::fingerprint`, so two
        // differently-configured instances inserted via `with_pass` must not
        // share a build-cache identity.
        let dup = |order: u32| {
            Pipeline::new()
                .with_full_cfi()
                .with_pass(Duplication::new(DuplicationConfig {
                    order,
                    ..DuplicationConfig::default()
                }))
        };
        assert_ne!(dup(2).fingerprint(), dup(6).fingerprint());
        assert_eq!(dup(6).fingerprint(), dup(6).fingerprint());
    }

    #[test]
    fn custom_passes_compose_with_the_standard_sequence() {
        use secbranch_passes::{Pass, PassError};

        struct MarkAllProtected;
        impl Pass for MarkAllProtected {
            fn name(&self) -> &'static str {
                "mark-all-protected"
            }
            fn run(&self, module: &mut ir::Module) -> Result<(), PassError> {
                for f in &mut module.functions {
                    f.attrs.protect_branches = true;
                }
                Ok(())
            }
        }

        let module = integer_compare_module();
        let plain = Pipeline::for_variant(ProtectionVariant::AnCode);
        let custom = Pipeline::new()
            .with_full_cfi()
            .with_pass(MarkAllProtected)
            .with_an_code(Default::default())
            .with_label("prototype+mark");
        assert_ne!(plain.fingerprint(), custom.fingerprint());
        assert_eq!(
            custom.pass_names().first().copied(),
            Some("mark-all-protected")
        );
        let m = custom
            .measure(&module, "integer_compare", &[5, 5])
            .expect("runs");
        assert_eq!(m.result.return_value, 1);
        assert_eq!(m.variant_label, "prototype+mark");
    }
}
