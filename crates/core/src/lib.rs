//! `secbranch` — protected conditional branches against fault attacks.
//!
//! This is the facade crate of the reproduction of *Securing Conditional
//! Branches in the Presence of Fault Attacks* (Schilling, Werner, Mangard —
//! DATE 2018). It ties the substrate crates together into the end-to-end
//! pipeline of the paper's Figure 3 and exposes the measurement interface
//! used by the benchmark harness:
//!
//! * [`ProtectionVariant`] — the countermeasure configurations compared in
//!   the evaluation: unprotected, CFI only, N-fold branch duplication, and
//!   the AN-code protected prototype.
//! * [`build`] — runs the middle-end passes and the back end for a variant
//!   and returns the compiled module.
//! * [`measure`] — compiles and executes a workload on the ARMv7-M simulator
//!   and reports code size, cycles and CFI statistics (the quantities of
//!   Table III).
//!
//! The individual building blocks are re-exported under their own names
//! ([`ancode`], [`ir`], [`passes`], [`cfi`], [`armv7m`], [`codegen`],
//! [`fault`], [`programs`]).
//!
//! # Example: protecting a password check
//!
//! ```
//! use secbranch::{build, measure, ProtectionVariant};
//! use secbranch::programs::password_check_module;
//!
//! # fn main() -> Result<(), secbranch::BuildError> {
//! let module = password_check_module(8);
//! let protected = measure(&module, ProtectionVariant::AnCode, "password_check", &[])?;
//! let baseline = measure(&module, ProtectionVariant::CfiOnly, "password_check", &[])?;
//! assert_eq!(protected.result.return_value, baseline.result.return_value);
//! assert!(protected.code_size_bytes > baseline.code_size_bytes);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub use secbranch_ancode as ancode;
pub use secbranch_armv7m as armv7m;
pub use secbranch_cfi as cfi;
pub use secbranch_codegen as codegen;
pub use secbranch_fault as fault;
pub use secbranch_ir as ir;
pub use secbranch_passes as passes;
pub use secbranch_programs as programs;

use secbranch_armv7m::ExecResult;
use secbranch_codegen::{compile, CfiLevel, CodegenOptions, CompiledModule};
use secbranch_passes::{
    duplication_pipeline, standard_protection_pipeline, AnCoderConfig, DuplicationConfig,
};

/// The protection configurations the evaluation compares (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectionVariant {
    /// No countermeasure at all (not part of Table III, but useful as an
    /// absolute reference).
    Unprotected,
    /// Only the GPSA CFI instrumentation (the paper's "CFI" baseline column).
    CfiOnly,
    /// CFI plus the state-of-the-art duplication countermeasure with the
    /// given order (the paper uses 6).
    Duplication(u32),
    /// CFI plus the paper's AN-code branch protection (the "Prototype"
    /// column).
    AnCode,
}

impl ProtectionVariant {
    /// The variants of Table III in column order.
    pub const TABLE_THREE: [ProtectionVariant; 3] = [
        ProtectionVariant::CfiOnly,
        ProtectionVariant::Duplication(6),
        ProtectionVariant::AnCode,
    ];

    /// A short human-readable label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ProtectionVariant::Unprotected => "unprotected".to_string(),
            ProtectionVariant::CfiOnly => "cfi".to_string(),
            ProtectionVariant::Duplication(order) => format!("duplication(x{order})"),
            ProtectionVariant::AnCode => "prototype".to_string(),
        }
    }
}

/// Errors produced while building or measuring a variant.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// A middle-end pass failed.
    Pass(secbranch_passes::PassError),
    /// The back end failed.
    Codegen(secbranch_codegen::CodegenError),
    /// The simulator failed to execute the workload.
    Simulation(secbranch_armv7m::SimError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Pass(e) => write!(f, "pass pipeline failed: {e}"),
            BuildError::Codegen(e) => write!(f, "code generation failed: {e}"),
            BuildError::Simulation(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Pass(e) => Some(e),
            BuildError::Codegen(e) => Some(e),
            BuildError::Simulation(e) => Some(e),
        }
    }
}

impl From<secbranch_passes::PassError> for BuildError {
    fn from(e: secbranch_passes::PassError) -> Self {
        BuildError::Pass(e)
    }
}

impl From<secbranch_codegen::CodegenError> for BuildError {
    fn from(e: secbranch_codegen::CodegenError) -> Self {
        BuildError::Codegen(e)
    }
}

impl From<secbranch_armv7m::SimError> for BuildError {
    fn from(e: secbranch_armv7m::SimError) -> Self {
        BuildError::Simulation(e)
    }
}

/// Applies the middle-end passes of the given variant to a copy of `module`
/// and compiles it.
///
/// # Errors
///
/// Returns [`BuildError`] if a pass or the back end fails.
pub fn build(
    module: &ir::Module,
    variant: ProtectionVariant,
) -> Result<CompiledModule, BuildError> {
    let mut module = module.clone();
    let cfi = match variant {
        ProtectionVariant::Unprotected => CfiLevel::None,
        ProtectionVariant::CfiOnly => CfiLevel::Full,
        ProtectionVariant::Duplication(order) => {
            duplication_pipeline(DuplicationConfig {
                order,
                ..DuplicationConfig::default()
            })
            .run(&mut module)?;
            CfiLevel::Full
        }
        ProtectionVariant::AnCode => {
            standard_protection_pipeline(AnCoderConfig::default()).run(&mut module)?;
            CfiLevel::Full
        }
    };
    Ok(compile(&module, &CodegenOptions { cfi })?)
}

/// The measurement record of one workload under one variant (the quantities
/// reported in Table III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// The variant that was measured.
    pub variant_label: String,
    /// Total code size of the compiled module in bytes.
    pub code_size_bytes: u32,
    /// Code size of the entry function alone.
    pub entry_size_bytes: u32,
    /// The execution result (return value, cycles, instructions, CFI
    /// statistics).
    pub result: ExecResult,
}

impl Measurement {
    /// Relative overhead of this measurement's code size against a baseline,
    /// in percent.
    #[must_use]
    pub fn size_overhead_percent(&self, baseline: &Measurement) -> f64 {
        overhead_percent(self.code_size_bytes as f64, baseline.code_size_bytes as f64)
    }

    /// Relative overhead of this measurement's cycle count against a
    /// baseline, in percent.
    #[must_use]
    pub fn runtime_overhead_percent(&self, baseline: &Measurement) -> f64 {
        overhead_percent(self.result.cycles as f64, baseline.result.cycles as f64)
    }
}

fn overhead_percent(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (value - baseline) / baseline * 100.0
    }
}

/// Default guest memory size used by [`measure`] (enough for the bootloader
/// image plus stack).
pub const DEFAULT_MEMORY_SIZE: u32 = 1 << 20;

/// Default dynamic instruction budget used by [`measure`].
pub const DEFAULT_MAX_STEPS: u64 = 500_000_000;

/// Builds the variant, runs `entry(args)` on the simulator and reports the
/// measurement.
///
/// # Errors
///
/// Returns [`BuildError`] if building or executing the workload fails.
pub fn measure(
    module: &ir::Module,
    variant: ProtectionVariant,
    entry: &str,
    args: &[u32],
) -> Result<Measurement, BuildError> {
    let compiled = build(module, variant)?;
    let code_size_bytes = compiled.code_size_bytes();
    let entry_size_bytes = compiled.function_size(entry).unwrap_or(0);
    let mut sim = compiled.into_simulator(DEFAULT_MEMORY_SIZE);
    let result = sim.call(entry, args, DEFAULT_MAX_STEPS)?;
    Ok(Measurement {
        variant_label: variant.label(),
        code_size_bytes,
        entry_size_bytes,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch_programs::{integer_compare_module, memcmp_module, GRANT};

    #[test]
    fn variants_have_labels_and_table_order() {
        assert_eq!(ProtectionVariant::CfiOnly.label(), "cfi");
        assert_eq!(ProtectionVariant::Duplication(6).label(), "duplication(x6)");
        assert_eq!(ProtectionVariant::AnCode.label(), "prototype");
        assert_eq!(ProtectionVariant::TABLE_THREE.len(), 3);
    }

    #[test]
    fn all_variants_produce_the_same_functional_result() {
        let module = integer_compare_module();
        for variant in [
            ProtectionVariant::Unprotected,
            ProtectionVariant::CfiOnly,
            ProtectionVariant::Duplication(6),
            ProtectionVariant::AnCode,
        ] {
            let equal = measure(&module, variant, "integer_compare", &[500, 500]).expect("runs");
            let unequal = measure(&module, variant, "integer_compare", &[500, 501]).expect("runs");
            assert_eq!(equal.result.return_value, 1, "{variant:?}");
            assert_eq!(unequal.result.return_value, 0, "{variant:?}");
            if variant != ProtectionVariant::Unprotected {
                assert_eq!(equal.result.cfi_violations, 0, "{variant:?}");
            }
        }
    }

    #[test]
    fn protection_adds_measurable_overhead_over_the_cfi_baseline() {
        let module = memcmp_module(16);
        let baseline =
            measure(&module, ProtectionVariant::CfiOnly, "memcmp_bench", &[]).expect("runs");
        let duplication =
            measure(&module, ProtectionVariant::Duplication(6), "memcmp_bench", &[]).expect("runs");
        let prototype =
            measure(&module, ProtectionVariant::AnCode, "memcmp_bench", &[]).expect("runs");
        assert_eq!(baseline.result.return_value, 1);
        assert_eq!(duplication.result.return_value, 1);
        assert_eq!(prototype.result.return_value, 1);
        assert!(duplication.size_overhead_percent(&baseline) > 0.0);
        assert!(prototype.size_overhead_percent(&baseline) > 0.0);
        assert!(prototype.runtime_overhead_percent(&baseline) > 0.0);
    }

    #[test]
    fn password_check_example_from_the_crate_docs_works() {
        let module = secbranch_programs::password_check_module(8);
        let m = measure(&module, ProtectionVariant::AnCode, "password_check", &[]).expect("runs");
        assert_eq!(m.result.return_value, GRANT);
        assert!(m.result.cfi_clean());
    }

    #[test]
    fn overhead_percent_handles_zero_baseline() {
        let a = Measurement {
            variant_label: "a".to_string(),
            code_size_bytes: 10,
            entry_size_bytes: 10,
            result: ExecResult {
                return_value: 0,
                cycles: 0,
                instructions: 0,
                cfi_checks: 0,
                cfi_violations: 0,
            },
        };
        assert_eq!(a.runtime_overhead_percent(&a), 0.0);
    }
}
