//! The [`SecurityReport`]: a variants × fault-models security matrix
//! produced by [`crate::Session::security_matrix`].

use std::fmt::Write as _;

use secbranch_campaign::{json_string, CampaignReport};

/// One cell of a security matrix: one workload under one pipeline attacked
/// by one fault model.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityCell {
    /// The workload name.
    pub workload: String,
    /// The pipeline label.
    pub pipeline: String,
    /// The fault model's name.
    pub model: String,
    /// The full campaign report (counters, attribution, escapes).
    pub report: CampaignReport,
}

/// Execution metadata of one security-matrix run: where the time went and
/// how well the trace cache did.
///
/// Stats describe *how* a particular run executed, never *what* it
/// computed: they are excluded from [`SecurityReport`]'s equality and from
/// [`SecurityReport::to_json`], which is what lets reports stay
/// byte-identical across thread counts while still carrying timings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatrixStats {
    /// Worker threads of the run.
    pub threads: usize,
    /// Reference traces served from the in-memory trace store.
    pub trace_hits: u64,
    /// Reference traces loaded from an attached persistent grid store.
    pub trace_disk_hits: u64,
    /// Reference traces that had to be recorded.
    pub trace_misses: u64,
    /// Whole cells served from the persistent grid store (zero simulation).
    pub cell_hits: u64,
    /// Cells that had to execute their fault space.
    pub cell_misses: u64,
    /// End-to-end wall time of the campaign phase in microseconds
    /// (builds excluded).
    pub total_wall_micros: u64,
    /// Injection compute time per cell in microseconds, parallel to
    /// [`SecurityReport::cells`]. Under the shared pool cells overlap in
    /// wall time, so these sum to roughly `threads × total_wall_micros`
    /// (cache-served cells contribute zero).
    pub cell_compute_micros: Vec<u64>,
    /// Bytes currently held by resume checkpoints in the session's trace
    /// store (after this run).
    pub store_checkpoint_bytes: u64,
    /// Session-lifetime count of entries whose checkpoints were evicted by
    /// the trace store's byte budget.
    pub store_checkpoint_evictions: u64,
    /// Spine-snapshot restores across all cells: grouped multi-fault
    /// batches that resumed from a saved post-first-fault machine state
    /// instead of re-executing the shared prefix.
    pub snapshot_restores: u64,
    /// Reference-suffix steps the differential executor avoided executing
    /// across all cells (liveness-pruned injections plus runs cut short at
    /// a reconvergent checkpoint).
    pub suffix_steps_saved: u64,
    /// Artifacts whose program was decoded into micro-ops during (or
    /// before) this run. Decode happens once per `Arc<Program>` no matter
    /// how many workers share it; the decoded form is derived data and
    /// never part of the report.
    pub decoded_programs: u64,
    /// Total micro-ops across those decoded programs (equals their total
    /// instruction count — the decoder is 1:1).
    pub decoded_uops: u64,
    /// Total wall-clock microseconds spent decoding those programs.
    pub decode_micros: u64,
}

impl MatrixStats {
    /// A latency histogram of this run's per-cell injection compute times.
    #[must_use]
    pub fn compute_histogram(&self) -> secbranch_obs::HistogramSnapshot {
        secbranch_obs::HistogramSnapshot::from_samples(&self.cell_compute_micros)
    }

    /// Registers this run's counters and the per-cell compute histogram
    /// under the `secbranch_matrix_*` prefix. Derived observability data
    /// only — never part of reports, fingerprints, or persistence.
    pub fn register_into(&self, registry: &mut secbranch_obs::Registry) {
        registry.gauge("secbranch_matrix_threads", self.threads as u64);
        registry.counter("secbranch_matrix_trace_hits_total", self.trace_hits);
        registry.counter(
            "secbranch_matrix_trace_disk_hits_total",
            self.trace_disk_hits,
        );
        registry.counter("secbranch_matrix_trace_misses_total", self.trace_misses);
        registry.counter("secbranch_matrix_cell_hits_total", self.cell_hits);
        registry.counter("secbranch_matrix_cell_misses_total", self.cell_misses);
        registry.counter("secbranch_matrix_wall_micros_total", self.total_wall_micros);
        registry.counter(
            "secbranch_matrix_snapshot_restores_total",
            self.snapshot_restores,
        );
        registry.counter(
            "secbranch_matrix_suffix_steps_saved_total",
            self.suffix_steps_saved,
        );
        registry.counter(
            "secbranch_matrix_decoded_programs_total",
            self.decoded_programs,
        );
        registry.counter("secbranch_matrix_decode_micros_total", self.decode_micros);
        registry.histogram("secbranch_cell_compute_micros", &self.compute_histogram());
    }

    /// Serialises the stats as a JSON object (hand-rolled: the offline
    /// build has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cell_compute_micros
            .iter()
            .map(u64::to_string)
            .collect();
        format!(
            "{{\"threads\":{},\"trace_hits\":{},\"trace_disk_hits\":{},\"trace_misses\":{},\
             \"cell_hits\":{},\"cell_misses\":{},\"total_wall_micros\":{},\
             \"cell_compute_micros\":[{}],\"store_checkpoint_bytes\":{},\
             \"store_checkpoint_evictions\":{},\"snapshot_restores\":{},\
             \"suffix_steps_saved\":{},\"decoded_programs\":{},\
             \"decoded_uops\":{},\"decode_micros\":{}}}",
            self.threads,
            self.trace_hits,
            self.trace_disk_hits,
            self.trace_misses,
            self.cell_hits,
            self.cell_misses,
            self.total_wall_micros,
            cells.join(","),
            self.store_checkpoint_bytes,
            self.store_checkpoint_evictions,
            self.snapshot_restores,
            self.suffix_steps_saved,
            self.decoded_programs,
            self.decoded_uops,
            self.decode_micros,
        )
    }
}

/// The structured result of a variants × fault-models security evaluation:
/// for every workload, every pipeline is attacked by every model, and each
/// cell keeps its full [`CampaignReport`].
#[derive(Debug, Clone)]
pub struct SecurityReport {
    /// Workload names, in matrix order.
    pub workloads: Vec<String>,
    /// Pipeline labels, in matrix order.
    pub pipelines: Vec<String>,
    /// Fault-model names, in matrix order.
    pub models: Vec<String>,
    /// All cells, in workload-major, pipeline-then-model order.
    pub cells: Vec<SecurityCell>,
    /// Execution metadata (timings, trace-cache counters) of the run that
    /// produced this report.
    pub stats: MatrixStats,
}

/// Equality compares what the matrix *computed* (axes and cells), not how
/// it ran: [`SecurityReport::stats`] is deliberately excluded, so the
/// executor's byte-identical-to-sequential invariant is expressible as
/// plain `==` even though two runs never share wall times.
impl PartialEq for SecurityReport {
    fn eq(&self, other: &Self) -> bool {
        self.workloads == other.workloads
            && self.pipelines == other.pipelines
            && self.models == other.models
            && self.cells == other.cells
    }
}

impl SecurityReport {
    /// Looks up one cell.
    #[must_use]
    pub fn cell(&self, workload: &str, pipeline: &str, model: &str) -> Option<&SecurityCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.pipeline == pipeline && c.model == model)
    }

    /// Renders the matrix as a text table: one row per workload × pipeline,
    /// one column per fault model, each cell `escaped/total (rate%)`.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = format!("{:<16} {:<16}", "workload", "pipeline");
        for model in &self.models {
            let _ = write!(out, " | {model:>20}");
        }
        out.push('\n');
        for workload in &self.workloads {
            for pipeline in &self.pipelines {
                let _ = write!(out, "{workload:<16} {pipeline:<16}");
                for model in &self.models {
                    let cell_text = self.cell(workload, pipeline, model).map_or_else(
                        || "-".to_string(),
                        |cell| {
                            format!(
                                "{}/{} ({:.3}%)",
                                cell.report.counts.wrong_result_undetected,
                                cell.report.counts.total(),
                                cell.report.escape_rate() * 100.0
                            )
                        },
                    );
                    let _ = write!(out, " | {cell_text:>20}");
                }
                out.push('\n');
            }
        }
        out
    }

    /// Serialises the matrix as a self-contained JSON document; each cell
    /// embeds its full campaign report (hand-rolled: the offline build has
    /// no serde).
    ///
    /// The output is fully deterministic — [`SecurityReport::stats`] is not
    /// included (serialise it separately via [`MatrixStats::to_json`]), so
    /// the same matrix produces byte-identical JSON at any thread count.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"workload\":{},\"pipeline\":{},\"model\":{},\"report\":{}}}",
                json_string(&cell.workload),
                json_string(&cell.pipeline),
                json_string(&cell.model),
                cell.report.to_json(),
            );
        }
        out.push_str("]}");
        out
    }
}
