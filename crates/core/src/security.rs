//! The [`SecurityReport`]: a variants × fault-models security matrix
//! produced by [`crate::Session::security_matrix`].

use std::fmt::Write as _;

use secbranch_campaign::{json_string, CampaignReport};

/// One cell of a security matrix: one workload under one pipeline attacked
/// by one fault model.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityCell {
    /// The workload name.
    pub workload: String,
    /// The pipeline label.
    pub pipeline: String,
    /// The fault model's name.
    pub model: String,
    /// The full campaign report (counters, attribution, escapes).
    pub report: CampaignReport,
}

/// The structured result of a variants × fault-models security evaluation:
/// for every workload, every pipeline is attacked by every model, and each
/// cell keeps its full [`CampaignReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityReport {
    /// Workload names, in matrix order.
    pub workloads: Vec<String>,
    /// Pipeline labels, in matrix order.
    pub pipelines: Vec<String>,
    /// Fault-model names, in matrix order.
    pub models: Vec<String>,
    /// All cells, in workload-major, pipeline-then-model order.
    pub cells: Vec<SecurityCell>,
}

impl SecurityReport {
    /// Looks up one cell.
    #[must_use]
    pub fn cell(&self, workload: &str, pipeline: &str, model: &str) -> Option<&SecurityCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.pipeline == pipeline && c.model == model)
    }

    /// Renders the matrix as a text table: one row per workload × pipeline,
    /// one column per fault model, each cell `escaped/total (rate%)`.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = format!("{:<16} {:<16}", "workload", "pipeline");
        for model in &self.models {
            let _ = write!(out, " | {model:>20}");
        }
        out.push('\n');
        for workload in &self.workloads {
            for pipeline in &self.pipelines {
                let _ = write!(out, "{workload:<16} {pipeline:<16}");
                for model in &self.models {
                    let cell_text = self.cell(workload, pipeline, model).map_or_else(
                        || "-".to_string(),
                        |cell| {
                            format!(
                                "{}/{} ({:.3}%)",
                                cell.report.counts.wrong_result_undetected,
                                cell.report.counts.total(),
                                cell.report.escape_rate() * 100.0
                            )
                        },
                    );
                    let _ = write!(out, " | {cell_text:>20}");
                }
                out.push('\n');
            }
        }
        out
    }

    /// Serialises the matrix as a self-contained JSON document; each cell
    /// embeds its full campaign report (hand-rolled: the offline build has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"workload\":{},\"pipeline\":{},\"model\":{},\"report\":{}}}",
                json_string(&cell.workload),
                json_string(&cell.pipeline),
                json_string(&cell.model),
                cell.report.to_json(),
            );
        }
        out.push_str("]}");
        out
    }
}
