//! Integration tests of the advisor: golden remediation snapshot,
//! thread-count determinism, category totality over the benchmark grid,
//! and the closed loop's zero-escape / lower-overhead acceptance.

use secbranch::campaign::{
    BranchInversion, CampaignRunner, DoubleInstructionSkip, FaultModel, InstructionSkip,
    MemoryBitFlip, RegisterBitFlip,
};
use secbranch::programs::{
    crc32_table_module, integer_compare_module, password_check_module, pin_retry_module,
};
use secbranch::{Pipeline, ProtectionVariant, Workload};
use secbranch_advisor::{Categorizer, RemediationReport, SelectiveHardening};

fn pin_retry_workload() -> Workload {
    Workload::new("pin retry", pin_retry_module(4, 3), "pin_check", &[])
}

/// Categorizes the unprotected escapes of a workload under the two models
/// the advisor defends against.
fn categorize_unprotected(workload: &Workload) -> RemediationReport {
    let artifact = Pipeline::new()
        .with_max_steps(200_000)
        .build(&workload.module)
        .expect("builds");
    let categorizer = Categorizer::new(&workload.module, &artifact.compiled().program);
    let runner = CampaignRunner::new();
    let mut escapes = Vec::new();
    for model in [&InstructionSkip as &dyn FaultModel, &BranchInversion] {
        let report = artifact
            .campaign_with(&runner, &workload.entry, &workload.args, model)
            .expect("campaign runs");
        escapes.extend(categorizer.categorize_report(&report));
    }
    RemediationReport::new(workload.name.clone(), &escapes)
}

/// The PIN-retry workload's escape set is known; the remediation report
/// derived from it is a stable artifact. Any drift — in the campaign, the
/// label join, the CFG analysis or the category rules — shows up as a
/// readable diff here.
#[test]
fn remediation_report_for_unprotected_pin_retry_matches_the_golden_snapshot() {
    let report = categorize_unprotected(&pin_retry_workload());
    assert_eq!(report.total_escapes, 117);
    assert_eq!(report.entries.len(), 13);
    assert_eq!(report.to_json(), GOLDEN_PIN_RETRY_JSON);
}

/// The advisor's entire output derives from campaign reports, which are
/// byte-identical at any worker thread count — so the advise JSON is too.
#[test]
fn advise_output_is_byte_identical_at_1_2_and_8_threads() {
    let workload = pin_retry_workload();
    let baseline = SelectiveHardening::new()
        .with_threads(1)
        .advise(&workload)
        .expect("advise runs")
        .to_json();
    for threads in [2, 8] {
        let outcome = SelectiveHardening::new()
            .with_threads(threads)
            .advise(&workload)
            .expect("advise runs");
        assert_eq!(
            outcome.to_json(),
            baseline,
            "advise output drifted at {threads} threads"
        );
    }
}

/// Every escape of the benchmark grid — 4 workloads × 3 variants × 5 fault
/// models, the 60 cells of the matrix benchmark — receives exactly one
/// category: the join is total, never panics, and resolves a function for
/// every faulted pc.
#[test]
fn every_escape_in_the_60_cell_grid_receives_exactly_one_category() {
    let workloads = [
        Workload::new(
            "integer compare",
            integer_compare_module(),
            "integer_compare",
            &[1234, 4321],
        ),
        Workload::new(
            "password check",
            password_check_module(8),
            "password_check",
            &[],
        ),
        Workload::new("crc32 x16", crc32_table_module(16), "crc32_check", &[]),
        pin_retry_workload(),
    ];
    let variants = [
        ProtectionVariant::Unprotected,
        ProtectionVariant::CfiOnly,
        ProtectionVariant::AnCode,
    ];
    let models: Vec<Box<dyn FaultModel>> = vec![
        Box::new(InstructionSkip),
        Box::new(DoubleInstructionSkip {
            max_injections: 100,
            seed: 0x2FA17,
        }),
        Box::new(RegisterBitFlip {
            trials: 100,
            seed: 0xABCDEF,
        }),
        Box::new(MemoryBitFlip {
            trials: 100,
            seed: 0xFEED,
        }),
        Box::new(BranchInversion),
    ];
    let runner = CampaignRunner::new();
    let mut cells = 0;
    let mut escapes_seen = 0usize;
    for workload in &workloads {
        for variant in variants {
            let artifact = Pipeline::for_variant(variant)
                .with_max_steps(200_000)
                .build(&workload.module)
                .expect("builds");
            let categorizer = Categorizer::new(&workload.module, &artifact.compiled().program);
            for model in &models {
                let report = artifact
                    .campaign_with(&runner, &workload.entry, &workload.args, model.as_ref())
                    .expect("campaign runs");
                let categorized = categorizer.categorize_report(&report);
                assert_eq!(
                    categorized.len(),
                    report.escapes.len(),
                    "{} / {} / {}: every escape categorizes exactly once",
                    workload.name,
                    variant.label(),
                    report.model
                );
                for c in &categorized {
                    assert!(
                        !c.function.is_empty(),
                        "{} / {}: escape at pc {} resolved to no function",
                        workload.name,
                        report.model,
                        c.pc
                    );
                }
                escapes_seen += categorized.len();
                cells += 1;
            }
        }
    }
    assert_eq!(cells, 60);
    assert!(escapes_seen > 0, "the grid exercises real escapes");
}

/// The acceptance criterion of the closed loop: on at least two workloads
/// the selective configuration reaches zero escapes under instruction skip
/// and branch inversion, at strictly lower measured runtime and size
/// overhead than whole-function protection.
#[test]
fn selective_hardening_converges_cheaper_than_full_protection() {
    let workloads = [
        Workload::new(
            "password check",
            password_check_module(8),
            "password_check",
            &[],
        ),
        pin_retry_workload(),
    ];
    for workload in &workloads {
        let outcome = SelectiveHardening::new()
            .advise(workload)
            .expect("advise runs");
        assert!(outcome.converged, "{}: loop must converge", workload.name);
        assert_eq!(
            outcome.selective.total_escapes(),
            0,
            "{}: selective config must stop every escape",
            workload.name
        );
        assert_eq!(
            outcome.full.total_escapes(),
            0,
            "{}: full protection stops every escape too",
            workload.name
        );
        assert!(
            outcome.selective.measurement.result.cycles < outcome.full.measurement.result.cycles,
            "{}: selective must run strictly cheaper ({} vs {} cycles)",
            workload.name,
            outcome.selective.measurement.result.cycles,
            outcome.full.measurement.result.cycles
        );
        assert!(
            outcome.selective.measurement.code_size_bytes
                < outcome.full.measurement.code_size_bytes,
            "{}: selective must be strictly smaller ({} vs {} bytes)",
            workload.name,
            outcome.selective.measurement.code_size_bytes,
            outcome.full.measurement.code_size_bytes
        );
        // And it still protects: strictly more expensive than no protection.
        assert!(
            outcome.selective.runtime_overhead_percent > 0.0
                && outcome.selective.size_overhead_percent > 0.0
        );
    }
}

const GOLDEN_PIN_RETRY_JSON: &str = "{\"workload\":\"pin retry\",\"total_escapes\":117,\"entries\":[{\"function\":\"memcmp_secure\",\"region\":\"prologue\",\"category\":\"call-return\",\"countermeasure\":\"cfi the call/return edges, skip-harden the prologue\",\"escapes\":2,\"by_model\":{\"skip\":2},\"example_pc\":2,\"example_instruction\":\"str r0, [sp, #8]\"},{\"function\":\"memcmp_secure\",\"region\":\"bb0\",\"category\":\"data-corruption\",\"countermeasure\":\"skip-harden the region (duplicate idempotent instructions)\",\"escapes\":1,\"by_model\":{\"skip\":1},\"example_pc\":8,\"example_instruction\":\"ldr r0, [sp, #20]\"},{\"function\":\"memcmp_secure\",\"region\":\"bb1\",\"category\":\"loop-condition\",\"countermeasure\":\"an-code the loop condition, cfi-link its edges, skip-harden the header\",\"escapes\":3,\"by_model\":{\"branch-invert\":2,\"skip\":1},\"example_pc\":26,\"example_instruction\":\"blo @28\"},{\"function\":\"memcmp_secure\",\"region\":\"bb1\",\"category\":\"data-corruption\",\"countermeasure\":\"skip-harden the region (duplicate idempotent instructions)\",\"escapes\":4,\"by_model\":{\"skip\":4},\"example_pc\":21,\"example_instruction\":\"str r2, [sp, #32]\"},{\"function\":\"memcmp_secure\",\"region\":\"bb2\",\"category\":\"data-corruption\",\"countermeasure\":\"skip-harden the region (duplicate idempotent instructions)\",\"escapes\":72,\"by_model\":{\"skip\":72},\"example_pc\":38,\"example_instruction\":\"ldr r0, [sp, #8]\"},{\"function\":\"memcmp_secure\",\"region\":\"bb3\",\"category\":\"if-then-else\",\"countermeasure\":\"an-code the branch, cfi-link its edges, skip-harden the block\",\"escapes\":4,\"by_model\":{\"branch-invert\":2,\"skip\":2},\"example_pc\":89,\"example_instruction\":\"beq @91\"},{\"function\":\"memcmp_secure\",\"region\":\"bb3\",\"category\":\"data-corruption\",\"countermeasure\":\"skip-harden the region (duplicate idempotent instructions)\",\"escapes\":7,\"by_model\":{\"skip\":7},\"example_pc\":83,\"example_instruction\":\"ldr r2, [r0, #0]\"},{\"function\":\"pin_check\",\"region\":\"prologue\",\"category\":\"call-return\",\"countermeasure\":\"cfi the call/return edges, skip-harden the prologue\",\"escapes\":1,\"by_model\":{\"skip\":1},\"example_pc\":131,\"example_instruction\":\"bl @0\"},{\"function\":\"pin_check\",\"region\":\"bb0\",\"category\":\"if-then-else\",\"countermeasure\":\"an-code the branch, cfi-link its edges, skip-harden the block\",\"escapes\":3,\"by_model\":{\"branch-invert\":2,\"skip\":1},\"example_pc\":114,\"example_instruction\":\"bhs @116\"},{\"function\":\"pin_check\",\"region\":\"bb0\",\"category\":\"data-corruption\",\"countermeasure\":\"skip-harden the region (duplicate idempotent instructions)\",\"escapes\":5,\"by_model\":{\"skip\":5},\"example_pc\":108,\"example_instruction\":\"ldr r2, [r0, #0]\"},{\"function\":\"pin_check\",\"region\":\"bb2\",\"category\":\"if-then-else\",\"countermeasure\":\"an-code the branch, cfi-link its edges, skip-harden the block\",\"escapes\":4,\"by_model\":{\"branch-invert\":2,\"skip\":2},\"example_pc\":137,\"example_instruction\":\"beq @139\"},{\"function\":\"pin_check\",\"region\":\"bb2\",\"category\":\"data-corruption\",\"countermeasure\":\"skip-harden the region (duplicate idempotent instructions)\",\"escapes\":10,\"by_model\":{\"skip\":10},\"example_pc\":124,\"example_instruction\":\"mov r2, #4096\"},{\"function\":\"pin_check\",\"region\":\"bb3\",\"category\":\"data-corruption\",\"countermeasure\":\"skip-harden the region (duplicate idempotent instructions)\",\"escapes\":1,\"by_model\":{\"skip\":1},\"example_pc\":149,\"example_instruction\":\"mov r0, #42405\"}]}";
