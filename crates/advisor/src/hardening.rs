//! The closed loop: categorize escapes, apply the advised countermeasures
//! selectively, re-run the campaign, repeat until nothing escapes.
//!
//! [`SelectiveHardening::advise`] is the driver. Starting from the
//! unprotected artifact it accumulates a [`HardeningConfig`] — AN-code
//! targets, CFI function set, skip-hardening regions — from the categorized
//! escapes of each round, rebuilds through the ordinary [`Pipeline`] and
//! measures again. The loop ends when both fault models report zero
//! escapes (`converged`), when a round adds no new targets (a fixed point
//! short of convergence), or at the round cap.
//!
//! The final [`AdvisorOutcome`] also measures the paper's whole-function
//! protection on the same workload, so the report can state the selective
//! configuration's overhead *saving* next to its (equal) coverage.

use std::collections::{BTreeMap, BTreeSet};

use secbranch::campaign::{
    json_string, BranchInversion, CampaignRunner, FaultModel, InstructionSkip,
};
use secbranch::codegen::HardenRegion;
use secbranch::ir::BlockId;
use secbranch::passes::{standard_protection_pipeline, AnCoderConfig};
use secbranch::{BuildError, Measurement, Pipeline, Workload};

use crate::category::{region_key, CategorizedEscape, Categorizer, FaultCategory};
use crate::report::RemediationReport;

/// The selective protection configuration the advisor accumulates: which
/// branches to AN-code, which functions to CFI, which regions to
/// skip-harden.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HardeningConfig {
    /// Function → blocks whose terminating branches get the encoded
    /// comparison.
    pub an_targets: BTreeMap<String, BTreeSet<BlockId>>,
    /// Functions whose control edges get CFI stubs. Always the full
    /// call-graph closure (conservatively: every module function) once any
    /// category demands CFI, because the GPSA state threads through calls.
    pub cfi_functions: BTreeSet<String>,
    /// Function → regions whose idempotent instructions are duplicated
    /// against single-instruction skips.
    pub harden: BTreeMap<String, BTreeSet<HardenRegion>>,
}

impl HardeningConfig {
    /// `true` if no countermeasure has been selected yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.an_targets.is_empty() && self.cfi_functions.is_empty() && self.harden.is_empty()
    }

    /// Folds one round of categorized escapes into the configuration,
    /// following the category → countermeasure mapping. Returns `true` if
    /// anything new was added (the loop's progress signal).
    ///
    /// `all_functions` is the module's function set, used as the
    /// conservative CFI closure the moment any escape demands CFI.
    pub fn absorb(
        &mut self,
        escapes: &[CategorizedEscape],
        categorizer: &Categorizer,
        all_functions: &BTreeSet<String>,
    ) -> bool {
        let before = self.clone();
        for e in escapes {
            match e.category {
                FaultCategory::LoopCondition | FaultCategory::IfThenElse => {
                    if let HardenRegion::Block(block) = e.region {
                        if categorizer.is_conditional(&e.function, block) {
                            self.an_targets
                                .entry(e.function.clone())
                                .or_default()
                                .insert(block);
                        }
                    }
                    self.harden
                        .entry(e.function.clone())
                        .or_default()
                        .insert(e.region);
                    self.cfi_functions.clone_from(all_functions);
                }
                FaultCategory::CallReturn => {
                    self.cfi_functions.clone_from(all_functions);
                    self.harden
                        .entry(e.function.clone())
                        .or_default()
                        .insert(HardenRegion::Prologue);
                }
                FaultCategory::DataCorruption => {
                    self.harden
                        .entry(e.function.clone())
                        .or_default()
                        .insert(e.region);
                }
            }
        }
        *self != before
    }

    /// Builds the pipeline realising this configuration.
    ///
    /// Deliberately *not* the standard pass sequence: the lowering
    /// pre-passes renumber blocks, which would detach the configuration's
    /// source-CFG coordinates. The selective AN coder and the back-end
    /// region hardening both keep block ids stable.
    #[must_use]
    pub fn pipeline(&self, max_steps: u64) -> Pipeline {
        let mut pipeline = Pipeline::new()
            .with_label("selective")
            .with_max_steps(max_steps);
        if !self.cfi_functions.is_empty() {
            pipeline = pipeline.cfi_only(self.cfi_functions.clone());
        }
        if !self.an_targets.is_empty() {
            pipeline = pipeline.an_code_only(self.an_targets.clone());
        }
        if !self.harden.is_empty() {
            pipeline = pipeline.with_skip_hardening(self.harden.clone());
        }
        pipeline
    }

    /// Number of AN-coded branches.
    #[must_use]
    pub fn an_block_count(&self) -> usize {
        self.an_targets.values().map(BTreeSet::len).sum()
    }

    /// Number of skip-hardened regions.
    #[must_use]
    pub fn harden_region_count(&self) -> usize {
        self.harden.values().map(BTreeSet::len).sum()
    }

    /// Hand-rolled JSON of the configuration (deterministic order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"an_targets\":{");
        for (i, (function, blocks)) in self.an_targets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let list: Vec<String> = blocks.iter().map(|b| b.0.to_string()).collect();
            out.push_str(&format!("{}:[{}]", json_string(function), list.join(",")));
        }
        out.push_str("},\"cfi_functions\":[");
        for (i, function) in self.cfi_functions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(function));
        }
        out.push_str("],\"harden\":{");
        for (i, (function, regions)) in self.harden.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let list: Vec<String> = regions
                .iter()
                .map(|r| json_string(&region_key(*r)))
                .collect();
            out.push_str(&format!("{}:[{}]", json_string(function), list.join(",")));
        }
        out.push_str("}}");
        out
    }
}

/// What one hardening round saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// Escapes per fault model under the round's configuration.
    pub escapes_by_model: BTreeMap<String, u64>,
    /// AN-coded branches in the round's configuration.
    pub an_blocks: usize,
    /// Skip-hardened regions in the round's configuration.
    pub harden_regions: usize,
    /// CFI'd functions in the round's configuration.
    pub cfi_functions: usize,
}

impl RoundRecord {
    /// Total escapes across models.
    #[must_use]
    pub fn total_escapes(&self) -> u64 {
        self.escapes_by_model.values().sum()
    }
}

/// One measured protection variant next to the campaign escapes it leaves.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantOutcome {
    /// The variant label (`selective`, `full`).
    pub label: String,
    /// Size and runtime measurement.
    pub measurement: Measurement,
    /// Escapes per fault model.
    pub escapes_by_model: BTreeMap<String, u64>,
    /// Cycle overhead against the unprotected baseline, percent.
    pub runtime_overhead_percent: f64,
    /// Code-size overhead against the unprotected baseline, percent.
    pub size_overhead_percent: f64,
}

impl VariantOutcome {
    /// Total escapes across models.
    #[must_use]
    pub fn total_escapes(&self) -> u64 {
        self.escapes_by_model.values().sum()
    }

    fn to_json(&self) -> String {
        let mut escapes = String::from("{");
        for (i, (model, count)) in self.escapes_by_model.iter().enumerate() {
            if i > 0 {
                escapes.push(',');
            }
            escapes.push_str(&format!("{}:{}", json_string(model), count));
        }
        escapes.push('}');
        format!(
            "{{\"label\":{},\"cycles\":{},\"code_size_bytes\":{},\
             \"entry_size_bytes\":{},\"escapes\":{},\
             \"runtime_overhead_percent\":{:.2},\"size_overhead_percent\":{:.2}}}",
            json_string(&self.label),
            self.measurement.result.cycles,
            self.measurement.code_size_bytes,
            self.measurement.entry_size_bytes,
            escapes,
            self.runtime_overhead_percent,
            self.size_overhead_percent,
        )
    }
}

/// The complete result of one advise run on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvisorOutcome {
    /// The workload name.
    pub workload: String,
    /// The entry function.
    pub entry: String,
    /// Per-location categorization of the *unprotected* escapes.
    pub remediation: RemediationReport,
    /// The hardening rounds in order.
    pub rounds: Vec<RoundRecord>,
    /// `true` if the loop reached zero escapes under every model.
    pub converged: bool,
    /// The final selective configuration.
    pub config: HardeningConfig,
    /// The unprotected measurement the overheads are relative to.
    pub baseline: Measurement,
    /// The selective configuration, measured.
    pub selective: VariantOutcome,
    /// The paper's whole-function protection, measured on the same
    /// workload for comparison.
    pub full: VariantOutcome,
}

impl AdvisorOutcome {
    /// Hand-rolled JSON of the outcome. Contains no timing or
    /// machine-dependent data, so it is byte-identical across campaign
    /// thread counts.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut rounds = String::from("[");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                rounds.push(',');
            }
            let mut escapes = String::from("{");
            for (j, (model, count)) in r.escapes_by_model.iter().enumerate() {
                if j > 0 {
                    escapes.push(',');
                }
                escapes.push_str(&format!("{}:{}", json_string(model), count));
            }
            escapes.push('}');
            rounds.push_str(&format!(
                "{{\"round\":{},\"escapes\":{},\"an_blocks\":{},\
                 \"harden_regions\":{},\"cfi_functions\":{}}}",
                r.round, escapes, r.an_blocks, r.harden_regions, r.cfi_functions
            ));
        }
        rounds.push(']');
        format!(
            "{{\"workload\":{},\"entry\":{},\"converged\":{},\
             \"baseline\":{{\"cycles\":{},\"code_size_bytes\":{}}},\
             \"remediation\":{},\"rounds\":{},\"config\":{},\
             \"selective\":{},\"full\":{}}}",
            json_string(&self.workload),
            json_string(&self.entry),
            self.converged,
            self.baseline.result.cycles,
            self.baseline.code_size_bytes,
            self.remediation.to_json(),
            rounds,
            self.config.to_json(),
            self.selective.to_json(),
            self.full.to_json(),
        )
    }

    /// Renders a human-readable summary: the remediation table, the round
    /// progression and the selective-vs-full comparison.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = self.remediation.render_table();
        out.push('\n');
        for r in &self.rounds {
            let escapes: Vec<String> = r
                .escapes_by_model
                .iter()
                .map(|(m, c)| format!("{m}={c}"))
                .collect();
            out.push_str(&format!(
                "round {}: {} (an={}, harden={}, cfi={})\n",
                r.round,
                escapes.join(", "),
                r.an_blocks,
                r.harden_regions,
                r.cfi_functions
            ));
        }
        out.push_str(&format!(
            "converged: {}\n\n{:<11} {:>9} {:>10} {:>9} {:>9} {:>8}\n",
            self.converged, "variant", "cycles", "overhead", "size", "overhead", "escapes"
        ));
        out.push_str(&format!(
            "{:<11} {:>9} {:>10} {:>9} {:>9} {:>8}\n",
            "unprotected",
            self.baseline.result.cycles,
            "-",
            self.baseline.code_size_bytes,
            "-",
            "-"
        ));
        for v in [&self.selective, &self.full] {
            out.push_str(&format!(
                "{:<11} {:>9} {:>9.1}% {:>9} {:>8.1}% {:>8}\n",
                v.label,
                v.measurement.result.cycles,
                v.runtime_overhead_percent,
                v.measurement.code_size_bytes,
                v.size_overhead_percent,
                v.total_escapes()
            ));
        }
        out
    }
}

/// The closed-loop selective-hardening driver.
#[derive(Debug, Clone)]
pub struct SelectiveHardening {
    threads: usize,
    max_rounds: usize,
    max_steps: u64,
}

impl Default for SelectiveHardening {
    fn default() -> Self {
        SelectiveHardening::new()
    }
}

impl SelectiveHardening {
    /// Default driver: single-threaded campaigns, at most 8 rounds, a
    /// 200k-step budget per faulted run (workload references are under a
    /// few thousand steps; runaway faulted loops should not dominate).
    #[must_use]
    pub fn new() -> Self {
        SelectiveHardening {
            threads: 1,
            max_rounds: 8,
            max_steps: 200_000,
        }
    }

    /// Campaign worker threads. The reports — and therefore the advisor's
    /// entire output — are byte-identical for any value.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Caps the number of hardening rounds.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds.max(1);
        self
    }

    /// Per-run simulator step budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// The fault models the loop defends against: every single-instruction
    /// skip and every conditional-branch inversion of the reference
    /// execution.
    fn models() -> Vec<Box<dyn FaultModel>> {
        vec![Box::new(InstructionSkip), Box::new(BranchInversion)]
    }

    /// Runs the full advise loop on one workload.
    ///
    /// # Errors
    ///
    /// Propagates pipeline build or simulation failures.
    pub fn advise(&self, workload: &Workload) -> Result<AdvisorOutcome, BuildError> {
        let runner = CampaignRunner::new().with_threads(self.threads);
        let models = Self::models();
        let all_functions: BTreeSet<String> = workload
            .module
            .functions
            .iter()
            .map(|f| f.name.clone())
            .collect();

        // Round 0: the unprotected baseline and its categorized escapes.
        let base = Pipeline::new()
            .with_label("unprotected")
            .with_max_steps(self.max_steps)
            .build(&workload.module)?;
        let baseline = base.measure(&workload.entry, &workload.args)?;
        let base_cat = Categorizer::new(&workload.module, &base.compiled().program);
        let mut base_escapes = Vec::new();
        for model in &models {
            let report =
                base.campaign_with(&runner, &workload.entry, &workload.args, model.as_ref())?;
            base_escapes.extend(base_cat.categorize_report(&report));
        }
        let remediation = RemediationReport::new(workload.name.clone(), &base_escapes);

        let mut config = HardeningConfig::default();
        config.absorb(&base_escapes, &base_cat, &all_functions);

        // The loop: build selectively, re-campaign, absorb what still
        // escapes.
        let mut rounds = Vec::new();
        let mut converged = false;
        let mut selective_escapes: BTreeMap<String, u64> = BTreeMap::new();
        let mut selective_measurement = baseline.clone();
        for round in 1..=self.max_rounds {
            let artifact = config.pipeline(self.max_steps).build(&workload.module)?;
            selective_measurement = artifact.measure(&workload.entry, &workload.args)?;
            let categorizer = Categorizer::new(&workload.module, &artifact.compiled().program);
            let mut escapes = Vec::new();
            selective_escapes.clear();
            for model in &models {
                let report = artifact.campaign_with(
                    &runner,
                    &workload.entry,
                    &workload.args,
                    model.as_ref(),
                )?;
                selective_escapes.insert(report.model.clone(), report.escapes.len() as u64);
                escapes.extend(categorizer.categorize_report(&report));
            }
            rounds.push(RoundRecord {
                round,
                escapes_by_model: selective_escapes.clone(),
                an_blocks: config.an_block_count(),
                harden_regions: config.harden_region_count(),
                cfi_functions: config.cfi_functions.len(),
            });
            if escapes.is_empty() {
                converged = true;
                break;
            }
            if !config.absorb(&escapes, &categorizer, &all_functions) {
                // Fixed point short of convergence: nothing new to try.
                break;
            }
        }

        let selective = VariantOutcome {
            label: "selective".to_string(),
            runtime_overhead_percent: selective_measurement.runtime_overhead_percent(&baseline),
            size_overhead_percent: selective_measurement.size_overhead_percent(&baseline),
            measurement: selective_measurement,
            escapes_by_model: selective_escapes,
        };
        let full = self.measure_full(workload, &runner, &models, &baseline)?;

        Ok(AdvisorOutcome {
            workload: workload.name.clone(),
            entry: workload.entry.clone(),
            remediation,
            rounds,
            converged,
            config,
            baseline,
            selective,
            full,
        })
    }

    /// Measures the paper's whole-function protection — AN coder over every
    /// annotated branch, full CFI, and skip-hardening of *every* region —
    /// as the comparison point for the selective configuration.
    fn measure_full(
        &self,
        workload: &Workload,
        runner: &CampaignRunner,
        models: &[Box<dyn FaultModel>],
        baseline: &Measurement,
    ) -> Result<VariantOutcome, BuildError> {
        // The standard pipeline's lowering passes add blocks, so the
        // all-regions set must be enumerated on a probe run of those
        // passes, not on the source module.
        let mut probe = workload.module.clone();
        standard_protection_pipeline(AnCoderConfig::default()).run(&mut probe)?;
        let mut harden: BTreeMap<String, BTreeSet<HardenRegion>> = BTreeMap::new();
        for function in &probe.functions {
            let mut regions = BTreeSet::from([HardenRegion::Prologue]);
            for i in 0..function.blocks.len() {
                regions.insert(HardenRegion::Block(BlockId(u32::try_from(i).unwrap_or(0))));
            }
            harden.insert(function.name.clone(), regions);
        }
        let artifact = Pipeline::new()
            .with_label("full")
            .with_max_steps(self.max_steps)
            .with_full_cfi()
            .with_an_code(AnCoderConfig::default())
            .with_skip_hardening(harden)
            .build(&workload.module)?;
        let measurement = artifact.measure(&workload.entry, &workload.args)?;
        let mut escapes_by_model = BTreeMap::new();
        for model in models {
            let report =
                artifact.campaign_with(runner, &workload.entry, &workload.args, model.as_ref())?;
            escapes_by_model.insert(report.model.clone(), report.escapes.len() as u64);
        }
        Ok(VariantOutcome {
            label: "full".to_string(),
            runtime_overhead_percent: measurement.runtime_overhead_percent(baseline),
            size_overhead_percent: measurement.size_overhead_percent(baseline),
            measurement,
            escapes_by_model,
        })
    }
}
