//! Escape categorization: joining an escape's program counter back to the
//! source-CFG context that explains *why* the fault slipped through.
//!
//! The join walks three layers that the rest of the toolchain already
//! maintains for other reasons:
//!
//! 1. **pc → machine region.** The back end labels every function entry
//!    (`fn`), basic block (`fn.bbN`), inline compare/select sequence
//!    (`fn.cmpN` / `fn.selN`) and CFI edge stub (`fn.eF_Tk`); a linear scan
//!    over those labels assigns each instruction index an enclosing
//!    [`Site`](enum@self::FaultCategory).
//! 2. **pc → provenance tag.** [`Program::origin_at`] names the emitter
//!    (`prologue`, `body`, `an-coder`, `cfi`, `cfi-edge`, `epilogue`,
//!    `skip-dup`), which distinguishes call/return machinery from block
//!    bodies sharing the same label region.
//! 3. **block → source CFG.** Dominator analysis over the *source* module
//!    marks loop headers (back-edge targets), and the terminators mark
//!    which blocks end in conditional branches — separating loop-condition
//!    faults from plain if-then-else skips.
//!
//! Every escape receives **exactly one** [`FaultCategory`]; the rules are a
//! priority chain, not overlapping heuristics, and the advisor's regression
//! tests assert the totality.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use secbranch::armv7m::{Instr, Program};
use secbranch::campaign::CampaignReport;
use secbranch::codegen::HardenRegion;
use secbranch::ir::cfg::{back_edges, Cfg, Dominators};
use secbranch::ir::{BlockId, Module, Terminator};

/// The structural cause of an escaping fault, derived from where in the
/// compiled program the fault hit and what the source CFG looks like there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultCategory {
    /// The fault corrupted a loop condition: a control transfer inside a
    /// block that is a loop header (a dominator-analysis back-edge target)
    /// or a jump feeding one, changing the trip count.
    LoopCondition,
    /// The fault skipped or inverted an if-then-else decision: a control
    /// transfer in a non-loop block ending in a conditional branch.
    IfThenElse,
    /// The fault broke call/return integrity: a skipped `bl`, corrupted
    /// prologue/epilogue frame or CFI-state machinery.
    CallReturn,
    /// The fault corrupted a data value (load, store, ALU) that later
    /// decided the result without any control-flow damage.
    DataCorruption,
}

impl FaultCategory {
    /// Stable machine-readable key, used in reports and JSON.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            FaultCategory::LoopCondition => "loop-condition",
            FaultCategory::IfThenElse => "if-then-else",
            FaultCategory::CallReturn => "call-return",
            FaultCategory::DataCorruption => "data-corruption",
        }
    }

    /// The concrete countermeasure the advisor maps this category to.
    ///
    /// Branch categories need both the AN-coded condition (so an inverted
    /// or skipped decision computes the wrong *symbol*) **and** CFI edge
    /// linking (so the wrong symbol on the taken edge is detected — without
    /// the GPSA state the encoded comparison alone detects nothing).
    /// Call/return breaks are the CFI transfer case, and pure data faults
    /// are masked by duplicating the idempotent instructions of the region.
    #[must_use]
    pub fn countermeasure(self) -> &'static str {
        match self {
            FaultCategory::LoopCondition => {
                "an-code the loop condition, cfi-link its edges, skip-harden the header"
            }
            FaultCategory::IfThenElse => {
                "an-code the branch, cfi-link its edges, skip-harden the block"
            }
            FaultCategory::CallReturn => "cfi the call/return edges, skip-harden the prologue",
            FaultCategory::DataCorruption => {
                "skip-harden the region (duplicate idempotent instructions)"
            }
        }
    }
}

impl fmt::Display for FaultCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One escape joined back to its cause: category plus the source-level
/// coordinate ([`HardenRegion`] within a function) the countermeasure
/// should be applied to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategorizedEscape {
    /// The structural cause.
    pub category: FaultCategory,
    /// The enclosing function.
    pub function: String,
    /// The region within the function (prologue or source basic block).
    pub region: HardenRegion,
    /// The fault model that produced the escape (the campaign's model
    /// fingerprint, e.g. `instruction-skip`).
    pub model: String,
    /// The faulted program counter (instruction index).
    pub pc: usize,
    /// Rendering of the faulted instruction.
    pub instruction: String,
    /// The campaign's description of the injected fault.
    pub fault: String,
}

/// Renders a [`HardenRegion`] the way reports spell it.
#[must_use]
pub fn region_key(region: HardenRegion) -> String {
    match region {
        HardenRegion::Prologue => "prologue".to_string(),
        HardenRegion::Block(b) => format!("bb{}", b.0),
    }
}

/// What kind of control effect the machine instruction at a pc has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PcKind {
    Call,
    CondBranch,
    UncondBranch,
    Other,
}

/// The enclosing label region of a pc.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Site {
    /// Between the function label and its first block label: the prologue.
    Prologue(String),
    /// Inside block `bb` of the function (including its inline `cmp`/`sel`
    /// sequences, which do not open a new region).
    Block(String, BlockId),
    /// Inside a CFI edge stub.
    Edge(String),
}

/// Joins escape pcs of one compiled artifact back to source-CFG context.
///
/// Construct one per `(source module, compiled program)` pair; the
/// selective pipeline keeps block ids stable, so the same source module
/// serves every hardening round even though each round compiles a
/// different program.
#[derive(Debug)]
pub struct Categorizer {
    /// Per-pc enclosing site, from a linear scan over the program labels.
    sites: Vec<Site>,
    /// Per-pc provenance tag.
    origins: Vec<&'static str>,
    /// Per-pc instruction kind.
    kinds: Vec<PcKind>,
    /// Source blocks that are loop headers (back-edge targets), per function.
    loop_heads: BTreeMap<String, BTreeSet<BlockId>>,
    /// Source blocks ending in a conditional branch, per function.
    cond_blocks: BTreeMap<String, BTreeSet<BlockId>>,
    /// Unconditional jump targets (`block → successor`), per function.
    jump_targets: BTreeMap<String, BTreeMap<BlockId, BlockId>>,
}

impl Categorizer {
    /// Builds the join tables for one source module and its compiled
    /// program.
    #[must_use]
    pub fn new(module: &Module, program: &Program) -> Self {
        let mut loop_heads = BTreeMap::new();
        let mut cond_blocks = BTreeMap::new();
        let mut jump_targets = BTreeMap::new();
        for function in &module.functions {
            let cfg = Cfg::new(function);
            let doms = Dominators::new(&cfg);
            let heads: BTreeSet<BlockId> = back_edges(&cfg, &doms)
                .into_iter()
                .map(|(_, head)| head)
                .collect();
            let mut conds = BTreeSet::new();
            let mut jumps = BTreeMap::new();
            for (i, block) in function.blocks.iter().enumerate() {
                let id = BlockId(u32::try_from(i).unwrap_or(u32::MAX));
                match &block.terminator {
                    Some(Terminator::Branch { .. }) => {
                        conds.insert(id);
                    }
                    Some(Terminator::Jump(target)) => {
                        jumps.insert(id, *target);
                    }
                    _ => {}
                }
            }
            loop_heads.insert(function.name.clone(), heads);
            cond_blocks.insert(function.name.clone(), conds);
            jump_targets.insert(function.name.clone(), jumps);
        }

        // Labels at the same index apply shortest-first, so the more
        // specific label (block over function entry) wins the scan state.
        let mut labels_by_index: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (label, &index) in program.labels() {
            labels_by_index.entry(index).or_default().push(label);
        }
        for labels in labels_by_index.values_mut() {
            labels.sort_by_key(|l| l.len());
        }

        let len = program.len();
        let mut sites = Vec::with_capacity(len);
        let mut current = Site::Prologue(String::new());
        for pc in 0..len {
            if let Some(labels) = labels_by_index.get(&pc) {
                for label in labels {
                    if let Some(site) = Self::parse_label(label) {
                        current = site;
                    }
                }
            }
            sites.push(current.clone());
        }

        let origins = (0..len).map(|pc| program.origin_at(pc)).collect();
        let kinds = program
            .instructions()
            .iter()
            .map(|instr| match instr {
                Instr::Bl { .. } => PcKind::Call,
                Instr::BCond { .. } => PcKind::CondBranch,
                Instr::B { .. } => PcKind::UncondBranch,
                _ => PcKind::Other,
            })
            .collect();

        Categorizer {
            sites,
            origins,
            kinds,
            loop_heads,
            cond_blocks,
            jump_targets,
        }
    }

    /// Parses one back-end label into the site it opens. Inline `cmp`/`sel`
    /// labels return `None`: they continue the current block region.
    fn parse_label(label: &str) -> Option<Site> {
        let Some((function, suffix)) = label.split_once('.') else {
            return Some(Site::Prologue(label.to_string()));
        };
        if let Some(n) = suffix.strip_prefix("bb") {
            if let Ok(n) = n.parse::<u32>() {
                return Some(Site::Block(function.to_string(), BlockId(n)));
            }
        }
        if suffix.starts_with('e') && suffix.contains('_') {
            return Some(Site::Edge(function.to_string()));
        }
        None
    }

    /// `true` if the source block ends in a conditional branch (and can
    /// therefore be AN-coded).
    #[must_use]
    pub fn is_conditional(&self, function: &str, block: BlockId) -> bool {
        self.cond_blocks
            .get(function)
            .is_some_and(|set| set.contains(&block))
    }

    /// `true` if the source block is a loop header.
    #[must_use]
    pub fn is_loop_head(&self, function: &str, block: BlockId) -> bool {
        self.loop_heads
            .get(function)
            .is_some_and(|set| set.contains(&block))
    }

    /// Categorizes every escape of a campaign report. Exactly one
    /// [`CategorizedEscape`] per escape, in report order.
    #[must_use]
    pub fn categorize_report(&self, report: &CampaignReport) -> Vec<CategorizedEscape> {
        report
            .escapes
            .iter()
            .map(|escape| {
                let (category, function, region) = self.categorize_pc(escape.pc);
                CategorizedEscape {
                    category,
                    function,
                    region,
                    model: report.model.clone(),
                    pc: escape.pc,
                    instruction: escape.instruction.clone(),
                    fault: escape.fault.clone(),
                }
            })
            .collect()
    }

    /// The priority chain assigning one category to one faulted pc.
    fn categorize_pc(&self, pc: usize) -> (FaultCategory, String, HardenRegion) {
        let Some(site) = self.sites.get(pc) else {
            // Out-of-program pc (runaway execution): the frame machinery
            // lost control — treat as a call/return break of the entry.
            let function = match self.sites.first() {
                Some(Site::Prologue(f) | Site::Block(f, _) | Site::Edge(f)) => f.clone(),
                None => String::new(),
            };
            return (FaultCategory::CallReturn, function, HardenRegion::Prologue);
        };
        let origin = self.origins.get(pc).copied().unwrap_or("isel");
        let kind = self.kinds.get(pc).copied().unwrap_or(PcKind::Other);
        let function = match site {
            Site::Prologue(f) | Site::Block(f, _) | Site::Edge(f) => f.clone(),
        };

        // Rule 1: call/return machinery — CFI state updates, edge stubs,
        // frame setup/teardown, and the call instruction itself.
        if matches!(origin, "cfi" | "cfi-edge" | "prologue" | "epilogue")
            || matches!(site, Site::Edge(_))
            || kind == PcKind::Call
        {
            return (FaultCategory::CallReturn, function, HardenRegion::Prologue);
        }

        // Rule 2: outside any block label — residual prologue region.
        let Site::Block(_, block) = site else {
            return (FaultCategory::CallReturn, function, HardenRegion::Prologue);
        };
        let block = *block;
        let region = HardenRegion::Block(block);

        // Rule 3: control transfers, split by the source CFG.
        match kind {
            PcKind::CondBranch | PcKind::UncondBranch => {
                if self.is_loop_head(&function, block) {
                    return (FaultCategory::LoopCondition, function, region);
                }
                if kind == PcKind::UncondBranch {
                    // A jump whose target is a loop header is the back
                    // edge: skipping it changes the trip count.
                    let target = self
                        .jump_targets
                        .get(&function)
                        .and_then(|m| m.get(&block))
                        .copied();
                    if let Some(target) = target {
                        if self.is_loop_head(&function, target) {
                            return (FaultCategory::LoopCondition, function, region);
                        }
                    }
                }
                if self.is_conditional(&function, block) {
                    return (FaultCategory::IfThenElse, function, region);
                }
                // A branch inside a compare sequence of a block that does
                // not decide control (e.g. computing a boolean that is
                // returned): the fault corrupts a value, not an edge.
                (FaultCategory::DataCorruption, function, region)
            }
            // Rule 4: everything else corrupted a data value.
            _ => (FaultCategory::DataCorruption, function, region),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch::programs::{memcmp_module, pin_retry_module};
    use secbranch::Pipeline;

    #[test]
    fn label_parsing_distinguishes_the_backend_regions() {
        assert_eq!(
            Categorizer::parse_label("pin_check"),
            Some(Site::Prologue("pin_check".to_string()))
        );
        assert_eq!(
            Categorizer::parse_label("pin_check.bb3"),
            Some(Site::Block("pin_check".to_string(), BlockId(3)))
        );
        assert_eq!(
            Categorizer::parse_label("pin_check.e2_3t"),
            Some(Site::Edge("pin_check".to_string()))
        );
        // Inline compare/select labels continue the current block.
        assert_eq!(Categorizer::parse_label("pin_check.cmp4"), None);
        assert_eq!(Categorizer::parse_label("pin_check.sel1"), None);
    }

    #[test]
    fn loop_headers_and_conditional_blocks_come_from_the_source_cfg() {
        let module = memcmp_module(8);
        let artifact = Pipeline::new().build(&module).expect("builds");
        let cat = Categorizer::new(&module, &artifact.compiled().program);
        // memcmp_secure: bb1 is the loop header and branches conditionally.
        assert!(cat.is_loop_head("memcmp_secure", BlockId(1)));
        assert!(cat.is_conditional("memcmp_secure", BlockId(1)));
        assert!(!cat.is_loop_head("memcmp_secure", BlockId(0)));
        // bb3 compares bytes but heads no loop.
        assert!(cat.is_conditional("memcmp_secure", BlockId(3)));
        assert!(!cat.is_loop_head("memcmp_secure", BlockId(3)));
    }

    #[test]
    fn every_pc_of_the_program_gets_exactly_one_category() {
        let module = pin_retry_module(4, 3);
        let artifact = Pipeline::new().build(&module).expect("builds");
        let program = &artifact.compiled().program;
        let cat = Categorizer::new(&module, program);
        for pc in 0..program.len() {
            // categorize_pc is total: no pc panics, every pc maps to one
            // category and a region of the right function.
            let (_, function, _) = cat.categorize_pc(pc);
            assert!(!function.is_empty(), "pc {pc} resolved to no function");
        }
        // And a runaway pc past the program end still categorizes.
        let (cat_kind, _, region) = cat.categorize_pc(program.len() + 100);
        assert_eq!(cat_kind, FaultCategory::CallReturn);
        assert_eq!(region, HardenRegion::Prologue);
    }
}
