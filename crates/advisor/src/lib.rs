//! Fault categorizer and countermeasure advisor with closed-loop selective
//! hardening.
//!
//! The paper's evaluation applies each countermeasure to *whole functions*
//! and reports the (considerable) overhead. This crate asks the inverse
//! question: given a concrete fault campaign, **where** do faults actually
//! escape, **why**, and what is the *cheapest* configuration of the same
//! countermeasures that stops all of them?
//!
//! Three stages, each usable on its own:
//!
//! * [`Categorizer`] joins every escape of a
//!   [`CampaignReport`](secbranch::campaign::CampaignReport) — via the
//!   faulted pc, the back end's labels and provenance tags, and dominator
//!   analysis over the source CFG — to exactly one [`FaultCategory`]:
//!   loop-condition fault, if-then-else branch skip, call/return CFI
//!   break, or data-value corruption.
//! * [`RemediationReport`] maps each categorized location to a concrete
//!   countermeasure (AN-code the condition, CFI the edges, skip-harden
//!   the region) and renders the advice as a text table and JSON.
//! * [`SelectiveHardening`] closes the loop: it applies the advice through
//!   the selective pipeline knobs
//!   ([`Pipeline::an_code_only`](secbranch::Pipeline::an_code_only),
//!   [`cfi_only`](secbranch::Pipeline::cfi_only),
//!   [`with_skip_hardening`](secbranch::Pipeline::with_skip_hardening)),
//!   re-runs the campaign, and iterates until zero escapes — then measures
//!   the found configuration against the paper's whole-function variants.
//!
//! Everything derives from campaign reports, which are byte-identical at
//! any worker thread count; the advisor's JSON output therefore is too.
//!
//! ```
//! use secbranch::programs::pin_retry_module;
//! use secbranch::Workload;
//! use secbranch_advisor::SelectiveHardening;
//!
//! # fn main() -> Result<(), secbranch::BuildError> {
//! let workload = Workload::new("pin_retry", pin_retry_module(4, 3), "pin_check", &[]);
//! let outcome = SelectiveHardening::new().advise(&workload)?;
//! assert!(outcome.converged);
//! assert!(outcome.selective.total_escapes() == 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod category;
mod hardening;
mod report;

pub use category::{region_key, CategorizedEscape, Categorizer, FaultCategory};
pub use hardening::{
    AdvisorOutcome, HardeningConfig, RoundRecord, SelectiveHardening, VariantOutcome,
};
pub use report::{RemediationEntry, RemediationReport};
