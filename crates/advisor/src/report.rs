//! The remediation report: per-location escape causes and the recommended
//! countermeasure, rendered as a text table and hand-rolled JSON.
//!
//! Entries aggregate [`CategorizedEscape`]s by `(function, region,
//! category)` and are emitted in that (fully deterministic) order, so the
//! report is byte-identical across campaign thread counts — it derives
//! only from the campaign reports, which carry the same guarantee.

use std::collections::BTreeMap;

use secbranch::campaign::json_string;
use secbranch::codegen::HardenRegion;

use crate::category::{region_key, CategorizedEscape, FaultCategory};

/// One remediation line: a location, why faults escape there, and what to
/// apply.
#[derive(Debug, Clone, PartialEq)]
pub struct RemediationEntry {
    /// The enclosing function.
    pub function: String,
    /// The region within the function.
    pub region: HardenRegion,
    /// The structural cause.
    pub category: FaultCategory,
    /// The recommended countermeasure.
    pub countermeasure: &'static str,
    /// Total escapes attributed to this entry.
    pub escapes: u64,
    /// Escapes per fault model.
    pub by_model: BTreeMap<String, u64>,
    /// Lowest faulted pc of the entry (a concrete witness).
    pub example_pc: usize,
    /// Rendering of the instruction at the witness pc.
    pub example_instruction: String,
}

/// The advisor's per-location remediation report for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RemediationReport {
    /// The workload name.
    pub workload: String,
    /// Aggregated entries, sorted by `(function, region, category)`.
    pub entries: Vec<RemediationEntry>,
    /// Total escapes across all entries.
    pub total_escapes: u64,
}

impl RemediationReport {
    /// Aggregates categorized escapes (typically of several fault models)
    /// into a deterministic report.
    #[must_use]
    pub fn new(workload: impl Into<String>, escapes: &[CategorizedEscape]) -> Self {
        let mut grouped: BTreeMap<(String, HardenRegion, FaultCategory), RemediationEntry> =
            BTreeMap::new();
        for e in escapes {
            let entry = grouped
                .entry((e.function.clone(), e.region, e.category))
                .or_insert_with(|| RemediationEntry {
                    function: e.function.clone(),
                    region: e.region,
                    category: e.category,
                    countermeasure: e.category.countermeasure(),
                    escapes: 0,
                    by_model: BTreeMap::new(),
                    example_pc: e.pc,
                    example_instruction: e.instruction.clone(),
                });
            entry.escapes += 1;
            *entry.by_model.entry(e.model.clone()).or_insert(0) += 1;
            if e.pc < entry.example_pc {
                entry.example_pc = e.pc;
                entry.example_instruction = e.instruction.clone();
            }
        }
        let entries: Vec<RemediationEntry> = grouped.into_values().collect();
        let total_escapes = entries.iter().map(|e| e.escapes).sum();
        RemediationReport {
            workload: workload.into(),
            entries,
            total_escapes,
        }
    }

    /// Renders the report as an aligned text table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "Remediation report: {} ({} escapes, {} locations)\n",
            self.workload,
            self.total_escapes,
            self.entries.len()
        );
        let header = format!(
            "{:<18} {:<9} {:<15} {:>8}  {}",
            "function", "region", "category", "escapes", "countermeasure"
        );
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len().max(60)));
        out.push('\n');
        for e in &self.entries {
            out.push_str(&format!(
                "{:<18} {:<9} {:<15} {:>8}  {}\n",
                e.function,
                region_key(e.region),
                e.category.key(),
                e.escapes,
                e.countermeasure
            ));
        }
        out
    }

    /// Serialises the report as JSON (hand-rolled, deterministic field and
    /// entry order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"workload\":{},\"total_escapes\":{},\"entries\":[",
            json_string(&self.workload),
            self.total_escapes
        ));
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut models = String::from("{");
            for (j, (model, count)) in e.by_model.iter().enumerate() {
                if j > 0 {
                    models.push(',');
                }
                models.push_str(&format!("{}:{}", json_string(model), count));
            }
            models.push('}');
            out.push_str(&format!(
                "{{\"function\":{},\"region\":{},\"category\":{},\
                 \"countermeasure\":{},\"escapes\":{},\"by_model\":{},\
                 \"example_pc\":{},\"example_instruction\":{}}}",
                json_string(&e.function),
                json_string(&region_key(e.region)),
                json_string(e.category.key()),
                json_string(e.countermeasure),
                e.escapes,
                models,
                e.example_pc,
                json_string(&e.example_instruction),
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbranch::ir::BlockId;

    fn escape(
        category: FaultCategory,
        function: &str,
        region: HardenRegion,
        model: &str,
        pc: usize,
    ) -> CategorizedEscape {
        CategorizedEscape {
            category,
            function: function.to_string(),
            region,
            model: model.to_string(),
            pc,
            instruction: format!("instr@{pc}"),
            fault: format!("fault@{pc}"),
        }
    }

    #[test]
    fn aggregates_by_location_and_category_with_deterministic_order() {
        let bb2 = HardenRegion::Block(BlockId(2));
        let escapes = vec![
            escape(FaultCategory::IfThenElse, "pin_check", bb2, "skip", 40),
            escape(FaultCategory::IfThenElse, "pin_check", bb2, "invert", 38),
            escape(
                FaultCategory::CallReturn,
                "main",
                HardenRegion::Prologue,
                "skip",
                7,
            ),
            escape(FaultCategory::IfThenElse, "pin_check", bb2, "skip", 44),
        ];
        let report = RemediationReport::new("pin_retry", &escapes);
        assert_eq!(report.total_escapes, 4);
        assert_eq!(report.entries.len(), 2);
        // Sorted by function name first: main before pin_check.
        assert_eq!(report.entries[0].function, "main");
        assert_eq!(report.entries[1].escapes, 3);
        assert_eq!(report.entries[1].example_pc, 38);
        assert_eq!(report.entries[1].by_model["skip"], 2);
        assert_eq!(report.entries[1].by_model["invert"], 1);

        let json = report.to_json();
        assert!(json.starts_with("{\"workload\":\"pin_retry\""));
        assert!(json.contains("\"category\":\"if-then-else\""));
        assert!(json.contains("\"example_pc\":38"));
        let table = report.render_table();
        assert!(table.contains("pin_check"));
        assert!(table.contains("if-then-else"));
    }

    #[test]
    fn prologue_sorts_before_blocks_within_a_function() {
        let escapes = vec![
            escape(
                FaultCategory::DataCorruption,
                "f",
                HardenRegion::Block(BlockId(0)),
                "skip",
                10,
            ),
            escape(
                FaultCategory::CallReturn,
                "f",
                HardenRegion::Prologue,
                "skip",
                2,
            ),
        ];
        let report = RemediationReport::new("w", &escapes);
        assert_eq!(region_key(report.entries[0].region), "prologue");
        assert_eq!(region_key(report.entries[1].region), "bb0");
    }
}
