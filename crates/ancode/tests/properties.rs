//! Property-based tests for the AN-code algebra and the encoded comparisons.
//!
//! Originally written against `proptest`; the offline build environment has
//! no registry access, so the properties are exercised with a deterministic
//! sampling loop over the workspace `rand` shim instead. Every test draws a
//! few thousand cases from a fixed seed, which keeps failures reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secbranch_ancode::compare::{encoded_compare_outcome, ConditionOutcome};
use secbranch_ancode::{AnCode, Parameters, Predicate};

const CASES: u32 = 2_000;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn functional(rng: &mut StdRng) -> u32 {
    rng.gen_range(0u32..63_877)
}

fn small_functional(rng: &mut StdRng) -> u32 {
    rng.gen_range(0u32..30_000)
}

fn any_predicate(rng: &mut StdRng) -> Predicate {
    const ALL: [Predicate; 6] = [
        Predicate::Eq,
        Predicate::Ne,
        Predicate::Ult,
        Predicate::Ule,
        Predicate::Ugt,
        Predicate::Uge,
    ];
    ALL[rng.gen_range(0..ALL.len())]
}

/// Encode/decode round-trips for every in-range functional value.
#[test]
fn encode_decode_roundtrip() {
    let code = AnCode::with_functional_bits(63_877, 16).unwrap();
    let mut rng = rng(0x01);
    for _ in 0..CASES {
        let v = functional(&mut rng);
        let w = code.encode(v).unwrap();
        assert!(code.is_valid(w));
        assert_eq!(code.decode(w).unwrap(), v);
    }
}

/// The code is closed under addition (Equation 1).
#[test]
fn addition_is_closed() {
    let code = AnCode::with_functional_bits(63_877, 16).unwrap();
    let mut rng = rng(0x02);
    for _ in 0..CASES {
        let x = small_functional(&mut rng);
        let y = small_functional(&mut rng);
        let xc = code.encode(x).unwrap();
        let yc = code.encode(y).unwrap();
        if x + y < code.functional_max_exclusive() {
            let z = code.add(xc, yc).unwrap();
            assert_eq!(code.decode(z).unwrap(), x + y);
        }
    }
}

/// Subtraction of a smaller from a larger value decodes correctly.
#[test]
fn subtraction_is_closed() {
    let code = AnCode::with_functional_bits(63_877, 16).unwrap();
    let mut rng = rng(0x03);
    for _ in 0..CASES {
        let x = functional(&mut rng);
        let y = functional(&mut rng);
        let (hi, lo) = if x >= y { (x, y) } else { (y, x) };
        let hic = code.encode(hi).unwrap();
        let loc = code.encode(lo).unwrap();
        let z = code.sub(hic, loc);
        assert_eq!(code.decode(z).unwrap(), hi - lo);
    }
}

/// Any single-bit fault on a code word is detected by the residue check.
#[test]
fn single_bit_faults_are_detected() {
    let code = AnCode::with_functional_bits(63_877, 16).unwrap();
    let mut rng = rng(0x04);
    for _ in 0..CASES {
        let v = functional(&mut rng);
        let bit = rng.gen_range(0u32..32);
        let w = code.encode(v).unwrap().with_bit_flipped(bit);
        assert!(code.check(w).is_err());
    }
}

/// Faults of up to 5 bits on a single code word are always detected
/// (minimum Hamming distance 6 of the paper's super-A).
#[test]
fn up_to_five_bit_faults_on_one_word_are_detected() {
    let code = AnCode::with_functional_bits(63_877, 16).unwrap();
    let mut rng = rng(0x05);
    for _ in 0..CASES {
        let v = functional(&mut rng);
        let count = rng.gen_range(1usize..=5);
        let mut bits = std::collections::HashSet::new();
        while bits.len() < count {
            bits.insert(rng.gen_range(0u32..32));
        }
        let mut w = code.encode(v).unwrap();
        for b in &bits {
            w = w.with_bit_flipped(*b);
        }
        assert!(
            code.check(w).is_err(),
            "a {}-bit fault went undetected on word {:#010x}",
            bits.len(),
            w.raw()
        );
    }
}

/// The encoded comparison agrees with the plain comparison for every
/// predicate and every pair of in-range operands.
#[test]
fn encoded_compare_matches_reference() {
    let params = Parameters::paper_defaults();
    let code = params.code();
    let mut rng = rng(0x06);
    for _ in 0..CASES {
        let x = functional(&mut rng);
        let y = functional(&mut rng);
        let pred = any_predicate(&mut rng);
        let xc = code.encode(x).unwrap();
        let yc = code.encode(y).unwrap();
        let outcome = encoded_compare_outcome(&params, pred, xc, yc);
        let expected = if pred.evaluate(x, y) {
            ConditionOutcome::True
        } else {
            ConditionOutcome::False
        };
        assert_eq!(outcome, expected, "{x} {pred:?} {y}");
    }
}

/// A single-bit fault on either comparison operand never produces the
/// *wrong valid* condition symbol: the decision cannot be flipped. The
/// ordering class detects the fault outright; the equality class may mask
/// it (Algorithm 2 cancels the residue for unequal operands) but still
/// never flips the decision.
#[test]
fn operand_faults_never_flip_the_decision_undetected() {
    let params = Parameters::paper_defaults();
    let code = params.code();
    let mut rng = rng(0x07);
    for _ in 0..CASES {
        let x = functional(&mut rng);
        let y = functional(&mut rng);
        let pred = any_predicate(&mut rng);
        let bit = rng.gen_range(0u32..32);
        let which: usize = rng.gen_range(0..2);
        let mut xc = code.encode(x).unwrap();
        let mut yc = code.encode(y).unwrap();
        if which == 0 {
            xc = xc.with_bit_flipped(bit);
        } else {
            yc = yc.with_bit_flipped(bit);
        }
        let wrong = if pred.evaluate(x, y) {
            ConditionOutcome::False
        } else {
            ConditionOutcome::True
        };
        let outcome = encoded_compare_outcome(&params, pred, xc, yc);
        assert_ne!(outcome, wrong, "{x} {pred:?} {y} bit {bit}");
        if !pred.is_equality_class() {
            assert_eq!(outcome, ConditionOutcome::Invalid);
        }
    }
}

/// Negating the predicate always swaps the outcome on fault-free inputs.
#[test]
fn negated_predicate_swaps_outcome() {
    let params = Parameters::paper_defaults();
    let code = params.code();
    let mut rng = rng(0x08);
    for _ in 0..CASES {
        let x = functional(&mut rng);
        let y = functional(&mut rng);
        let pred = any_predicate(&mut rng);
        let xc = code.encode(x).unwrap();
        let yc = code.encode(y).unwrap();
        let a = encoded_compare_outcome(&params, pred, xc, yc);
        let b = encoded_compare_outcome(&params, pred.negated(), xc, yc);
        match (a, b) {
            (ConditionOutcome::True, ConditionOutcome::False)
            | (ConditionOutcome::False, ConditionOutcome::True) => {}
            other => panic!("unexpected outcome pair {other:?}"),
        }
    }
}

/// Parameter sets constructed from searched constants keep the reference
/// semantics for arbitrary alternative encoding constants.
#[test]
fn searched_parameters_remain_correct() {
    let mut rng = rng(0x09);
    for _ in 0..500 {
        let a = rng.gen_range(3u32..5_000);
        let pred = any_predicate(&mut rng);
        let c_ord = secbranch_ancode::params::select_ordering_constant(a);
        let c_eq = secbranch_ancode::params::select_equality_constant(a);
        if let Ok(params) = Parameters::new(a, c_ord, c_eq) {
            let code = params.code();
            let max = code.functional_max_exclusive();
            let x = rng.gen_range(0u32..1_000) % max;
            let y = rng.gen_range(0u32..1_000) % max;
            let xc = code.encode(x).unwrap();
            let yc = code.encode(y).unwrap();
            let outcome = encoded_compare_outcome(&params, pred, xc, yc);
            let expected = if pred.evaluate(x, y) {
                ConditionOutcome::True
            } else {
                ConditionOutcome::False
            };
            assert_eq!(outcome, expected, "A={a} {x} {pred:?} {y}");
        }
    }
}
